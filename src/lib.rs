//! Umbrella crate for the *Optimal Synthesis of Multi-Controlled Qudit Gates*
//! (DAC 2023) reproduction.
//!
//! This crate simply re-exports the workspace crates so that the examples and
//! integration tests can refer to a single dependency.  Library users should
//! normally depend on the individual crates:
//!
//! * [`qudit_core`] — circuits, gates, control predicates.
//! * [`qudit_sim`] — permutation and state-vector simulators.
//! * [`qudit_synthesis`] — the paper's multi-controlled gate syntheses and
//!   the `Compiler` / `CompileOptions` compilation facade.
//! * [`qudit_baselines`] — prior-work baselines and cost models.
//! * [`qudit_unitary`] — general unitary synthesis (Theorem IV.1).
//! * [`qudit_reversible`] — classical reversible function compiler (Theorem IV.2).
//!
//! # Example
//!
//! ```
//! use quditsynth::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Synthesize an ancilla-free 4-controlled Toffoli on 5-level qudits.
//! let synthesis = KToffoli::new(Dimension::new(5)?, 4)?.synthesize()?;
//! assert_eq!(synthesis.resources().borrowed_ancillas(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qudit_baselines;
pub use qudit_core;
pub use qudit_reversible;
pub use qudit_sim;
pub use qudit_synthesis;
pub use qudit_unitary;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use qudit_core::{
        Circuit, Control, ControlPredicate, Dimension, Gate, GateOp, QuditId, SingleQuditOp,
    };
    pub use qudit_reversible::ReversibleFunction;
    pub use qudit_sim::{PermutationSimulator, SimBackend, StateVector};
    pub use qudit_synthesis::{
        CompileOptions, Compiler, ControlledUnitary, KToffoli, MultiControlledGate, OptLevel,
        Threads, Verify,
    };
    pub use qudit_unitary::UnitarySynthesizer;
}
