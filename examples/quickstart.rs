//! Quickstart: synthesise a multi-controlled Toffoli gate on qudits and
//! verify it with the bundled simulator.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qudit_core::Dimension;
use qudit_sim::equivalence::{verify_mct_exhaustive, MctSpec};
use qudit_synthesis::KToffoli;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Odd dimension: ancilla-free (Theorem III.6) -----------------------
    let d3 = Dimension::new(3)?;
    let odd = KToffoli::new(d3, 4)?.synthesize()?;
    println!("4-controlled Toffoli on qutrits (d = 3):");
    println!(
        "  layout:      {} qudits, borrowed ancillas: {:?}",
        odd.layout().width,
        odd.layout().borrowed_ancilla
    );
    println!("  macro gates: {}", odd.resources().macro_gates);
    println!("  G-gates:     {}", odd.resources().g_gates);

    // Verify the construction exhaustively against its specification.
    let spec = MctSpec::toffoli(odd.layout().controls.clone(), odd.layout().target);
    let verdict = verify_mct_exhaustive(odd.circuit(), &spec)?;
    println!("  verified:    {}", verdict.is_pass());
    assert!(verdict.is_pass());

    // --- Even dimension: one borrowed ancilla (Theorem III.2) --------------
    let d4 = Dimension::new(4)?;
    let even = KToffoli::new(d4, 4)?.synthesize()?;
    println!("\n4-controlled Toffoli on ququarts (d = 4):");
    println!(
        "  layout:      {} qudits, borrowed ancilla: {:?}",
        even.layout().width,
        even.layout().borrowed_ancilla
    );
    println!("  G-gates:     {}", even.resources().g_gates);
    let spec = MctSpec::toffoli(even.layout().controls.clone(), even.layout().target);
    let verdict = verify_mct_exhaustive(even.circuit(), &spec)?;
    println!("  verified:    {}", verdict.is_pass());
    assert!(verdict.is_pass());

    // --- Linearity of the gate count (the headline claim) ------------------
    println!("\nG-gate count vs. number of controls (d = 3):");
    for k in [2usize, 4, 8, 16] {
        let synthesis = KToffoli::new(d3, k)?.synthesize()?;
        println!(
            "  k = {k:2}: {:6} G-gates ({:.1} per control)",
            synthesis.resources().g_gates,
            synthesis.resources().g_gates as f64 / k as f64
        );
    }

    // --- The compilation pipeline ------------------------------------------
    // The full paper flow (macro -> fusion -> elementary -> G-gates ->
    // cancellation) runs as a PassManager pipeline with per-pass statistics.
    println!("\nStandard pipeline on the 4-controlled Toffoli (d = 3):");
    let report = odd.compile()?;
    for stats in &report.stats {
        println!("  {stats}");
    }
    println!("  optimised: {} G-gates", report.circuit.len());
    Ok(())
}
