//! Connectivity routing: compiling onto a coupling graph with
//! `CompileOptions::{topology, cost}`.
//!
//! Demonstrates:
//!
//! 1. the stock topology builders (`linear`, `ring`, `grid`, `heavy_hex`)
//!    and their distance metrics;
//! 2. a routed, self-verifying compile of a k-Toffoli onto a linear chain,
//!    with the routed-depth / swap-count / weighted-cost report columns;
//! 3. the adjacency invariant — every multi-qudit gate of the routed
//!    circuit acts on a coupled pair — checked by `validate_adjacency`;
//! 4. uniform vs noise-aware cost models steering the router.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example routing
//! ```

use qudit_core::route::{validate_adjacency, NoiseAwareCost, UniformCost};
use qudit_core::topology::CouplingGraph;
use qudit_core::Dimension;
use qudit_synthesis::{CompileOptions, KToffoli, Verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = Dimension::new(3)?;

    // 1. Topologies and their metrics.
    println!("Stock coupling graphs:");
    for (label, graph) in [
        ("linear(6)", CouplingGraph::linear(6)?),
        ("ring(6)", CouplingGraph::ring(6)?),
        ("grid(2, 3)", CouplingGraph::grid(2, 3)?),
        ("heavy_hex(2, 3)", CouplingGraph::heavy_hex(2, 3)?),
    ] {
        println!(
            "  {label:15} {} sites, {} edges, diameter {}",
            graph.sites(),
            graph.edges().len(),
            graph.diameter()
        );
    }
    println!();

    // 2. A routed, fully verified compile: the 4-controlled Toffoli onto a
    //    linear chain spanning its register.
    let synthesis = KToffoli::new(dimension, 4)?.synthesize()?;
    let width = synthesis.layout().width;
    let chain = CouplingGraph::linear(width)?;
    println!("Routing the 4-controlled Toffoli (d = 3, width {width}) onto linear({width}):");
    let routed = CompileOptions::new()
        .topology(chain.clone())
        .cost(NoiseAwareCost::default())
        .schedule(true)
        .verify(Verify::Exhaustive)
        .compiler()
        .compile(synthesis.circuit())?;
    for stats in &routed.stats {
        println!("  {stats}");
    }
    println!(
        "  routed depth {}, {} SWAPs inserted, weighted cost {:.1}, verified: {}",
        routed.routed_depth.expect("routed compile reports a depth"),
        routed.swap_count.expect("routed compile reports swaps"),
        routed.weighted_cost.expect("routed compile reports a cost"),
        routed.verification
    );
    assert!(routed.verification.is_verified());

    // 3. The adjacency invariant holds on the compiled circuit.
    validate_adjacency(&routed.circuit, &chain)?;
    println!("  every multi-qudit gate acts on a coupled pair\n");

    // 4. Cost models steer tie-breaking; the uniform model reports the
    //    plain gate count as its weighted cost.
    let uniform = CompileOptions::new()
        .topology(chain.clone())
        .cost(UniformCost)
        .schedule(true)
        .compiler()
        .compile(synthesis.circuit())?;
    validate_adjacency(&uniform.circuit, &chain)?;
    println!(
        "Uniform cost: {} gates, weighted cost {:.1} (1.0 per gate); noise-aware cost: {:.1}",
        uniform.circuit.len(),
        uniform
            .weighted_cost
            .expect("routed compile reports a cost"),
        routed.weighted_cost.unwrap(),
    );
    assert_eq!(uniform.weighted_cost.unwrap(), uniform.circuit.len() as f64);
    Ok(())
}
