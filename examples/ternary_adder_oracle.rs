//! A reversible ternary adder compiled to qutrit gates.
//!
//! Modular qudit arithmetic is one of the applications the paper lists for
//! its multi-controlled gate synthesis ([22, 23]).  This example builds the
//! reversible map `(a, b, s) ↦ (a, b, s + a + b mod 3)` — a ternary
//! carry-free adder stage — as a [`ReversibleFunction`], compiles it with the
//! Fig. 11 compiler, and verifies the circuit on every input.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ternary_adder_oracle
//! ```

use qudit_core::Dimension;
use qudit_reversible::{ReversibleFunction, ReversibleSynthesizer};
use qudit_sim::basis::all_basis_states;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = Dimension::new(3)?;
    let variables = 3usize;

    // Build the truth table of (a, b, s) -> (a, b, s + a + b mod 3).
    let mut table = Vec::new();
    for state in all_basis_states(dimension, variables) {
        let (a, b, s) = (state[0], state[1], state[2]);
        let image = [a, b, (s + a + b) % 3];
        let index = image
            .iter()
            .fold(0usize, |acc, &digit| acc * 3 + digit as usize);
        table.push(index);
    }
    let adder = ReversibleFunction::from_table(dimension, variables, table)?;

    // Compile with the paper's synthesis: ancilla-free because d = 3 is odd.
    let synthesis = ReversibleSynthesizer::new(dimension)?.synthesize(&adder)?;
    println!("Ternary adder stage (a, b, s) -> (a, b, s + a + b mod 3):");
    println!("  2-cycles:    {}", synthesis.two_cycles());
    println!("  macro gates: {}", synthesis.resources().macro_gates);
    println!("  G-gates:     {}", synthesis.resources().g_gates);
    println!("  ancillas:    {}", synthesis.resources().total_ancillas());

    // Verify the compiled circuit against the truth table.
    let mut checked = 0usize;
    for state in all_basis_states(dimension, variables) {
        let expected = adder.apply(&state)?;
        let actual = synthesis.circuit().apply_to_basis(&state)?;
        assert_eq!(actual, expected, "mismatch for input {state:?}");
        checked += 1;
    }
    println!("  verified on {checked} inputs");

    // Show a few additions.
    println!("\nSample additions (s starts at 0):");
    for (a, b) in [(1u32, 1u32), (2, 2), (2, 1)] {
        let output = synthesis.circuit().apply_to_basis(&[a, b, 0])?;
        println!("  {a} + {b} = {} (mod 3)", output[2]);
    }
    Ok(())
}
