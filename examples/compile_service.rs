//! The compile service end to end: boot the TCP front door, drive a mix of
//! jobs over loopback from concurrent tenants, snapshot the warm cache,
//! and shut down cleanly.
//!
//! Demonstrates:
//!
//! 1. booting `CompileService` on an ephemeral loopback port with a bounded
//!    shared cache and a persistent worker pool;
//! 2. the newline-JSON protocol via `ServiceClient` — ok, error and
//!    rejected replies;
//! 3. warm-starting a second service from the first one's cache snapshot
//!    (the same jobs then compile without a single cache miss).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compile_service
//! ```

use qudit_synthesis::service::{CompileService, JobRequest, ServiceClient, ServiceConfig};

fn gadget_source(dimension: u32, width: usize, levels: (u32, u32)) -> String {
    format!(
        "OPENQASM 3.0;\nqudit[{dimension}] q[{width}];\n\
         ctrl @ ctrl @ swap({}, {}) q[0], q[1], q[2];\n",
        levels.0, levels.1,
    )
}

fn main() -> std::io::Result<()> {
    // 1. Boot: ephemeral loopback port, two workers, a 64-entry cache.
    let service = CompileService::start(
        ServiceConfig::new()
            .workers(2)
            .cache_capacity(64)
            .max_queue_depth(8),
    )?;
    let addr = service.local_addr();
    println!("service listening on {addr}");

    // 2. Two tenants drive jobs concurrently; each connection's replies
    //    come back in submission order.
    let sources: Vec<String> = vec![
        gadget_source(3, 3, (0, 1)),
        gadget_source(3, 4, (0, 2)),
        gadget_source(5, 3, (1, 3)),
    ];
    std::thread::scope(|scope| {
        for tenant in ["alice", "bob"] {
            let sources = &sources;
            scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                for (j, source) in sources.iter().enumerate() {
                    client
                        .send(&JobRequest {
                            tenant: tenant.into(),
                            id: format!("{tenant}-{j}"),
                            source: source.clone(),
                        })
                        .expect("send");
                }
                for _ in sources {
                    let reply = client.recv().expect("reply");
                    assert!(reply.is_ok(), "{}", reply.message);
                    println!(
                        "  {} -> ok: {} gates, depth {}",
                        reply.id, reply.gates, reply.depth
                    );
                }
            });
        }
    });

    // A malformed job gets a typed error reply, not a dropped connection.
    let mut client = ServiceClient::connect(addr)?;
    let bad = client.roundtrip(&JobRequest {
        tenant: "alice".into(),
        id: "bad".into(),
        source: "OPENQASM 3.0;\nboop q[0];".into(),
    })?;
    assert!(!bad.is_ok());
    println!("  bad -> {:?}: {}", bad.status, bad.message);

    // 3. Snapshot the warm cache, shut down, and warm-start a successor.
    let snapshot = service.cache_snapshot();
    let stats = service.shutdown();
    println!(
        "cold service: {} completed, {} errors, cache {} hits / {} misses / {} entries",
        stats.completed,
        stats.compile_errors,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.entries,
    );
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.compile_errors, 1);

    let warm = CompileService::start(ServiceConfig::new().workers(2).warm_start(snapshot))?;
    let mut client = ServiceClient::connect(warm.local_addr())?;
    for (j, source) in sources.iter().enumerate() {
        let reply = client.roundtrip(&JobRequest {
            tenant: "carol".into(),
            id: format!("carol-{j}"),
            source: source.clone(),
        })?;
        assert!(reply.is_ok(), "{}", reply.message);
    }
    drop(client);
    let warm_stats = warm.shutdown();
    println!(
        "warm service: {} completed, cache {} hits / {} misses",
        warm_stats.completed, warm_stats.cache.hits, warm_stats.cache.misses,
    );
    assert_eq!(
        warm_stats.cache.misses, 0,
        "warm start answers every lookup"
    );
    println!("clean shutdown");
    Ok(())
}
