//! Exact synthesis of a random two-qutrit unitary with one clean ancilla
//! (Theorem IV.1).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example unitary_synthesis
//! ```

use qudit_core::Dimension;
use qudit_sim::random::random_unitary;
use qudit_sim::statevector::circuit_unitary;
use qudit_unitary::{two_level_decompose, UnitarySynthesizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = Dimension::new(3)?;
    let variables = 2usize;
    let mut rng = StdRng::seed_from_u64(7);

    // A Haar-like random unitary on two qutrits (9 × 9).
    let unitary = random_unitary(dimension.register_size(variables), &mut rng);
    let factors = two_level_decompose(&unitary)?;
    println!(
        "Two-level decomposition of a random 9x9 unitary: {} factors",
        factors.len()
    );

    let synthesis = UnitarySynthesizer::new(dimension)?.synthesize(&unitary, variables)?;
    println!("Synthesis over {} qudits:", synthesis.layout().width);
    println!("  two-level factors: {}", synthesis.two_level_factors());
    println!("  macro gates:       {}", synthesis.resources().macro_gates);
    println!(
        "  two-qudit gates:   {}",
        synthesis.resources().two_qudit_gates
    );
    println!(
        "  clean ancillas:    {}",
        synthesis.resources().clean_ancillas()
    );
    println!("  d^(2n) reference:  {}", 3u32.pow(2 * variables as u32));

    // Verify numerically: the circuit acts as U ⊗ I on the idle ancilla wire.
    let built = circuit_unitary(synthesis.circuit())?;
    let mut max_error = 0.0f64;
    for r in 0..9 {
        for c in 0..9 {
            for anc in 0..3 {
                let entry = built[(r * 3 + anc, c * 3 + anc)];
                let error = (entry - unitary[(r, c)]).norm();
                max_error = max_error.max(error);
            }
        }
    }
    println!("  max |U_built − U| entry error: {max_error:.2e}");
    assert!(max_error < 1e-7);
    println!("  verification: passed");
    Ok(())
}
