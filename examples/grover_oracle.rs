//! A d-ary Grover-style marking oracle built from the paper's
//! multi-controlled gates.
//!
//! The oracle marks a single basis state `|w⟩` of an `n`-qudit search
//! register by incrementing a flag qudit exactly when the register equals
//! `|w⟩` — the standard compute-into-flag oracle used by the d-ary Grover
//! algorithm the paper cites as an application ([21]).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example grover_oracle
//! ```

use qudit_core::{Circuit, Dimension, QuditId, SingleQuditOp};
use qudit_sim::basis::all_basis_states;
use qudit_synthesis::{emit_multi_controlled, Resources};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = Dimension::new(3)?;
    let search_qudits = 4usize;
    let marked: Vec<u32> = vec![2, 0, 1, 2];

    // Register: search qudits 0..n, flag qudit n.  Odd d ⇒ no ancilla needed.
    let flag = QuditId::new(search_qudits);
    let mut circuit = Circuit::new(dimension, search_qudits + 1);
    let controls: Vec<(QuditId, u32)> = marked
        .iter()
        .enumerate()
        .map(|(i, &level)| (QuditId::new(i), level))
        .collect();
    emit_multi_controlled(&mut circuit, &controls, flag, &SingleQuditOp::Add(1), &[])?;

    let resources = Resources::for_circuit(&circuit, qudit_core::AncillaUsage::none())?;
    println!("Grover marking oracle over {search_qudits} qutrits (marked item {marked:?}):");
    println!("  macro gates: {}", resources.macro_gates);
    println!("  G-gates:     {}", resources.g_gates);
    println!("  ancillas:    {}", resources.total_ancillas());

    // Check the oracle classically: exactly one of the 81 register states
    // increments the flag.
    let mut marked_count = 0usize;
    for state in all_basis_states(dimension, search_qudits) {
        let mut input = state.clone();
        input.push(0); // flag starts at |0⟩
        let output = circuit.apply_to_basis(&input)?;
        if output[search_qudits] == 1 {
            marked_count += 1;
            assert_eq!(state, marked);
        } else {
            assert_eq!(output[search_qudits], 0);
        }
    }
    println!("  states that set the flag: {marked_count} (expected 1)");
    assert_eq!(marked_count, 1);

    // Gate-count scaling with the size of the search register.
    println!("\nOracle G-gate count vs. register size (d = 3):");
    for n in [2usize, 4, 6, 8] {
        let mut oracle = Circuit::new(dimension, n + 1);
        let controls: Vec<(QuditId, u32)> =
            (0..n).map(|i| (QuditId::new(i), (i % 3) as u32)).collect();
        emit_multi_controlled(
            &mut oracle,
            &controls,
            QuditId::new(n),
            &SingleQuditOp::Add(1),
            &[],
        )?;
        let resources = Resources::for_circuit(&oracle, qudit_core::AncillaUsage::none())?;
        println!("  n = {n}: {:6} G-gates", resources.g_gates);
    }
    Ok(())
}
