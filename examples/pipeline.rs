//! The compilation facade: configuring, extending and self-verifying the
//! paper's lowering flow with `Compiler` / `CompileOptions`.
//!
//! Demonstrates:
//!
//! 1. the default options (macro → elementary → G-gates → cancellation)
//!    with the unified `CompileResult` report;
//! 2. a custom user-defined `Pass` appended to the assembled pipeline via
//!    `CompileOptions::build_manager`;
//! 3. the `Verify::Exhaustive` knob, which re-simulates every stage and
//!    fails the compilation if a pass changes the circuit's semantics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pipeline
//! ```

use qudit_core::pipeline::Pass;
use qudit_core::{Circuit, Dimension, Gate, SingleQuditOp};
use qudit_synthesis::{CompileOptions, KToffoli, Verify};

/// A custom diagnostic pass: reports how many gates are swap-based, then
/// returns the circuit unchanged.
struct CountSwaps;

impl Pass for CountSwaps {
    fn name(&self) -> &str {
        "count-swaps"
    }

    fn run(&self, circuit: Circuit) -> qudit_core::Result<Circuit> {
        let swaps = circuit
            .gates()
            .iter()
            .filter(|g| {
                matches!(
                    g.op(),
                    qudit_core::GateOp::Single(SingleQuditOp::Swap(_, _))
                )
            })
            .count();
        println!(
            "  [count-swaps] {swaps} swap-based gates of {}",
            circuit.len()
        );
        Ok(circuit)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = Dimension::new(3)?;

    // Synthesise a 5-controlled Toffoli (ancilla-free for odd d).
    let synthesis = KToffoli::new(dimension, 5)?.synthesize()?;
    let width = synthesis.layout().width;

    // 1. The default options with the unified report.
    println!("Default CompileOptions on the 5-controlled Toffoli (d = 3):");
    let compiler = CompileOptions::new().shape(dimension, width).compiler();
    let result = compiler.compile(synthesis.circuit())?;
    for stats in &result.stats {
        println!("  {stats}");
    }
    println!(
        "  total: {:.1} µs, final depth {}\n",
        result.total_elapsed().as_secs_f64() * 1e6,
        result.depth
    );

    // 2. Extending the assembled pipeline with a custom pass.
    println!("Extended pipeline with a custom pass:");
    let extended = CompileOptions::new()
        .shape(dimension, width)
        .build_manager()
        .with_pass(CountSwaps);
    let extended_report = extended.run(synthesis.circuit().clone())?;
    assert_eq!(extended_report.circuit, result.circuit);
    println!();

    // 3. Self-verifying compilation: every stage checks semantics
    //    preservation, and the report carries the verdict.
    println!("Self-verifying compilation (Verify::Exhaustive):");
    let verified = CompileOptions::new()
        .verify(Verify::Exhaustive)
        .shape(dimension, width)
        .compiler();
    let verified_result = verified.compile(synthesis.circuit())?;
    for stats in &verified_result.stats {
        println!("  {stats}");
    }
    assert_eq!(verified_result.circuit, result.circuit);
    assert!(verified_result.verification.is_verified());
    assert!(verified_result.circuit.gates().iter().all(Gate::is_g_gate));
    println!(
        "\nAll stages verified ({}); final circuit has {} G-gates.",
        verified_result.verification,
        result.circuit.len()
    );
    Ok(())
}
