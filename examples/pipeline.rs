//! The compilation pipeline: composing, extending and self-verifying the
//! paper's lowering flow with `Pass` / `PassManager`.
//!
//! Demonstrates:
//!
//! 1. the `Pipeline::standard` preset (macro → elementary → G-gates →
//!    cancellation) with per-pass statistics;
//! 2. a custom user-defined `Pass` appended to the preset;
//! 3. the `VerifyEquivalence` wrapper, which re-simulates every stage and
//!    fails the pipeline if a pass changes the circuit's semantics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pipeline
//! ```

use qudit_core::pipeline::Pass;
use qudit_core::{Circuit, Dimension, Gate, SingleQuditOp};
use qudit_sim::pipeline::VerifyEquivalence;
use qudit_synthesis::{KToffoli, Pipeline};

/// A custom diagnostic pass: reports how many gates are swap-based, then
/// returns the circuit unchanged.
struct CountSwaps;

impl Pass for CountSwaps {
    fn name(&self) -> &str {
        "count-swaps"
    }

    fn run(&self, circuit: Circuit) -> qudit_core::Result<Circuit> {
        let swaps = circuit
            .gates()
            .iter()
            .filter(|g| {
                matches!(
                    g.op(),
                    qudit_core::GateOp::Single(SingleQuditOp::Swap(_, _))
                )
            })
            .count();
        println!(
            "  [count-swaps] {swaps} swap-based gates of {}",
            circuit.len()
        );
        Ok(circuit)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = Dimension::new(3)?;

    // Synthesise a 5-controlled Toffoli (ancilla-free for odd d).
    let synthesis = KToffoli::new(dimension, 5)?.synthesize()?;
    let width = synthesis.layout().width;

    // 1. The standard preset with statistics.
    println!("Pipeline::standard on the 5-controlled Toffoli (d = 3):");
    let report = Pipeline::standard(dimension, width).run(synthesis.circuit().clone())?;
    for stats in &report.stats {
        println!("  {stats}");
    }
    println!(
        "  total: {:.1} µs\n",
        report.total_elapsed().as_secs_f64() * 1e6
    );

    // 2. Extending the preset with a custom pass.
    println!("Extended pipeline with a custom pass:");
    let extended = Pipeline::standard(dimension, width).with_pass(CountSwaps);
    let extended_report = extended.run(synthesis.circuit().clone())?;
    assert_eq!(extended_report.circuit, report.circuit);
    println!();

    // 3. Self-verifying pipeline: every stage checks semantics preservation.
    println!("Self-verifying pipeline (VerifyEquivalence around every stage):");
    let verified = VerifyEquivalence::wrap_manager(Pipeline::standard(dimension, width));
    let verified_report = verified.run(synthesis.circuit().clone())?;
    for stats in &verified_report.stats {
        println!("  {stats}");
    }
    assert_eq!(verified_report.circuit, report.circuit);
    assert!(verified_report.circuit.gates().iter().all(Gate::is_g_gate));
    println!(
        "\nAll stages verified; final circuit has {} G-gates.",
        report.circuit.len()
    );
    Ok(())
}
