//! Compiling random d-ary reversible functions (Theorem IV.2) and comparing
//! the measured G-gate count against the counting lower bound (Lemma IV.3).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example reversible_compiler
//! ```

use qudit_core::Dimension;
use qudit_reversible::{lower_bound, ReversibleFunction, ReversibleSynthesizer};
use qudit_sim::basis::all_basis_states;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2023);

    println!(
        "{:>3} {:>3} {:>9} {:>10} {:>12} {:>12} {:>9}",
        "d", "n", "2-cycles", "G-gates", "n*d^n", "lower bnd", "ancillas"
    );
    for (d, n) in [(3u32, 2usize), (3, 3), (5, 2), (4, 2), (4, 3)] {
        let dimension = Dimension::new(d)?;
        let function = ReversibleFunction::random(dimension, n, &mut rng);
        let synthesis = ReversibleSynthesizer::new(dimension)?.synthesize(&function)?;

        // Functional verification on every input.
        for state in all_basis_states(dimension, n) {
            let mut padded = state.clone();
            padded.resize(synthesis.layout().width, 0);
            let out = synthesis.circuit().apply_to_basis(&padded)?;
            assert_eq!(&out[..n], function.apply(&state)?.as_slice());
        }

        let target = n as f64 * (d as f64).powi(n as i32);
        let bound = lower_bound::g_gate_lower_bound(dimension, n, 2);
        println!(
            "{:>3} {:>3} {:>9} {:>10} {:>12.0} {:>12.1} {:>9}",
            d,
            n,
            synthesis.two_cycles(),
            synthesis.resources().g_gates,
            target,
            bound,
            synthesis.resources().total_ancillas(),
        );
    }
    println!("\nAll compiled circuits verified against their truth tables.");
    Ok(())
}
