//! Circuit depth: the number of layers when gates acting on disjoint qudits
//! are executed in parallel.
//!
//! Depth is the secondary cost metric used throughout the NISQ literature the
//! paper cites; the experiment harness reports it alongside gate counts.

use crate::circuit::Circuit;

/// Computes the depth of a circuit under the usual greedy (as-soon-as-possible)
/// scheduling: a gate starts in the earliest layer after every qudit it
/// touches has finished its previous gate.
///
/// The empty circuit has depth 0.
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_core::depth::circuit_depth;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(1)))?;
/// // The two gates touch different qudits, so they fit in one layer.
/// assert_eq!(circuit_depth(&circuit), 1);
/// # Ok(())
/// # }
/// ```
pub fn circuit_depth(circuit: &Circuit) -> usize {
    let mut finish = vec![0usize; circuit.width()];
    let mut depth = 0usize;
    for gate in circuit.gates() {
        let start = gate
            .qudits()
            .iter()
            .map(|q| finish[q.index()])
            .max()
            .unwrap_or(0);
        let layer = start + 1;
        for q in gate.qudits() {
            finish[q.index()] = layer;
        }
        depth = depth.max(layer);
    }
    depth
}

/// Groups the gates of a circuit into layers under the same greedy schedule,
/// returning the gate indices of each layer in order.
pub fn layers(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut finish = vec![0usize; circuit.width()];
    let mut result: Vec<Vec<usize>> = Vec::new();
    for (index, gate) in circuit.gates().iter().enumerate() {
        let start = gate
            .qudits()
            .iter()
            .map(|q| finish[q.index()])
            .max()
            .unwrap_or(0);
        let layer = start + 1;
        for q in gate.qudits() {
            finish[q.index()] = layer;
        }
        if result.len() < layer {
            result.resize_with(layer, Vec::new);
        }
        result[layer - 1].push(index);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::gate::Gate;
    use crate::ops::SingleQuditOp;
    use crate::qudit::QuditId;

    fn dim() -> Dimension {
        Dimension::new(3).unwrap()
    }

    #[test]
    fn empty_circuit_has_depth_zero() {
        assert_eq!(circuit_depth(&Circuit::new(dim(), 3)), 0);
        assert!(layers(&Circuit::new(dim(), 3)).is_empty());
    }

    #[test]
    fn disjoint_gates_share_a_layer() {
        let mut c = Circuit::new(dim(), 4);
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(1)))
            .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(3),
            vec![Control::zero(QuditId::new(2))],
        ))
        .unwrap();
        assert_eq!(circuit_depth(&c), 1);
        assert_eq!(layers(&c), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn overlapping_gates_stack_up() {
        let mut c = Circuit::new(dim(), 3);
        for _ in 0..4 {
            c.push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                QuditId::new(1),
                vec![Control::zero(QuditId::new(0))],
            ))
            .unwrap();
        }
        assert_eq!(circuit_depth(&c), 4);
        assert_eq!(layers(&c).len(), 4);
    }

    #[test]
    fn depth_never_exceeds_gate_count() {
        let mut c = Circuit::new(dim(), 3);
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Add(2),
            QuditId::new(2),
            vec![Control::odd(QuditId::new(0))],
        ))
        .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(1)))
            .unwrap();
        let depth = circuit_depth(&c);
        assert!(depth <= c.len());
        assert!(depth >= 1);
        let total: usize = layers(&c).iter().map(Vec::len).sum();
        assert_eq!(total, c.len());
    }
}
