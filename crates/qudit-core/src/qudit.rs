//! Qudit identifiers within a circuit.

use std::fmt;

/// Identifier of a single qudit (wire) within a [`crate::Circuit`].
///
/// Qudits are numbered `0, 1, …, width − 1` from the top of the circuit
/// diagram downwards, matching the figures in the paper.
///
/// # Example
///
/// ```
/// # use qudit_core::QuditId;
/// let q = QuditId::new(3);
/// assert_eq!(q.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuditId(usize);

impl QuditId {
    /// Creates a qudit identifier from its wire index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        QuditId(index)
    }

    /// Returns the wire index of this qudit.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for QuditId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<usize> for QuditId {
    fn from(index: usize) -> Self {
        QuditId(index)
    }
}

impl From<QuditId> for usize {
    fn from(id: QuditId) -> Self {
        id.0
    }
}

/// Builds a contiguous range of qudit identifiers `start, …, start + count − 1`.
///
/// # Example
///
/// ```
/// # use qudit_core::{qudit_range, QuditId};
/// assert_eq!(qudit_range(2, 3), vec![QuditId::new(2), QuditId::new(3), QuditId::new(4)]);
/// ```
pub fn qudit_range(start: usize, count: usize) -> Vec<QuditId> {
    (start..start + count).map(QuditId::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_usize() {
        let q = QuditId::from(5usize);
        assert_eq!(usize::from(q), 5);
        assert_eq!(q.to_string(), "q5");
    }

    #[test]
    fn range_builder() {
        assert_eq!(qudit_range(0, 0), Vec::<QuditId>::new());
        assert_eq!(qudit_range(1, 2), vec![QuditId::new(1), QuditId::new(2)]);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(QuditId::new(1) < QuditId::new(2));
    }
}
