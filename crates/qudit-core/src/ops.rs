//! Single-qudit operations: the level permutations used by the paper
//! (`Xij`, `X+y`, the parity swaps `X_eo^e` and `X_eo^o`) and general
//! single-qudit unitaries.

use std::fmt;

use crate::dimension::Dimension;
use crate::error::{QuditError, Result};
use crate::math::{Complex, SquareMatrix, MATRIX_TOLERANCE};

/// A permutation of the levels `0, …, d − 1` of a single qudit.
///
/// # Example
///
/// ```
/// # use qudit_core::{Dimension, Permutation};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let cycle = Permutation::cycle_add(d, 1); // |i⟩ ↦ |i+1 mod 3⟩
/// assert_eq!(cycle.apply(2), 0);
/// assert_eq!(cycle.inverse().apply(0), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// Creates a permutation from the table `map`, where level `i` is sent to
    /// `map[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NotAPermutation`] if `map` is not a bijection on
    /// `{0, …, map.len() − 1}`.
    pub fn from_map(map: Vec<u32>) -> Result<Self> {
        let n = map.len();
        let mut seen = vec![false; n];
        for &to in &map {
            let to = to as usize;
            if to >= n || seen[to] {
                return Err(QuditError::NotAPermutation);
            }
            seen[to] = true;
        }
        Ok(Permutation { map })
    }

    /// The identity permutation on `d` levels.
    pub fn identity(dimension: Dimension) -> Self {
        Permutation {
            map: dimension.levels().collect(),
        }
    }

    /// The transposition `Xij` exchanging levels `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either level is out of range; use
    /// [`SingleQuditOp::swap`] for a checked constructor.
    pub fn transposition(dimension: Dimension, i: u32, j: u32) -> Self {
        assert!(i != j, "transposition levels must differ");
        assert!(
            i < dimension.get() && j < dimension.get(),
            "levels out of range"
        );
        let mut map: Vec<u32> = dimension.levels().collect();
        map.swap(i as usize, j as usize);
        Permutation { map }
    }

    /// The cyclic shift `X+y` sending `|i⟩` to `|(i + y) mod d⟩`.
    pub fn cycle_add(dimension: Dimension, y: u32) -> Self {
        let d = dimension.get();
        let map = dimension.levels().map(|i| (i + y) % d).collect();
        Permutation { map }
    }

    /// Number of levels the permutation acts on.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the permutation acts on zero levels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Applies the permutation to a level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[inline]
    pub fn apply(&self, level: u32) -> u32 {
        self.map[level as usize]
    }

    /// Returns the underlying level map.
    pub fn as_map(&self) -> &[u32] {
        &self.map
    }

    /// Returns the inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.map.len()];
        for (from, &to) in self.map.iter().enumerate() {
            inv[to as usize] = from as u32;
        }
        Permutation { map: inv }
    }

    /// Returns the composition `self ∘ other` (apply `other` first).
    ///
    /// # Panics
    ///
    /// Panics if the permutations act on different numbers of levels.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.map.len(),
            other.map.len(),
            "permutation sizes must match"
        );
        let map = other
            .map
            .iter()
            .map(|&mid| self.map[mid as usize])
            .collect();
        Permutation { map }
    }

    /// Returns `true` if this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &to)| i as u32 == to)
    }

    /// Decomposes the permutation into a time-ordered sequence of
    /// transpositions `(i, j)`.
    ///
    /// Applying the transpositions in the returned order (first element
    /// first) reproduces the permutation; at most `d − 1` transpositions are
    /// returned, matching the bound used in the paper.
    pub fn transpositions(&self) -> Vec<(u32, u32)> {
        let n = self.map.len();
        let mut result = Vec::new();
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] || self.map[start] as usize == start {
                visited[start] = true;
                continue;
            }
            // Collect the cycle containing `start`.
            let mut cycle = vec![start as u32];
            visited[start] = true;
            let mut current = self.map[start] as usize;
            while current != start {
                visited[current] = true;
                cycle.push(current as u32);
                current = self.map[current] as usize;
            }
            // The cycle (c0 c1 … c_{L−1}) equals the time-ordered product
            // (c0 c1), (c0 c2), …, (c0 c_{L−1}).
            for target in cycle.iter().skip(1) {
                result.push((cycle[0], *target));
            }
        }
        result
    }

    /// Returns the parity of the permutation: `true` when it is even.
    pub fn is_even(&self) -> bool {
        self.transpositions().len().is_multiple_of(2)
    }

    /// Returns `true` if the permutation is its own inverse.
    pub fn is_involution(&self) -> bool {
        self.compose(self).is_identity()
    }

    /// Builds an arbitrary permutation with `σ(0) = a` and `σ(1) = b`,
    /// used for conjugating `X01` into `Xab`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either level is out of range.
    pub fn sending_01_to(dimension: Dimension, a: u32, b: u32) -> Permutation {
        assert!(a != b, "target levels must differ");
        let d = dimension.get();
        assert!(a < d && b < d, "levels out of range");
        let mut map = vec![u32::MAX; d as usize];
        map[0] = a;
        map[1] = b;
        let mut remaining: Vec<u32> = dimension.levels().filter(|l| *l != a && *l != b).collect();
        remaining.reverse();
        for slot in map.iter_mut().skip(2) {
            *slot = remaining.pop().expect("enough levels remain");
        }
        Permutation { map }
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, to) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{to}")?;
        }
        write!(f, "]")
    }
}

/// A single-qudit operation.
///
/// Classical variants permute the computational basis; [`SingleQuditOp::Unitary`]
/// holds an arbitrary `d × d` unitary and is used by the general
/// multi-controlled-U and unitary-synthesis code paths.
#[derive(Debug, Clone, PartialEq)]
pub enum SingleQuditOp {
    /// The transposition `Xij` of two levels.
    Swap(u32, u32),
    /// The cyclic shift `X+y`.
    Add(u32),
    /// `X_eo^e = X01·X23·…·X(d−2)(d−1)` — swaps each even level with the next
    /// odd level. Defined for even `d`.
    ParityFlipEven,
    /// `X_eo^o = X12·X34·…·X(d−2)(d−1)` — fixes `0` and swaps each odd level
    /// with the next even level. Defined for odd `d`.
    ParityFlipOdd,
    /// An arbitrary level permutation.
    Perm(Permutation),
    /// An arbitrary single-qudit unitary.
    Unitary(SquareMatrix),
}

impl SingleQuditOp {
    /// Checked constructor for [`SingleQuditOp::Swap`].
    ///
    /// # Errors
    ///
    /// Returns an error when `i == j` or either level is `≥ d`.
    pub fn swap(dimension: Dimension, i: u32, j: u32) -> Result<Self> {
        if i == j {
            return Err(QuditError::DegenerateTransposition { level: i });
        }
        dimension.check_level(i)?;
        dimension.check_level(j)?;
        Ok(SingleQuditOp::Swap(i, j))
    }

    /// Checked constructor for [`SingleQuditOp::Add`] (`X+y`, `y` taken mod d).
    pub fn add(dimension: Dimension, y: u32) -> Self {
        SingleQuditOp::Add(y % dimension.get())
    }

    /// The `X−y = X+(d−y)` operation.
    pub fn subtract(dimension: Dimension, y: u32) -> Self {
        let d = dimension.get();
        SingleQuditOp::Add((d - (y % d)) % d)
    }

    /// Checked constructor for a unitary operation.
    ///
    /// # Errors
    ///
    /// Returns an error when the matrix shape does not match the dimension or
    /// the matrix is not unitary.
    pub fn unitary(dimension: Dimension, matrix: SquareMatrix) -> Result<Self> {
        if matrix.size() != dimension.as_usize() {
            return Err(QuditError::MatrixShapeMismatch {
                found: matrix.size(),
                expected: dimension.as_usize(),
            });
        }
        if !matrix.is_unitary(MATRIX_TOLERANCE) {
            return Err(QuditError::NotUnitary);
        }
        Ok(SingleQuditOp::Unitary(matrix))
    }

    /// The qudit Fourier gate `F[r][c] = ω^{rc}/√d` — the Clifford
    /// generator that exchanges the `X` and `Z` Pauli axes (the
    /// `fourier` statement of the [text IR](crate::qasm)).
    pub fn fourier(dimension: Dimension) -> SingleQuditOp {
        let d = dimension.get();
        let omega = 2.0 * std::f64::consts::PI / f64::from(d);
        let scale = 1.0 / f64::from(d).sqrt();
        let mut entries = Vec::with_capacity(dimension.as_usize() * dimension.as_usize());
        for r in 0..d {
            for c in 0..d {
                entries.push(Complex::from_phase(omega * f64::from(r) * f64::from(c)).scale(scale));
            }
        }
        let matrix = SquareMatrix::from_rows(dimension.as_usize(), entries)
            .expect("fourier matrix is square");
        SingleQuditOp::Unitary(matrix)
    }

    /// The qudit phase gate: `diag(1, i)` for qubits, `diag(ω^{j(j+1)/2})`
    /// for odd dimensions — the diagonal Clifford generator (the `phase`
    /// statement of the [text IR](crate::qasm)).
    pub fn clifford_phase(dimension: Dimension) -> SingleQuditOp {
        let d = dimension.get();
        let n = dimension.as_usize();
        let mut entries = vec![Complex::ZERO; n * n];
        for j in 0..d {
            let theta = if d == 2 {
                std::f64::consts::FRAC_PI_2 * f64::from(j)
            } else {
                let half_square = u64::from(j) * u64::from(j + 1) / 2;
                2.0 * std::f64::consts::PI * (half_square as f64) / f64::from(d)
            };
            entries[j as usize * n + j as usize] = Complex::from_phase(theta);
        }
        let matrix = SquareMatrix::from_rows(n, entries).expect("phase matrix is square");
        SingleQuditOp::Unitary(matrix)
    }

    /// Returns `true` when the operation is a classical permutation of the
    /// computational basis.
    pub fn is_classical(&self) -> bool {
        match self {
            SingleQuditOp::Unitary(m) => {
                // A unitary might still be a permutation matrix.
                self.try_permutation_from_matrix(m).is_some()
            }
            _ => true,
        }
    }

    fn try_permutation_from_matrix(&self, m: &SquareMatrix) -> Option<Permutation> {
        let n = m.size();
        let mut map = vec![0u32; n];
        for col in 0..n {
            let mut hit = None;
            for row in 0..n {
                let z = m[(row, col)];
                if z.approx_eq(Complex::ONE, MATRIX_TOLERANCE) {
                    if hit.is_some() {
                        return None;
                    }
                    hit = Some(row as u32);
                } else if !z.approx_eq(Complex::ZERO, MATRIX_TOLERANCE) {
                    return None;
                }
            }
            map[col] = hit?;
        }
        Permutation::from_map(map).ok()
    }

    /// Validates the operation against a dimension.
    ///
    /// # Errors
    ///
    /// Returns an error when levels are out of range, the parity-flip
    /// operations are used with the wrong dimension parity, or an embedded
    /// permutation/matrix has the wrong size.
    pub fn validate(&self, dimension: Dimension) -> Result<()> {
        match self {
            SingleQuditOp::Swap(i, j) => {
                if i == j {
                    return Err(QuditError::DegenerateTransposition { level: *i });
                }
                dimension.check_level(*i)?;
                dimension.check_level(*j)
            }
            SingleQuditOp::Add(y) => dimension.check_level(*y),
            SingleQuditOp::ParityFlipEven => {
                if dimension.is_even() {
                    Ok(())
                } else {
                    Err(QuditError::ParityMismatch {
                        dimension: dimension.get(),
                        requires_even: true,
                    })
                }
            }
            SingleQuditOp::ParityFlipOdd => {
                if dimension.is_odd() {
                    Ok(())
                } else {
                    Err(QuditError::ParityMismatch {
                        dimension: dimension.get(),
                        requires_even: false,
                    })
                }
            }
            SingleQuditOp::Perm(p) => {
                if p.len() == dimension.as_usize() {
                    Ok(())
                } else {
                    Err(QuditError::MatrixShapeMismatch {
                        found: p.len(),
                        expected: dimension.as_usize(),
                    })
                }
            }
            SingleQuditOp::Unitary(m) => {
                if m.size() != dimension.as_usize() {
                    return Err(QuditError::MatrixShapeMismatch {
                        found: m.size(),
                        expected: dimension.as_usize(),
                    });
                }
                if m.is_unitary(MATRIX_TOLERANCE) {
                    Ok(())
                } else {
                    Err(QuditError::NotUnitary)
                }
            }
        }
    }

    /// Returns the permutation implemented by a classical operation.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NotClassical`] for non-permutation unitaries.
    pub fn to_permutation(&self, dimension: Dimension) -> Result<Permutation> {
        let d = dimension.get();
        match self {
            SingleQuditOp::Swap(i, j) => Ok(Permutation::transposition(dimension, *i, *j)),
            SingleQuditOp::Add(y) => Ok(Permutation::cycle_add(dimension, *y)),
            SingleQuditOp::ParityFlipEven => {
                let mut map: Vec<u32> = dimension.levels().collect();
                let mut l = 0;
                while l + 1 < d {
                    map.swap(l as usize, (l + 1) as usize);
                    l += 2;
                }
                Ok(Permutation { map })
            }
            SingleQuditOp::ParityFlipOdd => {
                let mut map: Vec<u32> = dimension.levels().collect();
                let mut l = 1;
                while l + 1 < d {
                    map.swap(l as usize, (l + 1) as usize);
                    l += 2;
                }
                Ok(Permutation { map })
            }
            SingleQuditOp::Perm(p) => Ok(p.clone()),
            SingleQuditOp::Unitary(m) => self
                .try_permutation_from_matrix(m)
                .ok_or(QuditError::NotClassical),
        }
    }

    /// Applies a classical operation to a level.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NotClassical`] for non-permutation unitaries.
    pub fn apply_level(&self, level: u32, dimension: Dimension) -> Result<u32> {
        match self {
            SingleQuditOp::Swap(i, j) => Ok(if level == *i {
                *j
            } else if level == *j {
                *i
            } else {
                level
            }),
            SingleQuditOp::Add(y) => Ok((level + *y) % dimension.get()),
            _ => Ok(self.to_permutation(dimension)?.apply(level)),
        }
    }

    /// Returns the inverse operation.
    pub fn inverse(&self, dimension: Dimension) -> SingleQuditOp {
        match self {
            SingleQuditOp::Swap(i, j) => SingleQuditOp::Swap(*i, *j),
            SingleQuditOp::Add(y) => {
                let d = dimension.get();
                SingleQuditOp::Add((d - (*y % d)) % d)
            }
            SingleQuditOp::ParityFlipEven => SingleQuditOp::ParityFlipEven,
            SingleQuditOp::ParityFlipOdd => SingleQuditOp::ParityFlipOdd,
            SingleQuditOp::Perm(p) => SingleQuditOp::Perm(p.inverse()),
            SingleQuditOp::Unitary(m) => SingleQuditOp::Unitary(m.adjoint()),
        }
    }

    /// Returns the `d × d` matrix of the operation.
    pub fn to_matrix(&self, dimension: Dimension) -> SquareMatrix {
        match self {
            SingleQuditOp::Unitary(m) => m.clone(),
            _ => {
                let p = self
                    .to_permutation(dimension)
                    .expect("classical operations always have a permutation");
                let map: Vec<usize> = p.as_map().iter().map(|&l| l as usize).collect();
                SquareMatrix::from_permutation(&map).expect("valid permutation")
            }
        }
    }

    /// Decomposes a classical operation into a time-ordered list of
    /// transpositions (the `Xij` gates of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NotClassical`] for non-permutation unitaries.
    pub fn transpositions(&self, dimension: Dimension) -> Result<Vec<(u32, u32)>> {
        match self {
            SingleQuditOp::Swap(i, j) => Ok(vec![(*i, *j)]),
            _ => Ok(self.to_permutation(dimension)?.transpositions()),
        }
    }

    /// Returns `true` when applying the operation twice yields the identity.
    pub fn is_involution(&self, dimension: Dimension) -> bool {
        match self {
            SingleQuditOp::Swap(_, _)
            | SingleQuditOp::ParityFlipEven
            | SingleQuditOp::ParityFlipOdd => true,
            SingleQuditOp::Add(y) => {
                let d = dimension.get();
                (2 * (*y % d)).is_multiple_of(d)
            }
            SingleQuditOp::Perm(p) => p.is_involution(),
            SingleQuditOp::Unitary(m) => {
                (m * m).approx_eq(&SquareMatrix::identity(m.size()), MATRIX_TOLERANCE)
            }
        }
    }
}

impl fmt::Display for SingleQuditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SingleQuditOp::Swap(i, j) => write!(f, "X{i}{j}"),
            SingleQuditOp::Add(y) => write!(f, "X+{y}"),
            SingleQuditOp::ParityFlipEven => write!(f, "Xeo^e"),
            SingleQuditOp::ParityFlipOdd => write!(f, "Xeo^o"),
            SingleQuditOp::Perm(p) => write!(f, "P{p}"),
            SingleQuditOp::Unitary(_) => write!(f, "U"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn permutation_round_trip() {
        let p = Permutation::from_map(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply(0), 2);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn invalid_permutation_rejected() {
        assert!(Permutation::from_map(vec![0, 0]).is_err());
        assert!(Permutation::from_map(vec![0, 5]).is_err());
    }

    #[test]
    fn transposition_decomposition_reconstructs_permutation() {
        let d = dim(7);
        for y in 0..7 {
            let p = Permutation::cycle_add(d, y);
            let mut rebuilt = Permutation::identity(d);
            for (i, j) in p.transpositions() {
                rebuilt = Permutation::transposition(d, i, j).compose(&rebuilt);
            }
            assert_eq!(
                rebuilt, p,
                "X+{y} should be rebuilt from its transpositions"
            );
            assert!(p.transpositions().len() <= 6);
        }
    }

    #[test]
    fn sending_01_produces_requested_images() {
        let d = dim(6);
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a == b {
                    continue;
                }
                let p = Permutation::sending_01_to(d, a, b);
                assert_eq!(p.apply(0), a);
                assert_eq!(p.apply(1), b);
                assert!(Permutation::from_map(p.as_map().to_vec()).is_ok());
            }
        }
    }

    #[test]
    fn parity_flip_even_swaps_pairs() {
        let d = dim(6);
        let p = SingleQuditOp::ParityFlipEven.to_permutation(d).unwrap();
        assert_eq!(p.as_map(), &[1, 0, 3, 2, 5, 4]);
        assert!(SingleQuditOp::ParityFlipEven.validate(dim(5)).is_err());
    }

    #[test]
    fn parity_flip_odd_fixes_zero() {
        let d = dim(5);
        let p = SingleQuditOp::ParityFlipOdd.to_permutation(d).unwrap();
        assert_eq!(p.as_map(), &[0, 2, 1, 4, 3]);
        assert!(SingleQuditOp::ParityFlipOdd.validate(dim(6)).is_err());
    }

    #[test]
    fn add_and_subtract_are_inverse() {
        let d = dim(5);
        let add = SingleQuditOp::add(d, 2);
        let sub = SingleQuditOp::subtract(d, 2);
        for l in 0..5 {
            let forward = add.apply_level(l, d).unwrap();
            assert_eq!(sub.apply_level(forward, d).unwrap(), l);
        }
        assert_eq!(add.inverse(d), sub);
    }

    #[test]
    fn swap_constructor_validates() {
        let d = dim(3);
        assert!(SingleQuditOp::swap(d, 0, 0).is_err());
        assert!(SingleQuditOp::swap(d, 0, 3).is_err());
        assert!(SingleQuditOp::swap(d, 0, 2).is_ok());
    }

    #[test]
    fn unitary_constructor_checks_unitarity() {
        let d = dim(2);
        let bad = SquareMatrix::from_rows(
            2,
            vec![Complex::ONE, Complex::ONE, Complex::ZERO, Complex::ONE],
        )
        .unwrap();
        assert!(SingleQuditOp::unitary(d, bad).is_err());
        let good = SquareMatrix::identity(2);
        assert!(SingleQuditOp::unitary(d, good).is_ok());
    }

    #[test]
    fn permutation_matrix_recognised_as_classical() {
        let d = dim(3);
        let m = SingleQuditOp::Swap(0, 2).to_matrix(d);
        let op = SingleQuditOp::Unitary(m);
        assert!(op.is_classical());
        assert_eq!(
            op.to_permutation(d).unwrap(),
            Permutation::transposition(d, 0, 2)
        );
    }

    #[test]
    fn involution_detection() {
        let d = dim(4);
        assert!(SingleQuditOp::Swap(1, 3).is_involution(d));
        assert!(SingleQuditOp::Add(2).is_involution(d));
        assert!(!SingleQuditOp::Add(1).is_involution(d));
        assert!(SingleQuditOp::ParityFlipEven.is_involution(d));
    }

    #[test]
    fn matrices_of_classical_ops_are_unitary() {
        let d = dim(5);
        for op in [
            SingleQuditOp::Swap(0, 4),
            SingleQuditOp::Add(3),
            SingleQuditOp::ParityFlipOdd,
        ] {
            assert!(
                op.to_matrix(d).is_unitary(MATRIX_TOLERANCE),
                "{op} should be unitary"
            );
        }
    }
}
