//! A hand-rolled work-stealing pool: scoped threads by default, an optional
//! persistent-worker crew for dispatch-heavy callers.
//!
//! The compilation flow is embarrassingly parallel in two places: lowering
//! is independent per gate, and batch compilation is independent per
//! circuit.  The build environment is offline (no `rayon`), so this module
//! provides the minimal parallel primitive both need: [`WorkStealingPool`],
//! a fixed-size pool with per-worker deques and work stealing, plus the
//! convenience function [`parallel_map`].
//!
//! Tasks are distributed over the workers in contiguous chunks; an idle
//! worker first drains its own deque from the front and then steals from the
//! back of a victim's deque, so load imbalance (one circuit much larger than
//! the rest) does not serialise the batch.  Results are returned in input
//! order regardless of execution order, which keeps every parallel caller
//! deterministic.
//!
//! # Scoped vs persistent workers
//!
//! [`WorkStealingPool::new`] / [`WorkStealingPool::with_threads`] build the
//! historical *scoped* pool: every [`WorkStealingPool::map`] call spawns its
//! workers inside a [`std::thread::scope`] and joins them before returning.
//! That is simple and borrows freely from the caller's stack, but pays one
//! OS thread spawn per worker per dispatch — fine for experiment sweeps,
//! wasteful for a long-running service dispatching thousands of small maps.
//!
//! [`WorkStealingPool::persistent`] builds a pool with a crew of long-lived
//! worker threads instead: `map` enqueues the batch to the crew over a
//! channel and blocks until the crew has finished it, so a dispatch costs a
//! queue push instead of thread spawns.  The two modes run the same
//! stealing loop over the same chunked deques and sort results by input
//! index, so their outputs are byte-identical (pinned by test).  The crew
//! threads are joined when the last clone of the pool is dropped.
//!
//! # Example
//!
//! ```
//! use qudit_core::pool::WorkStealingPool;
//!
//! let pool = WorkStealingPool::with_threads(4);
//! let squares = pool.map((0..100u64).collect(), |x| x * x);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//!
//! // Same API, long-lived workers: nothing is spawned per call.
//! let service_pool = WorkStealingPool::persistent(4);
//! assert_eq!(service_pool.map((0..100u64).collect(), |x| x * x), squares);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV_VAR: &str = "QUDIT_THREADS";

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Returns `true` when the calling thread is a pool worker.
///
/// Nested data parallelism oversubscribes the machine (each of N batch
/// workers spawning N gate-lowering workers runs N² threads), so the
/// parallel paths inside passes check this and fall back to their
/// sequential implementation when the job as a whole is already running on
/// a pool.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Locks a mutex, recovering the guard when a peer worker poisoned it.
///
/// Worker panics are caught and propagated as the original payload (see
/// [`WorkStealingPool::map`]); the data behind these locks is only
/// index/result bookkeeping that stays consistent across a mid-task unwind,
/// so poisoning carries no information the pool does not already track.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The process-wide default worker count: `QUDIT_THREADS` if set to a
/// positive integer, else `std::thread::available_parallelism`.
///
/// Resolved **once** per process (first use) and snapshotted: a mid-process
/// change to the environment variable does not re-size later pools, so
/// concurrently constructed pools can never disagree on the default.
/// Explicit sizes ([`WorkStealingPool::with_threads`],
/// [`WorkStealingPool::persistent`]) bypass the snapshot entirely.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var(THREADS_ENV_VAR)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// A fixed-size work-stealing pool.
///
/// Scoped by default — each [`WorkStealingPool::map`] call spawns its
/// workers inside a [`std::thread::scope`], which lets the tasks borrow
/// from the caller's stack (shared caches, pass managers) without any
/// `'static` bounds, and joins them before returning.  The
/// [`WorkStealingPool::persistent`] constructor swaps the per-call spawn
/// for a crew of long-lived worker threads fed over a channel; see the
/// module docs for the trade-off.
///
/// Clones of a persistent pool share one crew (the handle is an [`Arc`]);
/// clones of a scoped pool are plain copies of the configured size.
#[derive(Debug, Clone)]
pub struct WorkStealingPool {
    threads: usize,
    crew: Option<Arc<crew::Crew>>,
}

impl PartialEq for WorkStealingPool {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
            && match (&self.crew, &other.crew) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl Eq for WorkStealingPool {}

impl Default for WorkStealingPool {
    fn default() -> Self {
        WorkStealingPool::new()
    }
}

impl WorkStealingPool {
    /// A scoped pool sized to the machine: `std::thread::available_parallelism`,
    /// overridable with the `QUDIT_THREADS` environment variable.
    ///
    /// The environment is read **once** per process and the resolved default
    /// snapshotted, so every `new()` in a process agrees on the size even if
    /// the variable changes mid-run.
    pub fn new() -> Self {
        WorkStealingPool {
            threads: default_threads(),
            crew: None,
        }
    }

    /// A scoped pool with exactly `threads` workers (clamped to at least
    /// one).
    pub fn with_threads(threads: usize) -> Self {
        WorkStealingPool {
            threads: threads.max(1),
            crew: None,
        }
    }

    /// A pool with `threads` **persistent** workers (clamped to at least
    /// one): the worker threads are spawned now, parked on a channel, and
    /// reused by every [`WorkStealingPool::map`] call instead of being
    /// re-spawned per dispatch.
    ///
    /// Results are byte-identical to the scoped pool's.  The crew is shared
    /// by clones and joined when the last clone is dropped.
    pub fn persistent(threads: usize) -> Self {
        let threads = threads.max(1);
        WorkStealingPool {
            threads,
            crew: Some(Arc::new(crew::Crew::spawn(threads))),
        }
    }

    /// A persistent pool sized like [`WorkStealingPool::new`].
    pub fn persistent_default() -> Self {
        WorkStealingPool::persistent(default_threads())
    }

    /// The number of worker threads the pool dispatches over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` when the pool runs on long-lived persistent workers.
    pub fn is_persistent(&self) -> bool {
        self.crew.is_some()
    }

    /// Applies `f` to every item, in parallel, returning the results in
    /// input order.
    ///
    /// With a single worker (or a single item) the map runs inline on the
    /// calling thread, so small inputs pay no threading overhead.  A
    /// persistent pool called from one of its own workers also runs inline:
    /// blocking a crew thread on work only the crew can perform would
    /// deadlock under saturation.
    ///
    /// # Panics
    ///
    /// Propagates the first panic from `f` (by its original payload) after
    /// the batch has been retired; the remaining tasks are abandoned, and
    /// the pool stays usable for later calls.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || (self.crew.is_some() && in_worker()) {
            return items.into_iter().map(f).collect();
        }
        let batch = BatchState::new(items, workers, &f);
        match &self.crew {
            Some(crew) => crew.run(&batch, workers),
            None => Self::run_scoped(&batch, workers),
        }
        batch.finish(n)
    }

    /// The scoped execution mode: spawn `workers` threads for this batch
    /// and join them before returning.
    fn run_scoped<T, R, F>(batch: &BatchState<'_, T, R, F>, workers: usize)
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        thread::scope(|scope| {
            for slot in 0..workers {
                let batch = &batch;
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    batch.work(slot);
                });
            }
        });
    }
}

/// One in-flight `map` batch: the chunked task deques, the shared result
/// sink and the panic bookkeeping, shared by reference with every worker
/// (scoped or persistent) that participates.
struct BatchState<'f, T, R, F> {
    /// Per-slot task deques (contiguous chunks of the input).
    queues: Vec<Mutex<VecDeque<(usize, T)>>>,
    /// The mapped function, borrowed from the caller.
    f: &'f F,
    /// Results, in completion order; sorted by index at the end.
    collected: Mutex<Vec<(usize, R)>>,
    /// The first caught panic payload, resumed by [`BatchState::finish`].
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Set when a task panicked: peers stop popping and retire early.
    abort: AtomicBool,
}

impl<'f, T, R, F> BatchState<'f, T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    fn new(items: Vec<T>, workers: usize, f: &'f F) -> Self {
        let n = items.len();
        let chunk = n.div_ceil(workers);
        let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
        let mut tasks = items.into_iter().enumerate();
        for _ in 0..workers {
            queues.push(Mutex::new(tasks.by_ref().take(chunk).collect()));
        }
        BatchState {
            queues,
            f,
            collected: Mutex::new(Vec::with_capacity(n)),
            panic: Mutex::new(None),
            abort: AtomicBool::new(false),
        }
    }

    /// One worker's task loop: drain the own deque from the front, then
    /// steal from a victim's back to keep the victim's cache-warm front
    /// intact.  Stops early when a peer recorded a panic.
    fn work(&self, me: usize) {
        use std::sync::atomic::Ordering;
        let workers = self.queues.len();
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            if self.abort.load(Ordering::Acquire) {
                break;
            }
            let mut task = lock_unpoisoned(&self.queues[me]).pop_front();
            if task.is_none() {
                for offset in 1..workers {
                    let victim = (me + offset) % workers;
                    task = lock_unpoisoned(&self.queues[victim]).pop_back();
                    if task.is_some() {
                        break;
                    }
                }
            }
            // Tasks never spawn tasks, so globally empty deques mean this
            // worker is done.
            let Some((index, item)) = task else { break };
            match catch_unwind(AssertUnwindSafe(|| (self.f)(item))) {
                Ok(result) => local.push((index, result)),
                Err(payload) => {
                    // Keep the first payload; later panics (if any) are
                    // dropped with their tasks, like a joined scope would.
                    let mut slot = lock_unpoisoned(&self.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    self.abort.store(true, Ordering::Release);
                    break;
                }
            }
        }
        lock_unpoisoned(&self.collected).extend(local);
    }

    /// Retires the batch on the calling thread once every worker has
    /// exited: resumes a caught panic, or sorts and returns the results.
    fn finish(self, n: usize) -> Vec<R> {
        if let Some(payload) = lock_unpoisoned(&self.panic).take() {
            resume_unwind(payload);
        }
        let mut with_index = self
            .collected
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        // A real invariant, not a debug assertion: a lost task means a
        // silently wrong (shorter) result vector, which release builds must
        // catch too.
        assert_eq!(with_index.len(), n, "every pool task must run exactly once");
        with_index.sort_unstable_by_key(|(index, _)| *index);
        with_index.into_iter().map(|(_, result)| result).collect()
    }
}

/// The persistent-worker crew: long-lived threads parked on an injector
/// channel of type-erased batch references.
///
/// This is the one module in the crate that needs `unsafe`: a long-lived
/// thread cannot borrow a `map` caller's stack through safe channels (the
/// closure and items are not `'static`), so batches are passed as erased
/// raw pointers.  Soundness rests on one invariant, enforced by
/// [`Crew::run`]: **the caller blocks until every injected reference has
/// been consumed and its worker has exited the batch**, so no worker can
/// touch the pointer after `map` returns and the `BatchState` leaves the
/// caller's stack.  (This is the same contract `std::thread::scope` fakes
/// with lifetimes — and the same technique rayon's registry uses.)
#[allow(unsafe_code)]
mod crew {
    use super::{lock_unpoisoned, BatchState, IN_WORKER};
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::thread::JoinHandle;

    /// A countdown latch: `run` waits until every injected batch reference
    /// has been fully retired by a worker.
    ///
    /// Heap-allocated (`Arc`) and owned independently of the batch, so the
    /// final decrement-and-notify never touches the caller's stack.
    struct Latch {
        outstanding: Mutex<usize>,
        done: Condvar,
    }

    impl Latch {
        fn new(count: usize) -> Arc<Self> {
            Arc::new(Latch {
                outstanding: Mutex::new(count),
                done: Condvar::new(),
            })
        }

        /// Marks one batch reference retired (worker fully out of the
        /// batch) — the notify happens while the lock is held, so a woken
        /// waiter cannot observe the count before this update completes.
        fn retire_one(&self) {
            let mut outstanding = lock_unpoisoned(&self.outstanding);
            *outstanding -= 1;
            self.done.notify_all();
        }

        fn wait_zero(&self) {
            let mut outstanding = lock_unpoisoned(&self.outstanding);
            while *outstanding > 0 {
                outstanding = self
                    .done
                    .wait(outstanding)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }

    /// A type-erased reference to a live [`BatchState`] on some caller's
    /// stack, plus the worker slot it should run and the latch retiring it.
    struct BatchRef {
        data: *const (),
        run: unsafe fn(*const (), usize),
        slot: usize,
        latch: Arc<Latch>,
    }

    // SAFETY: `data` points to a `BatchState<T, R, F>` with `T: Send`,
    // `R: Send`, `F: Sync` (enforced by the only constructor, `Crew::run`),
    // whose shared state is fully synchronised (mutexes/atomics), so the
    // reference may be dereferenced from another thread; the caller keeps
    // the pointee alive until the latch retires every reference.
    unsafe impl Send for BatchRef {}

    /// The erased entry point a worker calls: reconstitutes the concrete
    /// `BatchState` type and runs the stealing loop for `slot`.
    ///
    /// # Safety
    ///
    /// `data` must point to a live `BatchState<T, R, F>` whose original
    /// `map` caller is blocked on the corresponding latch.
    unsafe fn run_erased<T, R, F>(data: *const (), slot: usize)
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        // SAFETY: see the function contract; `Crew::run` blocks the owner
        // of the pointee until this call (and the latch retire after it)
        // has completed.
        let batch = unsafe { &*(data as *const BatchState<'_, T, R, F>) };
        batch.work(slot);
    }

    /// Injector state shared between the crew's workers and dispatchers.
    struct Injector {
        queue: VecDeque<BatchRef>,
        shutdown: bool,
    }

    /// The crew: worker threads plus the injector channel that feeds them.
    pub(super) struct Crew {
        shared: Arc<Shared>,
        workers: Vec<JoinHandle<()>>,
    }

    struct Shared {
        injector: Mutex<Injector>,
        available: Condvar,
    }

    impl std::fmt::Debug for Crew {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Crew")
                .field("workers", &self.workers.len())
                .finish()
        }
    }

    impl Crew {
        /// Spawns `threads` persistent workers parked on the injector.
        pub(super) fn spawn(threads: usize) -> Self {
            let shared = Arc::new(Shared {
                injector: Mutex::new(Injector {
                    queue: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
            });
            let workers = (0..threads)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(&shared))
                })
                .collect();
            Crew { shared, workers }
        }

        /// Runs one batch on the crew and blocks until it is fully retired.
        ///
        /// This is the soundness linchpin: the batch references are erased
        /// to raw pointers here, and this function does not return until
        /// the latch confirms every reference was consumed and its worker
        /// exited the batch — after which no live pointer to `batch`
        /// remains anywhere in the crew.
        pub(super) fn run<T, R, F>(&self, batch: &BatchState<'_, T, R, F>, workers: usize)
        where
            T: Send,
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            let latch = Latch::new(workers);
            {
                let mut injector = lock_unpoisoned(&self.shared.injector);
                for slot in 0..workers {
                    injector.queue.push_back(BatchRef {
                        data: batch as *const BatchState<'_, T, R, F> as *const (),
                        run: run_erased::<T, R, F>,
                        slot,
                        latch: Arc::clone(&latch),
                    });
                }
                self.shared.available.notify_all();
            }
            latch.wait_zero();
        }
    }

    impl Drop for Crew {
        fn drop(&mut self) {
            {
                let mut injector = lock_unpoisoned(&self.shared.injector);
                injector.shutdown = true;
                self.shared.available.notify_all();
            }
            for worker in self.workers.drain(..) {
                // A worker that somehow died early is already accounted
                // for; joining collects the rest.
                let _ = worker.join();
            }
        }
    }

    /// A persistent worker: pull a batch reference, run it, retire it,
    /// repeat until shutdown.
    fn worker_loop(shared: &Shared) {
        IN_WORKER.with(|flag| flag.set(true));
        loop {
            let batch_ref = {
                let mut injector = lock_unpoisoned(&shared.injector);
                loop {
                    if let Some(batch_ref) = injector.queue.pop_front() {
                        break batch_ref;
                    }
                    if injector.shutdown {
                        return;
                    }
                    injector = shared
                        .available
                        .wait(injector)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            // SAFETY: the dispatcher in `Crew::run` keeps the pointee alive
            // until this reference is retired below.
            unsafe { (batch_ref.run)(batch_ref.data, batch_ref.slot) };
            batch_ref.latch.retire_one();
        }
    }
}

/// [`WorkStealingPool::map`] on a default-sized pool.
///
/// # Example
///
/// ```
/// let doubled = qudit_core::pool::parallel_map(vec![1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    WorkStealingPool::new().map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_preserve_input_order() {
        let pool = WorkStealingPool::with_threads(4);
        let out = pool.map((0..1000usize).collect(), |x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let pool = WorkStealingPool::with_threads(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkStealingPool::with_threads(1);
        assert_eq!(pool.threads(), 1);
        let calling_thread = thread::current().id();
        let ids = pool.map(vec![0; 8], |_| thread::current().id());
        assert!(ids.iter().all(|id| *id == calling_thread));
    }

    #[test]
    fn multiple_worker_threads_participate() {
        let pool = WorkStealingPool::with_threads(4);
        // Tasks long enough that a single worker cannot finish the whole
        // batch before the others start.
        let ids = pool.map(vec![0; 64], |_| {
            thread::sleep(Duration::from_millis(1));
            thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(
            distinct.len() > 1,
            "expected more than one worker thread to run tasks"
        );
    }

    #[test]
    fn uneven_tasks_are_stolen_not_serialised() {
        // Worker 0's chunk holds all the slow tasks; stealing must spread
        // them out, which we observe as every task still completing with the
        // correct result and order.
        let pool = WorkStealingPool::with_threads(4);
        let out = pool.map((0..64usize).collect(), |i| {
            if i < 16 {
                thread::sleep(Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkStealingPool::with_threads(3);
        pool.map((0..500usize).collect(), |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(WorkStealingPool::with_threads(0).threads(), 1);
        assert_eq!(WorkStealingPool::persistent(0).threads(), 1);
    }

    #[test]
    fn in_worker_is_visible_inside_tasks_only() {
        assert!(!in_worker());
        let pool = WorkStealingPool::with_threads(4);
        let flags = pool.map(vec![(); 16], |()| in_worker());
        assert!(flags.into_iter().all(|flag| flag));
        assert!(!in_worker());
        // The single-threaded inline path runs on the caller, not a worker.
        let inline = WorkStealingPool::with_threads(1).map(vec![()], |()| in_worker());
        assert_eq!(inline, vec![false]);
    }

    #[test]
    fn default_size_is_snapshotted_once_per_process() {
        // Whatever the first resolution saw, later constructions must agree
        // even if the environment variable changes mid-process.
        let first = WorkStealingPool::new().threads();
        std::env::set_var(THREADS_ENV_VAR, "63");
        assert_eq!(WorkStealingPool::new().threads(), first);
        std::env::remove_var(THREADS_ENV_VAR);
        assert_eq!(WorkStealingPool::new().threads(), first);
        // Explicit sizes are not snapshotted.
        assert_eq!(WorkStealingPool::with_threads(63).threads(), 63);
    }

    #[test]
    fn scoped_panic_propagates_the_original_payload() {
        let pool = WorkStealingPool::with_threads(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..64usize).collect(), |i| {
                if i == 13 {
                    panic!("task 13 exploded");
                }
                i
            })
        }))
        .expect_err("the task panic must propagate");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("payload is the original panic message");
        assert!(message.contains("task 13 exploded"));
        // The pool stays usable after a panicked batch.
        assert_eq!(pool.map(vec![1, 2, 3], |x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn persistent_panic_propagates_and_crew_survives() {
        let pool = WorkStealingPool::persistent(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..64usize).collect(), |i| {
                if i == 7 {
                    panic!("persistent task 7 exploded");
                }
                i
            })
        }))
        .expect_err("the task panic must propagate");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("payload is the original panic message");
        assert!(message.contains("persistent task 7 exploded"));
        // The crew threads caught the panic and keep serving.
        let out = pool.map((0..100usize).collect(), |x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn persistent_results_are_byte_identical_to_scoped() {
        let scoped = WorkStealingPool::with_threads(4);
        let persistent = WorkStealingPool::persistent(4);
        assert!(persistent.is_persistent());
        assert!(!scoped.is_persistent());
        for size in [0usize, 1, 7, 64, 1000] {
            let items: Vec<u64> = (0..size as u64).collect();
            let a = scoped.map(items.clone(), |x| {
                x.wrapping_mul(0x9E37_79B9).rotate_left(7)
            });
            let b = persistent.map(items, |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
            assert_eq!(a, b, "batch size {size}");
        }
    }

    #[test]
    fn persistent_workers_are_reused_across_dispatches() {
        let pool = WorkStealingPool::persistent(2);
        let mut seen = HashSet::new();
        for _ in 0..10 {
            let ids = pool.map(vec![0; 16], |_| {
                thread::sleep(Duration::from_micros(200));
                thread::current().id()
            });
            seen.extend(ids);
        }
        // Ten dispatches over two long-lived workers touch at most two
        // distinct threads; a scoped pool would have spawned twenty.
        assert!(seen.len() <= 2, "saw {} distinct workers", seen.len());
    }

    #[test]
    fn persistent_map_from_a_worker_runs_inline() {
        let pool = WorkStealingPool::persistent(2);
        let inner = pool.clone();
        let nested = pool.map(vec![0u32; 4], move |_| {
            // Nested dispatch on the same crew must not deadlock.
            inner.map(vec![1u32, 2, 3], |x| x * 2)
        });
        assert!(nested.iter().all(|v| *v == vec![2, 4, 6]));
    }

    #[test]
    fn clones_share_one_crew() {
        let pool = WorkStealingPool::persistent(2);
        let clone = pool.clone();
        assert_eq!(pool, clone);
        assert_ne!(pool, WorkStealingPool::persistent(2));
        assert_ne!(pool, WorkStealingPool::with_threads(2));
        assert_eq!(
            WorkStealingPool::with_threads(2),
            WorkStealingPool::with_threads(2)
        );
        drop(pool);
        // The crew survives while any clone lives.
        assert_eq!(clone.map(vec![5, 6], |x| x + 1), vec![6, 7]);
    }

    #[test]
    fn persistent_pools_serve_concurrent_dispatchers() {
        let pool = WorkStealingPool::persistent(4);
        thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for round in 0..8u64 {
                        let base = t * 1000 + round;
                        let out = pool.map((0..32u64).collect(), |x| x + base);
                        assert_eq!(out, (base..base + 32).collect::<Vec<_>>());
                    }
                });
            }
        });
    }
}
