//! A hand-rolled scoped-thread work-stealing pool.
//!
//! The compilation flow is embarrassingly parallel in two places: lowering
//! is independent per gate, and batch compilation is independent per
//! circuit.  The build environment is offline (no `rayon`), so this module
//! provides the minimal parallel primitive both need: [`WorkStealingPool`],
//! a fixed-size pool of scoped threads (`std::thread::scope`) with per-worker
//! deques and work stealing, plus the convenience function [`parallel_map`].
//!
//! Tasks are distributed over the workers in contiguous chunks; an idle
//! worker first drains its own deque from the front and then steals from the
//! back of a victim's deque, so load imbalance (one circuit much larger than
//! the rest) does not serialise the batch.  Results are returned in input
//! order regardless of execution order, which keeps every parallel caller
//! deterministic.
//!
//! # Example
//!
//! ```
//! use qudit_core::pool::WorkStealingPool;
//!
//! let pool = WorkStealingPool::with_threads(4);
//! let squares = pool.map((0..100u64).collect(), |x| x * x);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV_VAR: &str = "QUDIT_THREADS";

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Returns `true` when the calling thread is a pool worker.
///
/// Nested data parallelism oversubscribes the machine (each of N batch
/// workers spawning N gate-lowering workers runs N² threads), so the
/// parallel paths inside passes check this and fall back to their
/// sequential implementation when the job as a whole is already running on
/// a pool.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// A fixed-size work-stealing pool of scoped threads.
///
/// The pool itself holds no threads: each [`WorkStealingPool::map`] call
/// spawns its workers inside a [`std::thread::scope`], which lets the tasks
/// borrow from the caller's stack (shared caches, pass managers) without any
/// `'static` bounds or unsafe code, and joins them before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkStealingPool {
    threads: usize,
}

impl Default for WorkStealingPool {
    fn default() -> Self {
        WorkStealingPool::new()
    }
}

impl WorkStealingPool {
    /// A pool sized to the machine: `std::thread::available_parallelism`,
    /// overridable with the `QUDIT_THREADS` environment variable.
    pub fn new() -> Self {
        let threads = std::env::var(THREADS_ENV_VAR)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        WorkStealingPool { threads }
    }

    /// A pool with exactly `threads` workers (clamped to at least one).
    pub fn with_threads(threads: usize) -> Self {
        WorkStealingPool {
            threads: threads.max(1),
        }
    }

    /// The number of worker threads the pool will spawn.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning the results in
    /// input order.
    ///
    /// With a single worker (or a single item) the map runs inline on the
    /// calling thread, so small inputs pay no threading overhead.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after all workers have been joined.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }

        // Contiguous chunks of (index, item) tasks, one deque per worker.
        let chunk = n.div_ceil(workers);
        let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
        let mut tasks = items.into_iter().enumerate();
        for _ in 0..workers {
            queues.push(Mutex::new(tasks.by_ref().take(chunk).collect()));
        }

        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let collected = &collected;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own deque first (front), then steal from a victim's
                        // back to keep the victim's cache-warm front intact.
                        let mut task = queues[me].lock().expect("pool lock").pop_front();
                        if task.is_none() {
                            for offset in 1..workers {
                                let victim = (me + offset) % workers;
                                task = queues[victim].lock().expect("pool lock").pop_back();
                                if task.is_some() {
                                    break;
                                }
                            }
                        }
                        // Tasks never spawn tasks, so globally empty deques
                        // mean this worker is done.
                        let Some((index, item)) = task else { break };
                        local.push((index, f(item)));
                    }
                    collected.lock().expect("pool lock").extend(local);
                });
            }
        });

        let mut with_index = collected.into_inner().expect("pool lock");
        debug_assert_eq!(with_index.len(), n, "every task must run exactly once");
        with_index.sort_unstable_by_key(|(index, _)| *index);
        with_index.into_iter().map(|(_, result)| result).collect()
    }
}

/// [`WorkStealingPool::map`] on a default-sized pool.
///
/// # Example
///
/// ```
/// let doubled = qudit_core::pool::parallel_map(vec![1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    WorkStealingPool::new().map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_preserve_input_order() {
        let pool = WorkStealingPool::with_threads(4);
        let out = pool.map((0..1000usize).collect(), |x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let pool = WorkStealingPool::with_threads(4);
        assert_eq!(pool.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(pool.map(vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkStealingPool::with_threads(1);
        assert_eq!(pool.threads(), 1);
        let calling_thread = thread::current().id();
        let ids = pool.map(vec![0; 8], |_| thread::current().id());
        assert!(ids.iter().all(|id| *id == calling_thread));
    }

    #[test]
    fn multiple_worker_threads_participate() {
        let pool = WorkStealingPool::with_threads(4);
        // Tasks long enough that a single worker cannot finish the whole
        // batch before the others start.
        let ids = pool.map(vec![0; 64], |_| {
            thread::sleep(Duration::from_millis(1));
            thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(
            distinct.len() > 1,
            "expected more than one worker thread to run tasks"
        );
    }

    #[test]
    fn uneven_tasks_are_stolen_not_serialised() {
        // Worker 0's chunk holds all the slow tasks; stealing must spread
        // them out, which we observe as every task still completing with the
        // correct result and order.
        let pool = WorkStealingPool::with_threads(4);
        let out = pool.map((0..64usize).collect(), |i| {
            if i < 16 {
                thread::sleep(Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkStealingPool::with_threads(3);
        pool.map((0..500usize).collect(), |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        assert_eq!(WorkStealingPool::with_threads(0).threads(), 1);
    }

    #[test]
    fn in_worker_is_visible_inside_tasks_only() {
        assert!(!in_worker());
        let pool = WorkStealingPool::with_threads(4);
        let flags = pool.map(vec![(); 16], |()| in_worker());
        assert!(flags.into_iter().all(|flag| flag));
        assert!(!in_worker());
        // The single-threaded inline path runs on the caller, not a worker.
        let inline = WorkStealingPool::with_threads(1).map(vec![()], |()| in_worker());
        assert_eq!(inline, vec![false]);
    }
}
