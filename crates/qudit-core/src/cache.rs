//! A thread-safe, optionally bounded lowering cache keyed by `(gate kind,
//! dimension, width-class)`, with serializable snapshots.
//!
//! The synthesis constructions emit the same conjugated gadgets thousands of
//! times per circuit — every two-controlled swap of the same dimension
//! expands to the same Fig. 2 / Fig. 5 gadget up to a renaming of the wires.
//! [`LoweringCache`] exploits that: a lowering site is *canonicalised* (its
//! qudits renamed to `0, 1, 2, …` in role order), looked up by the canonical
//! description, and the cached expansion is renamed back to the actual
//! wires.  The cache is shared across threads behind an [`RwLock`], so the
//! parallel batch and per-gate lowering paths all feed the same table, and
//! hit/miss counts are kept both globally (atomics, for the cache lifetime)
//! and per pass run (via [`CacheCounters`], surfaced in pass statistics).
//!
//! # Service-grade features
//!
//! The compile service (`qudit-synthesis::service`) keeps one cache alive
//! across thousands of jobs, which needs three things a per-run cache does
//! not:
//!
//! * **A size bound** — [`LoweringCache::with_capacity`] caps the entry
//!   count; inserting past the bound evicts the least-recently-used entry
//!   and tallies it in [`CacheMetrics::evictions`].  Unbounded caches
//!   ([`LoweringCache::new`]) never evict.
//! * **Contention visibility** — [`LoweringCache::metrics`] reports lock
//!   acquisitions that had to block ([`CacheMetrics::contended`]) and
//!   insert races lost ([`CacheMetrics::race_losses`]), the numbers that
//!   justify sharding when they grow.
//! * **Snapshots** — [`LoweringCache::snapshot`] serialises the table to a
//!   version-tagged text format (expansions ride the exact-round-trip qasm
//!   printer) and [`LoweringCache::restore_snapshot`] loads one back for a
//!   warm start, rejecting corrupt input with
//!   [`QuditError::SnapshotInvalid`].
//!
//! # Example
//!
//! ```
//! use qudit_core::cache::{CacheCounters, LoweringCache};
//! use qudit_core::lowering::lower_circuit_cached;
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut circuit = Circuit::new(d, 3);
//! // The same gate kind on two different wire pairs: one miss, one hit.
//! for target in [1, 2] {
//!     circuit.push(Gate::controlled(
//!         SingleQuditOp::Add(1),
//!         QuditId::new(target),
//!         vec![Control::level(QuditId::new(0), 2)],
//!     ))?;
//! }
//! let cache = LoweringCache::new();
//! let mut counters = CacheCounters::default();
//! let lowered = lower_circuit_cached(&circuit, &cache, &mut counters)?;
//! assert_eq!(counters.hits, 1);
//! assert_eq!(counters.misses, 1);
//! assert_eq!(lowered, qudit_core::lowering::lower_circuit(&circuit)?);
//!
//! // Snapshot the warm cache and restore it into a bounded one.
//! let snapshot = cache.snapshot();
//! let restored = LoweringCache::with_capacity(128);
//! assert_eq!(restored.restore_snapshot(&snapshot)?, cache.len());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::control::{Control, ControlPredicate};
use crate::dimension::Dimension;
use crate::error::{QuditError, Result};
use crate::gate::{Gate, GateOp};
use crate::ops::SingleQuditOp;
use crate::qudit::QuditId;

/// Which lowering stage produced a cached expansion.
///
/// The macro → elementary stage (`qudit-synthesis`) and the elementary →
/// G-gate stage (`qudit_core::lowering`) share one cache; tagging the stage
/// keeps their entries in disjoint key spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoweringStage {
    /// Macro gates → elementary gates (Fig. 2 / Fig. 5 gadget expansion).
    Elementary,
    /// Elementary gates → the G-gate set `{Xij} ∪ {|0⟩-X01}`.
    GGates,
}

/// Width class of a lowering site: whether the register offers a spare wire
/// usable as a borrowed ancilla (the even-`d` gadgets need one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WidthClass {
    /// Fewer than four wires: no spare qudit beyond two controls + target.
    Narrow,
    /// Four or more wires: a borrowed qudit is always available.
    Wide,
}

impl WidthClass {
    /// Classifies a register width.
    pub fn of(width: usize) -> Self {
        if width >= 4 {
            WidthClass::Wide
        } else {
            WidthClass::Narrow
        }
    }
}

/// The gate-kind component of a [`CacheKey`] — the target operation with
/// qudit identities abstracted away.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CachedOpKind {
    /// `Xij`.
    Swap(u32, u32),
    /// `X+y`.
    Add(u32),
    /// `X_eo^e`.
    ParityFlipEven,
    /// `X_eo^o`.
    ParityFlipOdd,
    /// An arbitrary level permutation (by its level map).
    Perm(Vec<u32>),
    /// The value-controlled shift `X±⋆` (source position is implicit in the
    /// canonical wire order).
    AddFrom {
        /// `true` for `X−⋆`, `false` for `X+⋆`.
        negate: bool,
    },
}

impl CachedOpKind {
    /// The key component of a gate operation, or `None` when the operation
    /// is uncacheable (general unitaries have no hashable description).
    fn of(op: &GateOp) -> Option<Self> {
        match op {
            GateOp::Single(SingleQuditOp::Swap(i, j)) => Some(CachedOpKind::Swap(*i, *j)),
            GateOp::Single(SingleQuditOp::Add(y)) => Some(CachedOpKind::Add(*y)),
            GateOp::Single(SingleQuditOp::ParityFlipEven) => Some(CachedOpKind::ParityFlipEven),
            GateOp::Single(SingleQuditOp::ParityFlipOdd) => Some(CachedOpKind::ParityFlipOdd),
            GateOp::Single(SingleQuditOp::Perm(p)) => Some(CachedOpKind::Perm(p.as_map().to_vec())),
            GateOp::Single(SingleQuditOp::Unitary(_)) => None,
            GateOp::AddFrom { negate, .. } => Some(CachedOpKind::AddFrom { negate: *negate }),
        }
    }
}

/// Cache key: `(gate kind, dimension, width-class)`, where the gate kind is
/// the canonicalised operation plus the control predicates in role order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    stage: LoweringStage,
    dimension: u32,
    width_class: WidthClass,
    op: CachedOpKind,
    controls: Vec<ControlPredicate>,
}

/// A lowering site in canonical coordinates: the gate with its qudits
/// renamed to `0, 1, 2, …` in role order (controls, `AddFrom` source,
/// target, then any extra wires such as a borrowed ancilla), plus the table
/// renaming the canonical wires back to the actual ones.
#[derive(Debug, Clone)]
pub struct CanonicalSite {
    key: CacheKey,
    gate: Gate,
    wires: Vec<QuditId>,
}

impl CanonicalSite {
    /// Canonicalises a lowering site, or returns `None` when the gate kind
    /// is uncacheable (general unitaries).
    ///
    /// `extra` lists wires the lowering may touch beyond the gate's own
    /// (for example the borrowed qudit of the even-`d` gadgets), in the order
    /// they should receive canonical indices after the gate's qudits.
    pub fn of(
        stage: LoweringStage,
        gate: &Gate,
        dimension: Dimension,
        width_class: WidthClass,
        extra: &[QuditId],
    ) -> Option<Self> {
        let op = CachedOpKind::of(gate.op())?;
        let mut wires = gate.qudits();
        wires.extend_from_slice(extra);
        let canonical_of = |q: QuditId| {
            QuditId::new(
                wires
                    .iter()
                    .position(|w| *w == q)
                    .expect("gate qudits are in the wire table"),
            )
        };
        let canonical_op = match gate.op() {
            GateOp::Single(op) => GateOp::Single(op.clone()),
            GateOp::AddFrom { source, negate } => GateOp::AddFrom {
                source: canonical_of(*source),
                negate: *negate,
            },
        };
        let canonical_controls: Vec<Control> = gate
            .controls()
            .iter()
            .map(|c| Control::new(canonical_of(c.qudit), c.predicate))
            .collect();
        let canonical_gate = Gate::new(
            canonical_op,
            canonical_of(gate.target()),
            canonical_controls,
        );
        Some(CanonicalSite {
            key: CacheKey {
                stage,
                dimension: dimension.get(),
                width_class,
                op,
                controls: gate.controls().iter().map(|c| c.predicate).collect(),
            },
            gate: canonical_gate,
            wires,
        })
    }

    /// The cache key of this site.
    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// The gate in canonical coordinates (qudits `0, 1, 2, …`).
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The canonical register width (gate qudits plus extra wires).
    pub fn width(&self) -> usize {
        self.wires.len()
    }

    /// Renames a cached canonical expansion back to the actual wires.
    pub fn restore(&self, canonical_gates: &[Gate]) -> Vec<Gate> {
        canonical_gates
            .iter()
            .map(|g| g.map_qudits(|q| self.wires[q.index()]))
            .collect()
    }
}

/// Per-run cache hit/miss tally, recorded in pass statistics.
///
/// Unlike the cache's own counters (which are global, atomic and live as
/// long as the cache), a `CacheCounters` value tallies one pass execution,
/// so merged batch statistics stay deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then insert) the expansion.
    pub misses: u64,
}

impl CacheCounters {
    /// Total number of cache lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Accumulates another tally into this one.
    pub fn merge(&mut self, other: CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Lifetime metrics of a [`LoweringCache`], read with
/// [`LoweringCache::metrics`].
///
/// `misses` counts exactly the insertions, so `misses - evictions` always
/// equals the live entry count — the invariant the service's consistency
/// checks pin.  A thread that computed an expansion but lost the insert
/// race to a peer is tallied as a *hit* (it returns the winner's entry)
/// **and** in `race_losses`, never as a miss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups answered from the cache (including lost insert races).
    pub hits: u64,
    /// Lookups that computed and inserted a new entry.
    pub misses: u64,
    /// Insert races lost: the thread computed an expansion a peer had
    /// inserted first (its result is discarded, the lookup counts as a hit).
    pub race_losses: u64,
    /// Entries evicted to honour the capacity bound.
    pub evictions: u64,
    /// Lock acquisitions that could not proceed immediately (read or
    /// write) — the contention signal that justifies sharding.
    pub contended: u64,
    /// Live entries at the time of the read.
    pub entries: usize,
    /// The configured capacity bound, if any.
    pub capacity: Option<usize>,
}

/// One cached expansion plus its recency stamp (updated on every hit under
/// the read lock, which is why it is atomic).
#[derive(Debug)]
struct CacheEntry {
    gates: Arc<Vec<Gate>>,
    stamp: AtomicU64,
}

/// A thread-safe map from canonical lowering sites to their expansions.
///
/// Shared across threads behind an [`RwLock`]: lookups take the read lock,
/// and only a miss's insertion takes the write lock, so the hot path (hits)
/// never serialises readers.  See the module docs for the capacity bound,
/// metrics and snapshot features the long-running service leans on.
#[derive(Debug, Default)]
pub struct LoweringCache {
    map: RwLock<HashMap<CacheKey, CacheEntry>>,
    capacity: Option<usize>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    race_losses: AtomicU64,
    evictions: AtomicU64,
    contended: AtomicU64,
}

/// Magic first line of the snapshot format; the `v1` suffix is the format
/// version and is checked on restore.
const SNAPSHOT_HEADER: &str = "qudit-lowering-cache v1";

impl LoweringCache {
    /// Creates an empty, unbounded cache (entries are never evicted).
    pub fn new() -> Self {
        LoweringCache::default()
    }

    /// Creates an empty cache bounded to at most `capacity` entries
    /// (clamped to at least one): inserting past the bound evicts the
    /// least-recently-used entry.
    pub fn with_capacity(capacity: usize) -> Self {
        LoweringCache {
            capacity: Some(capacity.max(1)),
            ..LoweringCache::default()
        }
    }

    /// Creates an empty unbounded cache behind an [`Arc`], ready to share
    /// across threads and passes.
    pub fn shared() -> Arc<Self> {
        Arc::new(LoweringCache::new())
    }

    /// [`LoweringCache::with_capacity`] behind an [`Arc`].
    pub fn shared_with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(LoweringCache::with_capacity(capacity))
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of cached expansions.
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global hit/miss counters accumulated over the cache's lifetime.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Full lifetime metrics: hits/misses plus the race, eviction and
    /// contention tallies the service dashboards read.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            race_losses: self.race_losses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
        }
    }

    /// Takes the read lock, counting the acquisition as contended when it
    /// could not proceed immediately.
    fn read_map(&self) -> RwLockReadGuard<'_, HashMap<CacheKey, CacheEntry>> {
        match self.map.try_read() {
            Ok(guard) => guard,
            Err(_) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.map.read().expect("cache lock")
            }
        }
    }

    /// Takes the write lock, counting the acquisition as contended when it
    /// could not proceed immediately.
    fn write_map(&self) -> RwLockWriteGuard<'_, HashMap<CacheKey, CacheEntry>> {
        match self.map.try_write() {
            Ok(guard) => guard,
            Err(_) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.map.write().expect("cache lock")
            }
        }
    }

    /// The next recency stamp.
    fn next_stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evicts least-recently-used entries until the map honours the
    /// capacity bound.  Called with the write lock held, after an insert.
    fn evict_over_capacity(&self, map: &mut HashMap<CacheKey, CacheEntry>) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while map.len() > capacity {
            let Some(oldest) = map
                .iter()
                .min_by_key(|(_, entry)| entry.stamp.load(Ordering::Relaxed))
                .map(|(key, _)| key.clone())
            else {
                return;
            };
            map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up a canonical site, computing and inserting the expansion with
    /// `compute` on a miss.  Returns the expansion (in canonical
    /// coordinates) and whether the lookup was a hit, tallying into both the
    /// global counters and `counters`.
    ///
    /// A thread that computes an expansion but finds a racing peer inserted
    /// the key first keeps the peer's entry and tallies a **hit** (plus
    /// [`CacheMetrics::race_losses`] globally) — never a second miss, so
    /// `misses` equals insertions exactly.
    ///
    /// # Errors
    ///
    /// Propagates `compute` errors; failed computations are not cached.
    pub fn get_or_insert_with(
        &self,
        key: &CacheKey,
        counters: &mut CacheCounters,
        compute: impl FnOnce() -> Result<Vec<Gate>>,
    ) -> Result<Arc<Vec<Gate>>> {
        if let Some(entry) = self.read_map().get(key) {
            entry.stamp.store(self.next_stamp(), Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            counters.hits += 1;
            return Ok(entry.gates.clone());
        }
        // Compute outside any lock: expansions are pure and two racing
        // threads computing the same entry produce identical values.
        let computed = Arc::new(compute()?);
        let mut map = self.write_map();
        match map.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                // A racing thread won the insert; its entry (one shared
                // allocation) is the canonical one and this lookup was,
                // effectively, a hit.
                entry
                    .get()
                    .stamp
                    .store(self.next_stamp(), Ordering::Relaxed);
                self.race_losses.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                counters.hits += 1;
                Ok(entry.get().gates.clone())
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                counters.misses += 1;
                let gates = computed.clone();
                slot.insert(CacheEntry {
                    gates: computed,
                    stamp: AtomicU64::new(self.next_stamp()),
                });
                self.evict_over_capacity(&mut map);
                Ok(gates)
            }
        }
    }

    /// Serialises every entry to the version-tagged snapshot text format.
    ///
    /// Entries are written in least-recently-used-first order, so restoring
    /// into a bounded cache preserves the recency ranking, and expansions
    /// ride the exact-inverse qasm printer ([`crate::qasm::print_circuit`]),
    /// so gate lists round trip bit-for-bit.  The output is deterministic
    /// for a quiescent cache.
    pub fn snapshot(&self) -> String {
        let map = self.read_map();
        let mut entries: Vec<(u64, &CacheKey, &CacheEntry)> = map
            .iter()
            .map(|(key, entry)| (entry.stamp.load(Ordering::Relaxed), key, entry))
            .collect();
        entries.sort_by_key(|&(stamp, key, _)| (stamp, format_key(key)));
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        let _ = writeln!(out, "entries {}", entries.len());
        for (_, key, entry) in entries {
            let Some(program) = expansion_to_program(key.dimension, &entry.gates) else {
                // Unprintable expansions cannot exist today (cached values
                // are always classical); skip defensively rather than
                // corrupt the snapshot.
                continue;
            };
            out.push_str("entry\n");
            out.push_str(&format_key(key));
            let _ = writeln!(out, "program {}", program.lines().count());
            out.push_str(&program);
            if !program.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Restores a snapshot produced by [`LoweringCache::snapshot`] into
    /// this cache, returning the number of entries inserted.
    ///
    /// Entries already present keep their current expansion; the capacity
    /// bound applies as usual (restoring more entries than the bound keeps
    /// the most-recently-written tail).  Restores count as neither hits nor
    /// misses.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::SnapshotInvalid`] for any malformed input —
    /// wrong header or version, truncated entries, unparsable keys, or
    /// embedded programs that fail to parse or disagree with their key's
    /// dimension.  On error the cache is left unchanged.
    pub fn restore_snapshot(&self, text: &str) -> Result<usize> {
        let parsed = parse_snapshot(text)?;
        let mut inserted = 0;
        let mut map = self.write_map();
        for (key, gates) in parsed {
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(key) {
                slot.insert(CacheEntry {
                    gates: Arc::new(gates),
                    stamp: AtomicU64::new(self.next_stamp()),
                });
                inserted += 1;
                self.evict_over_capacity(&mut map);
            }
        }
        Ok(inserted)
    }
}

/// Serialises a cache key as `stage`/`dimension`/`width`/`op`/`controls`
/// lines (the entry body of the snapshot format).
fn format_key(key: &CacheKey) -> String {
    let mut out = String::new();
    let stage = match key.stage {
        LoweringStage::Elementary => "elementary",
        LoweringStage::GGates => "ggates",
    };
    let width = match key.width_class {
        WidthClass::Narrow => "narrow",
        WidthClass::Wide => "wide",
    };
    let _ = writeln!(out, "stage {stage}");
    let _ = writeln!(out, "dimension {}", key.dimension);
    let _ = writeln!(out, "width {width}");
    let op = match &key.op {
        CachedOpKind::Swap(i, j) => format!("swap {i} {j}"),
        CachedOpKind::Add(y) => format!("add {y}"),
        CachedOpKind::ParityFlipEven => "parityflip_e".to_string(),
        CachedOpKind::ParityFlipOdd => "parityflip_o".to_string(),
        CachedOpKind::Perm(map) => {
            let levels: Vec<String> = map.iter().map(u32::to_string).collect();
            format!("perm {}", levels.join(" "))
        }
        CachedOpKind::AddFrom { negate: true } => "addfrom neg".to_string(),
        CachedOpKind::AddFrom { negate: false } => "addfrom pos".to_string(),
    };
    let _ = writeln!(out, "op {op}");
    let controls: Vec<String> = key
        .controls
        .iter()
        .map(|predicate| match predicate {
            ControlPredicate::Level(l) => format!("level:{l}"),
            ControlPredicate::Odd => "odd".to_string(),
            ControlPredicate::EvenNonzero => "even".to_string(),
            ControlPredicate::NonZero => "nonzero".to_string(),
        })
        .collect();
    let _ = writeln!(out, "controls {}", controls.join(" "));
    out
}

/// Renders an expansion as a parseable qasm program over a register wide
/// enough for every referenced qudit, or `None` when a gate fails register
/// validation (cannot happen for the classical expansions the cache holds).
fn expansion_to_program(dimension: u32, gates: &[Gate]) -> Option<String> {
    let dimension = Dimension::new(dimension).ok()?;
    let width = gates
        .iter()
        .flat_map(|gate| gate.qudits())
        .map(|q| q.index() + 1)
        .max()
        .unwrap_or(1);
    let mut circuit = crate::circuit::Circuit::new(dimension, width);
    for gate in gates {
        circuit.push(gate.clone()).ok()?;
    }
    Some(crate::qasm::print_circuit(&circuit))
}

/// The error type for one snapshot line.
fn snapshot_error(line: usize, reason: impl Into<String>) -> QuditError {
    QuditError::SnapshotInvalid {
        line: line as u32,
        reason: reason.into(),
    }
}

/// Consumes one line, failing with a typed error when the input is over.
fn take_line<'a>(lines: &[&'a str], at: &mut usize, expected: &str) -> Result<&'a str> {
    let line = lines
        .get(*at)
        .ok_or_else(|| snapshot_error(*at + 1, format!("missing {expected} line")))?;
    *at += 1;
    Ok(line)
}

/// Consumes one `name value` field line, returning the value.
fn take_field(lines: &[&str], at: &mut usize, name: &str) -> Result<String> {
    let line_no = *at + 1;
    let line = lines
        .get(*at)
        .ok_or_else(|| snapshot_error(line_no, format!("missing '{name}' field")))?;
    *at += 1;
    line.strip_prefix(name)
        .and_then(|rest| rest.strip_prefix(' '))
        .map(str::to_string)
        .ok_or_else(|| snapshot_error(line_no, format!("expected '{name} …'")))
}

/// Parses the snapshot text format back into `(key, expansion)` pairs.
fn parse_snapshot(text: &str) -> Result<Vec<(CacheKey, Vec<Gate>)>> {
    let lines: Vec<&str> = text.lines().collect();
    let mut at = 0usize;
    if take_line(&lines, &mut at, "header")? != SNAPSHOT_HEADER {
        return Err(snapshot_error(
            1,
            format!("expected snapshot header '{SNAPSHOT_HEADER}'"),
        ));
    }
    let count_line = take_line(&lines, &mut at, "entries")?;
    let declared: usize = count_line
        .strip_prefix("entries ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| snapshot_error(at, "expected 'entries <count>'"))?;
    let mut entries = Vec::with_capacity(declared.min(1024));
    while at < lines.len() {
        let line_no = at + 1;
        if take_line(&lines, &mut at, "entry")? != "entry" {
            return Err(snapshot_error(line_no, "expected 'entry'"));
        }
        let field = |at: &mut usize, name: &str| take_field(&lines, at, name);
        let stage = match field(&mut at, "stage")?.as_str() {
            "elementary" => LoweringStage::Elementary,
            "ggates" => LoweringStage::GGates,
            other => return Err(snapshot_error(at, format!("unknown stage '{other}'"))),
        };
        let dimension: u32 = field(&mut at, "dimension")?
            .parse()
            .map_err(|_| snapshot_error(at, "dimension is not an integer"))?;
        Dimension::new(dimension)
            .map_err(|_| snapshot_error(at, format!("invalid dimension {dimension}")))?;
        let width_class = match field(&mut at, "width")?.as_str() {
            "narrow" => WidthClass::Narrow,
            "wide" => WidthClass::Wide,
            other => return Err(snapshot_error(at, format!("unknown width class '{other}'"))),
        };
        let op_text = field(&mut at, "op")?;
        let op = parse_op(&op_text)
            .ok_or_else(|| snapshot_error(at, format!("unparsable op description '{op_text}'")))?;
        let controls_text = field(&mut at, "controls")?;
        let mut controls = Vec::new();
        for token in controls_text.split_whitespace() {
            controls.push(match token {
                "odd" => ControlPredicate::Odd,
                "even" => ControlPredicate::EvenNonzero,
                "nonzero" => ControlPredicate::NonZero,
                level => {
                    let level = level
                        .strip_prefix("level:")
                        .and_then(|l| l.parse::<u32>().ok())
                        .ok_or_else(|| {
                            snapshot_error(at, format!("unknown control predicate '{token}'"))
                        })?;
                    ControlPredicate::Level(level)
                }
            });
        }
        let program_lines: usize = field(&mut at, "program")?
            .parse()
            .map_err(|_| snapshot_error(at, "program line count is not an integer"))?;
        let end = at
            .checked_add(program_lines)
            .filter(|end| *end <= lines.len())
            .ok_or_else(|| snapshot_error(at + 1, "snapshot truncated inside a program"))?;
        let program = lines[at..end].join("\n");
        let program_start = at + 1;
        at = end;
        let circuit = crate::qasm::parse_source(&program).map_err(|error| {
            snapshot_error(
                program_start,
                format!("embedded program does not parse: {error}"),
            )
        })?;
        if circuit.dimension().get() != dimension {
            return Err(snapshot_error(
                program_start,
                format!(
                    "embedded program dimension {} disagrees with key dimension {dimension}",
                    circuit.dimension().get()
                ),
            ));
        }
        entries.push((
            CacheKey {
                stage,
                dimension,
                width_class,
                op,
                controls,
            },
            circuit.gates().to_vec(),
        ));
    }
    if entries.len() != declared {
        return Err(snapshot_error(
            2,
            format!(
                "snapshot declares {declared} entries but contains {}",
                entries.len()
            ),
        ));
    }
    Ok(entries)
}

/// Parses the `op …` field of a snapshot entry.
fn parse_op(text: &str) -> Option<CachedOpKind> {
    let mut tokens = text.split_whitespace();
    let kind = tokens.next()?;
    let op = match kind {
        "swap" => CachedOpKind::Swap(tokens.next()?.parse().ok()?, tokens.next()?.parse().ok()?),
        "add" => CachedOpKind::Add(tokens.next()?.parse().ok()?),
        "parityflip_e" => CachedOpKind::ParityFlipEven,
        "parityflip_o" => CachedOpKind::ParityFlipOdd,
        "perm" => {
            let map: Option<Vec<u32>> = tokens.by_ref().map(|t| t.parse().ok()).collect();
            return Some(CachedOpKind::Perm(map?));
        }
        "addfrom" => match tokens.next()? {
            "neg" => CachedOpKind::AddFrom { negate: true },
            "pos" => CachedOpKind::AddFrom { negate: false },
            _ => return None,
        },
        _ => return None,
    };
    tokens.next().is_none().then_some(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn controlled_add(control: usize, target: usize, level: u32) -> Gate {
        Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(target),
            vec![Control::level(QuditId::new(control), level)],
        )
    }

    fn site_for_level(level: u32) -> CanonicalSite {
        CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(0, 1, level),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap()
    }

    #[test]
    fn same_kind_different_wires_share_a_key() {
        let a = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(0, 1, 2),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let b = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(4, 2, 2),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        assert_eq!(a.key(), b.key());
        assert_eq!(a.gate(), b.gate());
    }

    #[test]
    fn key_distinguishes_dimension_stage_width_class_and_levels() {
        let gate = controlled_add(0, 1, 2);
        let base = CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let other_dim = CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(4),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let other_stage = CanonicalSite::of(
            LoweringStage::Elementary,
            &gate,
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let other_width =
            CanonicalSite::of(LoweringStage::GGates, &gate, dim(3), WidthClass::Wide, &[]).unwrap();
        let other_level = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(0, 1, 1),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        for other in [other_dim, other_stage, other_width, other_level] {
            assert_ne!(base.key(), other.key());
        }
    }

    #[test]
    fn unitary_ops_are_uncacheable() {
        use crate::math::SquareMatrix;
        let gate = Gate::single(
            SingleQuditOp::Unitary(SquareMatrix::identity(3)),
            QuditId::new(0),
        );
        assert!(CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(3),
            WidthClass::Narrow,
            &[]
        )
        .is_none());
    }

    #[test]
    fn restore_renames_back_to_actual_wires() {
        let gate = controlled_add(5, 3, 1);
        let site = CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(3),
            WidthClass::Wide,
            &[QuditId::new(7)],
        )
        .unwrap();
        assert_eq!(site.width(), 3);
        let canonical = vec![
            Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0)),
            Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(1)),
            Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(2)),
        ];
        let restored = site.restore(&canonical);
        assert_eq!(restored[0].target(), QuditId::new(5));
        assert_eq!(restored[1].target(), QuditId::new(3));
        assert_eq!(restored[2].target(), QuditId::new(7));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = LoweringCache::new();
        let site = site_for_level(2);
        let mut counters = CacheCounters::default();
        let expansion = vec![Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(0))];
        let first = cache
            .get_or_insert_with(site.key(), &mut counters, || Ok(expansion.clone()))
            .unwrap();
        let second = cache
            .get_or_insert_with(site.key(), &mut counters, || {
                panic!("second lookup must be a hit")
            })
            .unwrap();
        assert_eq!(*first, *second);
        assert_eq!(counters, CacheCounters { hits: 1, misses: 1 });
        assert_eq!(cache.counters(), counters);
        assert_eq!(cache.len(), 1);
        assert!((counters.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let cache = LoweringCache::new();
        let site = site_for_level(2);
        let mut counters = CacheCounters::default();
        let failed: Result<Arc<Vec<Gate>>> =
            cache.get_or_insert_with(site.key(), &mut counters, || {
                Err(crate::error::QuditError::NotClassical)
            });
        assert!(failed.is_err());
        assert!(cache.is_empty());
        // A later successful computation still populates the entry.
        cache
            .get_or_insert_with(site.key(), &mut counters, || Ok(Vec::new()))
            .unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn counters_merge() {
        let mut a = CacheCounters { hits: 2, misses: 1 };
        a.merge(CacheCounters { hits: 3, misses: 4 });
        assert_eq!(a, CacheCounters { hits: 5, misses: 5 });
        assert_eq!(a.total(), 10);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn racing_inserts_count_one_miss_and_the_losers_as_hits() {
        use std::sync::Barrier;
        // Every thread computes the expansion and races the insert; exactly
        // one may win.  The losers must tally as hits (plus race_losses),
        // never as extra misses, so `misses` equals map growth.
        let threads = 8;
        let cache = LoweringCache::new();
        let site = site_for_level(2);
        let barrier = Barrier::new(threads);
        let per_thread: Vec<CacheCounters> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut counters = CacheCounters::default();
                        barrier.wait();
                        cache
                            .get_or_insert_with(site.key(), &mut counters, || {
                                Ok(vec![Gate::single(
                                    SingleQuditOp::Swap(0, 2),
                                    QuditId::new(0),
                                )])
                            })
                            .unwrap();
                        counters
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut total = CacheCounters::default();
        for counters in per_thread {
            total.merge(counters);
        }
        let metrics = cache.metrics();
        assert_eq!(total.misses, 1, "exactly one thread inserts");
        assert_eq!(
            total.hits,
            threads as u64 - 1,
            "losers and late readers hit"
        );
        assert_eq!(metrics.misses, 1);
        assert_eq!(metrics.hits, threads as u64 - 1);
        assert_eq!(metrics.entries, 1);
        assert!(metrics.race_losses <= metrics.hits);
        assert_eq!(
            metrics.misses - metrics.evictions,
            metrics.entries as u64,
            "misses equal insertions equal map growth"
        );
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = LoweringCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let mut counters = CacheCounters::default();
        let sites: Vec<CanonicalSite> = (0..3).map(site_for_level).collect();
        let expansion = |level: u32| {
            vec![Gate::single(
                SingleQuditOp::Swap(0, level.min(2)),
                QuditId::new(0),
            )]
        };
        for (level, site) in sites.iter().enumerate().take(2) {
            cache
                .get_or_insert_with(site.key(), &mut counters, || Ok(expansion(level as u32)))
                .unwrap();
        }
        // Touch site 0 so site 1 becomes the LRU entry, then insert site 2.
        cache
            .get_or_insert_with(sites[0].key(), &mut counters, || unreachable!())
            .unwrap();
        cache
            .get_or_insert_with(sites[2].key(), &mut counters, || Ok(expansion(2)))
            .unwrap();
        let metrics = cache.metrics();
        assert_eq!(metrics.entries, 2);
        assert_eq!(metrics.evictions, 1);
        assert_eq!(metrics.misses - metrics.evictions, metrics.entries as u64);
        // Site 0 survived (recently used), site 1 was evicted.
        let mut check = CacheCounters::default();
        cache
            .get_or_insert_with(sites[0].key(), &mut check, || unreachable!())
            .unwrap();
        assert_eq!(check, CacheCounters { hits: 1, misses: 0 });
        cache
            .get_or_insert_with(sites[1].key(), &mut check, || Ok(expansion(1)))
            .unwrap();
        assert_eq!(check.misses, 1, "the LRU entry was evicted");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let cache = LoweringCache::with_capacity(0);
        assert_eq!(cache.capacity(), Some(1));
        let mut counters = CacheCounters::default();
        for level in 0..3 {
            cache
                .get_or_insert_with(
                    site_for_level(level).key(),
                    &mut counters,
                    || Ok(Vec::new()),
                )
                .unwrap();
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.metrics().evictions, 2);
    }

    #[test]
    fn snapshot_round_trips_entries_and_future_hits() {
        let cache = LoweringCache::new();
        let mut counters = CacheCounters::default();
        let sites: Vec<CanonicalSite> = (0..3).map(site_for_level).collect();
        for (level, site) in sites.iter().enumerate() {
            let expansion = vec![
                Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0)),
                Gate::controlled(
                    SingleQuditOp::Add(level as u32 % 3),
                    QuditId::new(1),
                    vec![Control::odd(QuditId::new(0))],
                ),
            ];
            cache
                .get_or_insert_with(site.key(), &mut counters, || Ok(expansion.clone()))
                .unwrap();
        }
        let snapshot = cache.snapshot();
        assert!(snapshot.starts_with(SNAPSHOT_HEADER));
        let restored = LoweringCache::new();
        assert_eq!(restored.restore_snapshot(&snapshot).unwrap(), 3);
        assert_eq!(restored.len(), 3);
        // Every key now hits with a bit-identical expansion.
        for site in &sites {
            let mut check = CacheCounters::default();
            let from_restored = restored
                .get_or_insert_with(site.key(), &mut check, || unreachable!())
                .unwrap();
            let from_original = cache
                .get_or_insert_with(site.key(), &mut check, || unreachable!())
                .unwrap();
            assert_eq!(from_restored, from_original);
        }
        // Snapshots are deterministic and idempotent to re-restore.
        assert_eq!(restored.snapshot(), restored.snapshot());
        assert_eq!(restored.restore_snapshot(&snapshot).unwrap(), 0);
        // Restores count as neither hits nor misses.
        assert_eq!(restored.metrics().misses, 0);
    }

    #[test]
    fn snapshot_covers_every_op_kind() {
        // One entry per CachedOpKind variant, exercised through real gates.
        let cache = LoweringCache::new();
        let mut counters = CacheCounters::default();
        let perm = crate::ops::Permutation::from_map(vec![1, 2, 0]).unwrap();
        let gates = vec![
            Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(0)),
            Gate::single(SingleQuditOp::Add(2), QuditId::new(0)),
            Gate::single(SingleQuditOp::Perm(perm), QuditId::new(0)),
            Gate::add_from(QuditId::new(0), false, QuditId::new(1), Vec::new()),
            Gate::add_from(QuditId::new(0), true, QuditId::new(1), Vec::new()),
        ];
        for gate in &gates {
            let site = CanonicalSite::of(
                LoweringStage::Elementary,
                gate,
                dim(3),
                WidthClass::Wide,
                &[],
            )
            .unwrap();
            cache
                .get_or_insert_with(site.key(), &mut counters, || Ok(vec![gate.clone()]))
                .unwrap();
        }
        let snapshot = cache.snapshot();
        let restored = LoweringCache::new();
        assert_eq!(
            restored.restore_snapshot(&snapshot).unwrap(),
            gates.len(),
            "every op kind round trips"
        );
        assert_eq!(restored.snapshot(), snapshot);
    }

    #[test]
    fn restoring_into_a_bounded_cache_honours_the_bound() {
        let cache = LoweringCache::new();
        let mut counters = CacheCounters::default();
        for level in 0..3 {
            cache
                .get_or_insert_with(
                    site_for_level(level).key(),
                    &mut counters,
                    || Ok(Vec::new()),
                )
                .unwrap();
        }
        let bounded = LoweringCache::with_capacity(2);
        bounded.restore_snapshot(&cache.snapshot()).unwrap();
        assert_eq!(bounded.len(), 2);
        assert_eq!(bounded.metrics().evictions, 1);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_with_typed_errors() {
        let cases = [
            ("", "missing"),
            ("qudit-lowering-cache v999\nentries 0\n", "header"),
            ("qudit-lowering-cache v1\nentries zero\n", "entries"),
            (
                "qudit-lowering-cache v1\nentries 1\n",
                "snapshot declares 1 entries",
            ),
            (
                "qudit-lowering-cache v1\nentries 1\nentry\nstage nowhere\n",
                "unknown stage",
            ),
            (
                concat!(
                    "qudit-lowering-cache v1\nentries 1\nentry\n",
                    "stage ggates\ndimension 1\nwidth narrow\nop add 1\ncontrols \nprogram 0\n",
                ),
                "invalid dimension",
            ),
            (
                concat!(
                    "qudit-lowering-cache v1\nentries 1\nentry\n",
                    "stage ggates\ndimension 3\nwidth narrow\nop wiggle\ncontrols \nprogram 0\n",
                ),
                "unparsable op",
            ),
            (
                concat!(
                    "qudit-lowering-cache v1\nentries 1\nentry\n",
                    "stage ggates\ndimension 3\nwidth narrow\nop add 1\ncontrols \nprogram 5\n",
                ),
                "truncated",
            ),
            (
                concat!(
                    "qudit-lowering-cache v1\nentries 1\nentry\n",
                    "stage ggates\ndimension 3\nwidth narrow\nop add 1\ncontrols \n",
                    "program 2\nOPENQASM 3.0;\nboop q[0];\n",
                ),
                "does not parse",
            ),
        ];
        for (text, expected) in cases {
            let cache = LoweringCache::new();
            let error = cache.restore_snapshot(text).unwrap_err();
            let message = error.to_string();
            assert!(
                message.contains(expected),
                "snapshot {text:?}: expected {expected:?} in {message:?}"
            );
            assert!(cache.is_empty(), "failed restore must not mutate the cache");
        }
    }

    #[test]
    fn contention_counter_moves_under_pressure() {
        use std::sync::Barrier;
        // Hammer one bounded cache from many threads; we cannot force a
        // specific interleaving, but the metrics must stay consistent.
        let cache = LoweringCache::with_capacity(4);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let cache = &cache;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut counters = CacheCounters::default();
                    barrier.wait();
                    for round in 0..64u32 {
                        let level = (t + round) % 3;
                        cache
                            .get_or_insert_with(site_for_level(level).key(), &mut counters, || {
                                Ok(Vec::new())
                            })
                            .unwrap();
                    }
                });
            }
        });
        let metrics = cache.metrics();
        assert_eq!(metrics.hits + metrics.misses, 8 * 64);
        assert_eq!(metrics.misses - metrics.evictions, metrics.entries as u64);
        assert!(metrics.entries <= 4);
    }
}
