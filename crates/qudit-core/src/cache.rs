//! A thread-safe lowering cache keyed by `(gate kind, dimension,
//! width-class)`.
//!
//! The synthesis constructions emit the same conjugated gadgets thousands of
//! times per circuit — every two-controlled swap of the same dimension
//! expands to the same Fig. 2 / Fig. 5 gadget up to a renaming of the wires.
//! [`LoweringCache`] exploits that: a lowering site is *canonicalised* (its
//! qudits renamed to `0, 1, 2, …` in role order), looked up by the canonical
//! description, and the cached expansion is renamed back to the actual
//! wires.  The cache is shared across threads behind an [`RwLock`], so the
//! parallel batch and per-gate lowering paths all feed the same table, and
//! hit/miss counts are kept both globally (atomics, for the cache lifetime)
//! and per pass run (via [`CacheCounters`], surfaced in pass statistics).
//!
//! # Example
//!
//! ```
//! use qudit_core::cache::{CacheCounters, LoweringCache};
//! use qudit_core::lowering::lower_circuit_cached;
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut circuit = Circuit::new(d, 3);
//! // The same gate kind on two different wire pairs: one miss, one hit.
//! for target in [1, 2] {
//!     circuit.push(Gate::controlled(
//!         SingleQuditOp::Add(1),
//!         QuditId::new(target),
//!         vec![Control::level(QuditId::new(0), 2)],
//!     ))?;
//! }
//! let cache = LoweringCache::new();
//! let mut counters = CacheCounters::default();
//! let lowered = lower_circuit_cached(&circuit, &cache, &mut counters)?;
//! assert_eq!(counters.hits, 1);
//! assert_eq!(counters.misses, 1);
//! assert_eq!(lowered, qudit_core::lowering::lower_circuit(&circuit)?);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::control::{Control, ControlPredicate};
use crate::dimension::Dimension;
use crate::error::Result;
use crate::gate::{Gate, GateOp};
use crate::ops::SingleQuditOp;
use crate::qudit::QuditId;

/// Which lowering stage produced a cached expansion.
///
/// The macro → elementary stage (`qudit-synthesis`) and the elementary →
/// G-gate stage (`qudit_core::lowering`) share one cache; tagging the stage
/// keeps their entries in disjoint key spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoweringStage {
    /// Macro gates → elementary gates (Fig. 2 / Fig. 5 gadget expansion).
    Elementary,
    /// Elementary gates → the G-gate set `{Xij} ∪ {|0⟩-X01}`.
    GGates,
}

/// Width class of a lowering site: whether the register offers a spare wire
/// usable as a borrowed ancilla (the even-`d` gadgets need one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WidthClass {
    /// Fewer than four wires: no spare qudit beyond two controls + target.
    Narrow,
    /// Four or more wires: a borrowed qudit is always available.
    Wide,
}

impl WidthClass {
    /// Classifies a register width.
    pub fn of(width: usize) -> Self {
        if width >= 4 {
            WidthClass::Wide
        } else {
            WidthClass::Narrow
        }
    }
}

/// The gate-kind component of a [`CacheKey`] — the target operation with
/// qudit identities abstracted away.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CachedOpKind {
    /// `Xij`.
    Swap(u32, u32),
    /// `X+y`.
    Add(u32),
    /// `X_eo^e`.
    ParityFlipEven,
    /// `X_eo^o`.
    ParityFlipOdd,
    /// An arbitrary level permutation (by its level map).
    Perm(Vec<u32>),
    /// The value-controlled shift `X±⋆` (source position is implicit in the
    /// canonical wire order).
    AddFrom {
        /// `true` for `X−⋆`, `false` for `X+⋆`.
        negate: bool,
    },
}

impl CachedOpKind {
    /// The key component of a gate operation, or `None` when the operation
    /// is uncacheable (general unitaries have no hashable description).
    fn of(op: &GateOp) -> Option<Self> {
        match op {
            GateOp::Single(SingleQuditOp::Swap(i, j)) => Some(CachedOpKind::Swap(*i, *j)),
            GateOp::Single(SingleQuditOp::Add(y)) => Some(CachedOpKind::Add(*y)),
            GateOp::Single(SingleQuditOp::ParityFlipEven) => Some(CachedOpKind::ParityFlipEven),
            GateOp::Single(SingleQuditOp::ParityFlipOdd) => Some(CachedOpKind::ParityFlipOdd),
            GateOp::Single(SingleQuditOp::Perm(p)) => Some(CachedOpKind::Perm(p.as_map().to_vec())),
            GateOp::Single(SingleQuditOp::Unitary(_)) => None,
            GateOp::AddFrom { negate, .. } => Some(CachedOpKind::AddFrom { negate: *negate }),
        }
    }
}

/// Cache key: `(gate kind, dimension, width-class)`, where the gate kind is
/// the canonicalised operation plus the control predicates in role order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    stage: LoweringStage,
    dimension: u32,
    width_class: WidthClass,
    op: CachedOpKind,
    controls: Vec<ControlPredicate>,
}

/// A lowering site in canonical coordinates: the gate with its qudits
/// renamed to `0, 1, 2, …` in role order (controls, `AddFrom` source,
/// target, then any extra wires such as a borrowed ancilla), plus the table
/// renaming the canonical wires back to the actual ones.
#[derive(Debug, Clone)]
pub struct CanonicalSite {
    key: CacheKey,
    gate: Gate,
    wires: Vec<QuditId>,
}

impl CanonicalSite {
    /// Canonicalises a lowering site, or returns `None` when the gate kind
    /// is uncacheable (general unitaries).
    ///
    /// `extra` lists wires the lowering may touch beyond the gate's own
    /// (for example the borrowed qudit of the even-`d` gadgets), in the order
    /// they should receive canonical indices after the gate's qudits.
    pub fn of(
        stage: LoweringStage,
        gate: &Gate,
        dimension: Dimension,
        width_class: WidthClass,
        extra: &[QuditId],
    ) -> Option<Self> {
        let op = CachedOpKind::of(gate.op())?;
        let mut wires = gate.qudits();
        wires.extend_from_slice(extra);
        let canonical_of = |q: QuditId| {
            QuditId::new(
                wires
                    .iter()
                    .position(|w| *w == q)
                    .expect("gate qudits are in the wire table"),
            )
        };
        let canonical_op = match gate.op() {
            GateOp::Single(op) => GateOp::Single(op.clone()),
            GateOp::AddFrom { source, negate } => GateOp::AddFrom {
                source: canonical_of(*source),
                negate: *negate,
            },
        };
        let canonical_controls: Vec<Control> = gate
            .controls()
            .iter()
            .map(|c| Control::new(canonical_of(c.qudit), c.predicate))
            .collect();
        let canonical_gate = Gate::new(
            canonical_op,
            canonical_of(gate.target()),
            canonical_controls,
        );
        Some(CanonicalSite {
            key: CacheKey {
                stage,
                dimension: dimension.get(),
                width_class,
                op,
                controls: gate.controls().iter().map(|c| c.predicate).collect(),
            },
            gate: canonical_gate,
            wires,
        })
    }

    /// The cache key of this site.
    pub fn key(&self) -> &CacheKey {
        &self.key
    }

    /// The gate in canonical coordinates (qudits `0, 1, 2, …`).
    pub fn gate(&self) -> &Gate {
        &self.gate
    }

    /// The canonical register width (gate qudits plus extra wires).
    pub fn width(&self) -> usize {
        self.wires.len()
    }

    /// Renames a cached canonical expansion back to the actual wires.
    pub fn restore(&self, canonical_gates: &[Gate]) -> Vec<Gate> {
        canonical_gates
            .iter()
            .map(|g| g.map_qudits(|q| self.wires[q.index()]))
            .collect()
    }
}

/// Per-run cache hit/miss tally, recorded in pass statistics.
///
/// Unlike the cache's own counters (which are global, atomic and live as
/// long as the cache), a `CacheCounters` value tallies one pass execution,
/// so merged batch statistics stay deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then insert) the expansion.
    pub misses: u64,
}

impl CacheCounters {
    /// Total number of cache lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Accumulates another tally into this one.
    pub fn merge(&mut self, other: CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A thread-safe map from canonical lowering sites to their expansions.
///
/// Shared across threads behind an [`RwLock`]: lookups take the read lock,
/// and only a miss's insertion takes the write lock, so the hot path (hits)
/// never serialises readers.
#[derive(Debug, Default)]
pub struct LoweringCache {
    map: RwLock<HashMap<CacheKey, Arc<Vec<Gate>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LoweringCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        LoweringCache::default()
    }

    /// Creates an empty cache behind an [`Arc`], ready to share across
    /// threads and passes.
    pub fn shared() -> Arc<Self> {
        Arc::new(LoweringCache::new())
    }

    /// Number of cached expansions.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// Returns `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Global hit/miss counters accumulated over the cache's lifetime.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Looks up a canonical site, computing and inserting the expansion with
    /// `compute` on a miss.  Returns the expansion (in canonical
    /// coordinates) and whether the lookup was a hit, tallying into both the
    /// global counters and `counters`.
    ///
    /// # Errors
    ///
    /// Propagates `compute` errors; failed computations are not cached.
    pub fn get_or_insert_with(
        &self,
        key: &CacheKey,
        counters: &mut CacheCounters,
        compute: impl FnOnce() -> Result<Vec<Gate>>,
    ) -> Result<Arc<Vec<Gate>>> {
        if let Some(found) = self.map.read().expect("cache lock").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            counters.hits += 1;
            return Ok(found.clone());
        }
        // Compute outside any lock: expansions are pure and two racing
        // threads computing the same entry produce identical values.
        let computed = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        counters.misses += 1;
        let mut map = self.map.write().expect("cache lock");
        // Keep the first insertion if another thread won the race, so every
        // later hit shares one allocation.
        Ok(map.entry(key.clone()).or_insert(computed).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn controlled_add(control: usize, target: usize, level: u32) -> Gate {
        Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(target),
            vec![Control::level(QuditId::new(control), level)],
        )
    }

    #[test]
    fn same_kind_different_wires_share_a_key() {
        let a = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(0, 1, 2),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let b = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(4, 2, 2),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        assert_eq!(a.key(), b.key());
        assert_eq!(a.gate(), b.gate());
    }

    #[test]
    fn key_distinguishes_dimension_stage_width_class_and_levels() {
        let gate = controlled_add(0, 1, 2);
        let base = CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let other_dim = CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(4),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let other_stage = CanonicalSite::of(
            LoweringStage::Elementary,
            &gate,
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let other_width =
            CanonicalSite::of(LoweringStage::GGates, &gate, dim(3), WidthClass::Wide, &[]).unwrap();
        let other_level = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(0, 1, 1),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        for other in [other_dim, other_stage, other_width, other_level] {
            assert_ne!(base.key(), other.key());
        }
    }

    #[test]
    fn unitary_ops_are_uncacheable() {
        use crate::math::SquareMatrix;
        let gate = Gate::single(
            SingleQuditOp::Unitary(SquareMatrix::identity(3)),
            QuditId::new(0),
        );
        assert!(CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(3),
            WidthClass::Narrow,
            &[]
        )
        .is_none());
    }

    #[test]
    fn restore_renames_back_to_actual_wires() {
        let gate = controlled_add(5, 3, 1);
        let site = CanonicalSite::of(
            LoweringStage::GGates,
            &gate,
            dim(3),
            WidthClass::Wide,
            &[QuditId::new(7)],
        )
        .unwrap();
        assert_eq!(site.width(), 3);
        let canonical = vec![
            Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0)),
            Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(1)),
            Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(2)),
        ];
        let restored = site.restore(&canonical);
        assert_eq!(restored[0].target(), QuditId::new(5));
        assert_eq!(restored[1].target(), QuditId::new(3));
        assert_eq!(restored[2].target(), QuditId::new(7));
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = LoweringCache::new();
        let site = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(0, 1, 2),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let mut counters = CacheCounters::default();
        let expansion = vec![Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(0))];
        let first = cache
            .get_or_insert_with(site.key(), &mut counters, || Ok(expansion.clone()))
            .unwrap();
        let second = cache
            .get_or_insert_with(site.key(), &mut counters, || {
                panic!("second lookup must be a hit")
            })
            .unwrap();
        assert_eq!(*first, *second);
        assert_eq!(counters, CacheCounters { hits: 1, misses: 1 });
        assert_eq!(cache.counters(), counters);
        assert_eq!(cache.len(), 1);
        assert!((counters.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let cache = LoweringCache::new();
        let site = CanonicalSite::of(
            LoweringStage::GGates,
            &controlled_add(0, 1, 2),
            dim(3),
            WidthClass::Narrow,
            &[],
        )
        .unwrap();
        let mut counters = CacheCounters::default();
        let failed: Result<Arc<Vec<Gate>>> =
            cache.get_or_insert_with(site.key(), &mut counters, || {
                Err(crate::error::QuditError::NotClassical)
            });
        assert!(failed.is_err());
        assert!(cache.is_empty());
        // A later successful computation still populates the entry.
        cache
            .get_or_insert_with(site.key(), &mut counters, || Ok(Vec::new()))
            .unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn counters_merge() {
        let mut a = CacheCounters { hits: 2, misses: 1 };
        a.merge(CacheCounters { hits: 3, misses: 4 });
        assert_eq!(a, CacheCounters { hits: 5, misses: 5 });
        assert_eq!(a.total(), 10);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
