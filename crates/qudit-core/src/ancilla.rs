//! Ancilla bookkeeping.
//!
//! The paper distinguishes four kinds of ancilla qudits (Section II):
//! burnable, clean, garbage and borrowed.  Synthesis routines report how many
//! of each kind they consumed so that the resource comparisons of the
//! evaluation can be regenerated.

use std::fmt;
use std::ops::Add;

/// The contract an ancilla qudit must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AncillaKind {
    /// Starts in `|0⟩`, may end in any state.
    Burnable,
    /// Starts in `|0⟩` and must be returned to `|0⟩`.
    Clean,
    /// May start in any state and may end in any state.
    Garbage,
    /// May start in any state and must be returned to that state.
    Borrowed,
}

impl fmt::Display for AncillaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AncillaKind::Burnable => "burnable",
            AncillaKind::Clean => "clean",
            AncillaKind::Garbage => "garbage",
            AncillaKind::Borrowed => "borrowed",
        };
        write!(f, "{name}")
    }
}

/// Counts of ancilla qudits used by a synthesis, by kind.
///
/// # Example
///
/// ```
/// # use qudit_core::AncillaUsage;
/// let usage = AncillaUsage { borrowed: 1, ..AncillaUsage::default() };
/// assert_eq!(usage.total(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AncillaUsage {
    /// Number of burnable ancillas.
    pub burnable: usize,
    /// Number of clean ancillas.
    pub clean: usize,
    /// Number of garbage ancillas.
    pub garbage: usize,
    /// Number of borrowed ancillas.
    pub borrowed: usize,
}

impl AncillaUsage {
    /// No ancillas at all.
    pub fn none() -> Self {
        AncillaUsage::default()
    }

    /// A usage consisting of `count` ancillas of one kind.
    pub fn of_kind(kind: AncillaKind, count: usize) -> Self {
        let mut usage = AncillaUsage::default();
        match kind {
            AncillaKind::Burnable => usage.burnable = count,
            AncillaKind::Clean => usage.clean = count,
            AncillaKind::Garbage => usage.garbage = count,
            AncillaKind::Borrowed => usage.borrowed = count,
        }
        usage
    }

    /// Total number of ancilla qudits.
    pub fn total(&self) -> usize {
        self.burnable + self.clean + self.garbage + self.borrowed
    }

    /// Returns `true` when no ancilla is used.
    pub fn is_ancilla_free(&self) -> bool {
        self.total() == 0
    }
}

impl Add for AncillaUsage {
    type Output = AncillaUsage;

    fn add(self, rhs: AncillaUsage) -> AncillaUsage {
        AncillaUsage {
            burnable: self.burnable + rhs.burnable,
            clean: self.clean + rhs.clean,
            garbage: self.garbage + rhs.garbage,
            borrowed: self.borrowed + rhs.borrowed,
        }
    }
}

impl fmt::Display for AncillaUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clean={}, borrowed={}, garbage={}, burnable={}",
            self.clean, self.borrowed, self.garbage, self.burnable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_flags() {
        let usage = AncillaUsage {
            burnable: 1,
            clean: 2,
            garbage: 3,
            borrowed: 4,
        };
        assert_eq!(usage.total(), 10);
        assert!(!usage.is_ancilla_free());
        assert!(AncillaUsage::none().is_ancilla_free());
    }

    #[test]
    fn of_kind_sets_only_one_field() {
        let usage = AncillaUsage::of_kind(AncillaKind::Clean, 3);
        assert_eq!(usage.clean, 3);
        assert_eq!(usage.total(), 3);
        let usage = AncillaUsage::of_kind(AncillaKind::Borrowed, 1);
        assert_eq!(usage.borrowed, 1);
    }

    #[test]
    fn addition_is_componentwise() {
        let a = AncillaUsage::of_kind(AncillaKind::Clean, 1);
        let b = AncillaUsage::of_kind(AncillaKind::Borrowed, 2);
        let sum = a + b;
        assert_eq!(sum.clean, 1);
        assert_eq!(sum.borrowed, 2);
        assert_eq!(sum.total(), 3);
    }

    #[test]
    fn display_mentions_every_kind() {
        let text = AncillaUsage::default().to_string();
        for word in ["clean", "borrowed", "garbage", "burnable"] {
            assert!(text.contains(word));
        }
        assert_eq!(AncillaKind::Borrowed.to_string(), "borrowed");
    }
}
