//! Minimal numerical types: complex numbers and small dense matrices.

mod complex;
mod matrix;

pub use complex::Complex;
pub use matrix::{SquareMatrix, MATRIX_TOLERANCE};
