//! Small dense complex matrices.
//!
//! These matrices are used for single-qudit unitaries (`d × d`, `d ≤ 16`) and
//! for whole-register unitaries of tiny systems in tests (at most a few
//! hundred rows), so a straightforward row-major `Vec<Complex>` is all that is
//! needed.

use std::fmt;
use std::ops::{Index, IndexMut, Mul};

use crate::error::{QuditError, Result};
use crate::math::complex::Complex;

/// Numerical tolerance used by unitarity and equality checks.
pub const MATRIX_TOLERANCE: f64 = 1e-9;

/// A square complex matrix stored in row-major order.
///
/// # Example
///
/// ```
/// # use qudit_core::math::{Complex, SquareMatrix};
/// let id = SquareMatrix::identity(3);
/// assert!(id.is_unitary(1e-9));
/// assert_eq!(id[(1, 1)], Complex::ONE);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    size: usize,
    data: Vec<Complex>,
}

impl SquareMatrix {
    /// Creates a zero matrix of the given size.
    pub fn zeros(size: usize) -> Self {
        SquareMatrix {
            size,
            data: vec![Complex::ZERO; size * size],
        }
    }

    /// Creates the identity matrix of the given size.
    pub fn identity(size: usize) -> Self {
        let mut m = SquareMatrix::zeros(size);
        for i in 0..size {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::MatrixShapeMismatch`] when `data.len() != size²`.
    pub fn from_rows(size: usize, data: Vec<Complex>) -> Result<Self> {
        if data.len() != size * size {
            return Err(QuditError::MatrixShapeMismatch {
                found: data.len(),
                expected: size * size,
            });
        }
        Ok(SquareMatrix { size, data })
    }

    /// Creates the permutation matrix sending basis state `j` to `map[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NotAPermutation`] when `map` is not a bijection.
    pub fn from_permutation(map: &[usize]) -> Result<Self> {
        let size = map.len();
        let mut seen = vec![false; size];
        for &to in map {
            if to >= size || seen[to] {
                return Err(QuditError::NotAPermutation);
            }
            seen[to] = true;
        }
        let mut m = SquareMatrix::zeros(size);
        for (from, &to) in map.iter().enumerate() {
            m[(to, from)] = Complex::ONE;
        }
        Ok(m)
    }

    /// Returns the number of rows (and columns).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Returns a view of the row-major data.
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Returns the conjugate transpose (adjoint) of the matrix.
    pub fn adjoint(&self) -> SquareMatrix {
        let mut out = SquareMatrix::zeros(self.size);
        for r in 0..self.size {
            for c in 0..self.size {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Multiplies the matrix by a column vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.size()`.
    pub fn apply(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.size, "vector length must match matrix size");
        let mut out = vec![Complex::ZERO; self.size];
        for r in 0..self.size {
            let mut acc = Complex::ZERO;
            for c in 0..self.size {
                acc += self[(r, c)] * v[c];
            }
            out[r] = acc;
        }
        out
    }

    /// Checks whether the matrix is unitary within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let product = self * &self.adjoint();
        product.approx_eq(&SquareMatrix::identity(self.size), tol)
    }

    /// Checks approximate elementwise equality.
    pub fn approx_eq(&self, other: &SquareMatrix, tol: f64) -> bool {
        self.size == other.size
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Checks equality up to a global phase factor.
    pub fn approx_eq_up_to_phase(&self, other: &SquareMatrix, tol: f64) -> bool {
        if self.size != other.size {
            return false;
        }
        // Find the entry of largest magnitude in `other` to fix the phase.
        let mut best = 0;
        for (i, z) in other.data.iter().enumerate() {
            if z.norm_sqr() > other.data[best].norm_sqr() {
                best = i;
            }
        }
        if other.data[best].norm() <= tol {
            return self.approx_eq(other, tol);
        }
        if self.data[best].norm() <= tol {
            return false;
        }
        let phase = self.data[best] / other.data[best];
        if (phase.norm() - 1.0).abs() > 1e-6 {
            return false;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .all(|(a, b)| a.approx_eq(*b * phase, tol))
    }

    /// Returns the Frobenius norm of the difference with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn distance(&self, other: &SquareMatrix) -> f64 {
        assert_eq!(self.size, other.size, "matrix sizes must match");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            .sqrt()
    }
}

impl Index<(usize, usize)> for SquareMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &Complex {
        &self.data[row * self.size + col]
    }
}

impl IndexMut<(usize, usize)> for SquareMatrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut Complex {
        &mut self.data[row * self.size + col]
    }
}

impl Mul for &SquareMatrix {
    type Output = SquareMatrix;

    fn mul(self, rhs: &SquareMatrix) -> SquareMatrix {
        assert_eq!(
            self.size, rhs.size,
            "matrix sizes must match for multiplication"
        );
        let n = self.size;
        let mut out = SquareMatrix::zeros(n);
        for r in 0..n {
            for k in 0..n {
                let a = self[(r, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..n {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl fmt::Display for SquareMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.size {
            for c in 0..self.size {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_unitary() {
        assert!(SquareMatrix::identity(4).is_unitary(MATRIX_TOLERANCE));
    }

    #[test]
    fn permutation_matrices_are_unitary() {
        let p = SquareMatrix::from_permutation(&[2, 0, 1]).unwrap();
        assert!(p.is_unitary(MATRIX_TOLERANCE));
        // |0⟩ ↦ |2⟩
        let v = p.apply(&[Complex::ONE, Complex::ZERO, Complex::ZERO]);
        assert!(v[2].approx_eq(Complex::ONE, MATRIX_TOLERANCE));
    }

    #[test]
    fn invalid_permutations_are_rejected() {
        assert!(SquareMatrix::from_permutation(&[0, 0, 1]).is_err());
        assert!(SquareMatrix::from_permutation(&[0, 3, 1]).is_err());
    }

    #[test]
    fn adjoint_of_product_reverses_order() {
        let a = SquareMatrix::from_permutation(&[1, 2, 0]).unwrap();
        let b = SquareMatrix::from_permutation(&[2, 1, 0]).unwrap();
        let ab = &a * &b;
        let expected = &b.adjoint() * &a.adjoint();
        assert!(ab.adjoint().approx_eq(&expected, MATRIX_TOLERANCE));
    }

    #[test]
    fn phase_equality() {
        let a = SquareMatrix::identity(2);
        let mut b = SquareMatrix::identity(2);
        let phase = Complex::from_phase(0.7);
        for r in 0..2 {
            b[(r, r)] = phase;
        }
        assert!(b.approx_eq_up_to_phase(&a, MATRIX_TOLERANCE));
        assert!(!b.approx_eq(&a, MATRIX_TOLERANCE));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let err = SquareMatrix::from_rows(2, vec![Complex::ONE; 3]).unwrap_err();
        assert_eq!(
            err,
            QuditError::MatrixShapeMismatch {
                found: 3,
                expected: 4
            }
        );
    }

    #[test]
    fn distance_is_zero_for_equal_matrices() {
        let a = SquareMatrix::identity(3);
        assert!(a.distance(&a) < MATRIX_TOLERANCE);
    }
}
