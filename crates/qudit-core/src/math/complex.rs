//! Minimal complex number type used for single-qudit unitaries and small
//! state vectors.
//!
//! The workspace deliberately avoids an external linear-algebra dependency:
//! all matrices involved are at most `d × d` with `d ≤ 16`, and state vectors
//! have at most a few thousand entries.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// # use qudit_core::math::Complex;
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `exp(i·theta)`.
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns `true` when both components are within `tol` of `other`.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).norm() <= tol
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Self {
        let n = self.norm_sqr();
        assert!(n > 0.0, "attempted to invert the zero complex number");
        Complex {
            re: self.re / n,
            im: -self.im / n,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, factor: f64) -> Self {
        Complex {
            re: self.re * factor,
            im: self.im * factor,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    // Division via multiplication by the reciprocal is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 3.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a - a).approx_eq(Complex::ZERO, TOL));
        assert!((-a + a).approx_eq(Complex::ZERO, TOL));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert!((z * z.conj()).approx_eq(Complex::from_real(25.0), TOL));
        assert!((z.norm() - 5.0).abs() < TOL);
    }

    #[test]
    fn phase_construction() {
        let z = Complex::from_phase(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::I, TOL));
    }

    #[test]
    fn sum_of_complex_numbers() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(Complex::new(6.0, 4.0), TOL));
    }

    #[test]
    #[should_panic(expected = "zero complex number")]
    fn inverting_zero_panics() {
        let _ = Complex::ZERO.recip();
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1.000000-1.000000i");
    }
}
