//! Qudit dimension handling.

use std::fmt;

use crate::error::{QuditError, Result};

/// The dimension `d` of a qudit (the number of computational basis levels).
///
/// The paper considers `d ≥ 3`; the substrate additionally accepts `d = 2`
/// (qubits) so that degenerate cases can be tested, but the synthesis
/// algorithms themselves require `d ≥ 3`.
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(5)?;
/// assert!(d.is_odd());
/// assert_eq!(d.levels().count(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dimension(u32);

impl Dimension {
    /// Creates a new dimension.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::InvalidDimension`] if `d < 2`.
    pub fn new(d: u32) -> Result<Self> {
        if d < 2 {
            return Err(QuditError::InvalidDimension { dimension: d });
        }
        Ok(Dimension(d))
    }

    /// Returns the numeric dimension value.
    #[inline]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Returns the dimension as a `usize`, convenient for indexing.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if the dimension is odd.
    #[inline]
    pub fn is_odd(self) -> bool {
        self.0 % 2 == 1
    }

    /// Returns `true` if the dimension is even.
    #[inline]
    pub fn is_even(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// Iterates over all levels `0, 1, …, d − 1`.
    pub fn levels(self) -> impl Iterator<Item = u32> {
        0..self.0
    }

    /// Iterates over the odd levels `1, 3, …`.
    pub fn odd_levels(self) -> impl Iterator<Item = u32> {
        (0..self.0).filter(|l| l % 2 == 1)
    }

    /// Iterates over the non-zero even levels `2, 4, …`.
    pub fn even_nonzero_levels(self) -> impl Iterator<Item = u32> {
        (0..self.0).filter(|l| *l != 0 && l % 2 == 0)
    }

    /// Returns `true` if the dimension is a prime number.
    ///
    /// The generalised-Pauli stabilizer formalism (and therefore the
    /// stabilizer simulation backend) is only available for prime `d`, where
    /// `Z_d` is a field and symplectic row reduction is exact.
    ///
    /// # Example
    ///
    /// ```
    /// # use qudit_core::Dimension;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// assert!(Dimension::new(5)?.is_prime());
    /// assert!(!Dimension::new(9)?.is_prime());
    /// # Ok(())
    /// # }
    /// ```
    pub fn is_prime(self) -> bool {
        let d = self.0;
        if d < 2 {
            return false;
        }
        let mut f = 2u32;
        while f.saturating_mul(f) <= d {
            if d.is_multiple_of(f) {
                return false;
            }
            f += 1;
        }
        true
    }

    /// Checks that `level < d`.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::LevelOutOfRange`] when the level is too large.
    pub fn check_level(self, level: u32) -> Result<()> {
        if level < self.0 {
            Ok(())
        } else {
            Err(QuditError::LevelOutOfRange {
                level,
                dimension: self.0,
            })
        }
    }

    /// Number of computational basis states of a register of `width` qudits,
    /// i.e. `d^width`.
    ///
    /// # Panics
    ///
    /// Panics if the result does not fit in a `usize`.
    pub fn register_size(self, width: usize) -> usize {
        let mut size: usize = 1;
        for _ in 0..width {
            size = size
                .checked_mul(self.0 as usize)
                .expect("register size overflows usize");
        }
        size
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u32> for Dimension {
    type Error = QuditError;

    fn try_from(value: u32) -> Result<Self> {
        Dimension::new(value)
    }
}

impl From<Dimension> for u32 {
    fn from(value: Dimension) -> Self {
        value.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_trivial_dimensions() {
        assert!(Dimension::new(0).is_err());
        assert!(Dimension::new(1).is_err());
        assert!(Dimension::new(2).is_ok());
        assert!(Dimension::new(3).is_ok());
    }

    #[test]
    fn parity_helpers() {
        assert!(Dimension::new(3).unwrap().is_odd());
        assert!(Dimension::new(4).unwrap().is_even());
        assert!(!Dimension::new(4).unwrap().is_odd());
    }

    #[test]
    fn level_iterators() {
        let d = Dimension::new(6).unwrap();
        assert_eq!(d.levels().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(d.odd_levels().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(d.even_nonzero_levels().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn level_checks() {
        let d = Dimension::new(3).unwrap();
        assert!(d.check_level(0).is_ok());
        assert!(d.check_level(2).is_ok());
        assert_eq!(
            d.check_level(3),
            Err(QuditError::LevelOutOfRange {
                level: 3,
                dimension: 3
            })
        );
    }

    #[test]
    fn register_size() {
        let d = Dimension::new(3).unwrap();
        assert_eq!(d.register_size(0), 1);
        assert_eq!(d.register_size(4), 81);
    }

    #[test]
    fn primality() {
        let primes = [2u32, 3, 5, 7, 11, 13];
        let composites = [4u32, 6, 8, 9, 10, 12, 15, 16, 25];
        for d in primes {
            assert!(Dimension::new(d).unwrap().is_prime(), "{d} is prime");
        }
        for d in composites {
            assert!(!Dimension::new(d).unwrap().is_prime(), "{d} is composite");
        }
    }

    #[test]
    fn conversions() {
        let d = Dimension::try_from(7).unwrap();
        assert_eq!(u32::from(d), 7);
        assert_eq!(d.to_string(), "7");
    }
}
