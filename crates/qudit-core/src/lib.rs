//! Core circuit substrate for the reproduction of *Optimal Synthesis of
//! Multi-Controlled Qudit Gates* (DAC 2023).
//!
//! This crate provides the data model every other crate in the workspace
//! builds on:
//!
//! * [`Dimension`], [`QuditId`] — qudit dimensions and wire identifiers;
//! * [`SingleQuditOp`], [`Permutation`] — the single-qudit level operations of
//!   the paper (`Xij`, `X+y`, the parity swaps `X_eo^e` / `X_eo^o`) plus
//!   general unitaries;
//! * [`Control`], [`ControlPredicate`] — `|ℓ⟩`, `|o⟩` and `|e⟩` controls;
//! * [`Gate`], [`GateOp`], [`Circuit`] — gates (including the value-controlled
//!   shift `|⋆⟩-X±⋆` of Fig. 6) and circuits with validation, inversion and
//!   classical basis-state evaluation;
//! * [`lowering`] — lowering of singly-controlled classical gates to the
//!   elementary G-gate set `{Xij} ∪ {|0⟩-X01}`;
//! * [`commute`] — the structural commutation oracle, the gate dependency
//!   DAG and the commutation-aware depth scheduler behind the
//!   [`pipeline::ScheduleDepth`] pass;
//! * [`pipeline`] — the [`pipeline::Pass`] trait and
//!   [`pipeline::PassManager`] composing lowering/optimisation stages with
//!   per-pass statistics, plus parallel batch compilation
//!   ([`pipeline::PassManager::run_batch`]) with merged statistics;
//! * [`pool`] — a hand-rolled scoped-thread work-stealing pool backing the
//!   parallel lowering and batch paths (the environment is offline, so no
//!   `rayon`);
//! * [`cache`] — the thread-safe lowering cache keyed by
//!   `(gate kind, dimension, width-class)` with hit/miss accounting;
//! * [`qasm`] — the OpenQASM-3-flavoured text IR: lexer, parser, semantic
//!   lowering and an exact-inverse pretty-printer with spanned
//!   [`qasm::ParseError`] diagnostics;
//! * [`topology`] — device coupling graphs ([`topology::CouplingGraph`]:
//!   linear, ring, grid, heavy-hex and custom) with an all-pairs BFS
//!   distance matrix;
//! * [`route`] — connectivity routing: greedy placement, the lookahead
//!   SWAP-ladder router, cost models ([`route::UniformCost`],
//!   [`route::NoiseAwareCost`]) and the `"route"` pipeline stage;
//! * [`math`] — minimal complex numbers and dense matrices;
//! * [`AncillaKind`], [`AncillaUsage`] — ancilla bookkeeping.
//!
//! # Example
//!
//! ```
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut circuit = Circuit::new(d, 2);
//! // |0⟩-X+1: increment the target when the control is |0⟩.
//! circuit.push(Gate::controlled(
//!     SingleQuditOp::Add(1),
//!     QuditId::new(1),
//!     vec![Control::zero(QuditId::new(0))],
//! ))?;
//! assert_eq!(circuit.apply_to_basis(&[0, 2])?, vec![0, 0]);
//!
//! // Lower to the elementary G-gate set.
//! let lowered = qudit_core::lowering::lower_circuit(&circuit)?;
//! assert!(lowered.gates().iter().all(|g| g.is_g_gate()));
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the persistent-worker crew in `pool` needs
// one narrowly-scoped `#[allow(unsafe_code)]` module (long-lived threads
// cannot borrow a caller's stack through safe channels); everything else in
// the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod ancilla;
pub mod cache;
mod circuit;
pub mod commute;
mod control;
pub mod depth;
pub mod diagram;
mod dimension;
mod error;
pub mod fusion;
mod gate;
pub mod lowering;
pub mod math;
mod ops;
pub mod optimize;
pub mod pipeline;
pub mod pool;
pub mod qasm;
mod qudit;
pub mod route;
pub mod topology;

pub use ancilla::{AncillaKind, AncillaUsage};
pub use circuit::Circuit;
pub use control::{Control, ControlPredicate};
pub use dimension::Dimension;
pub use error::{QuditError, Result};
pub use gate::{Gate, GateOp};
pub use ops::{Permutation, SingleQuditOp};
pub use qudit::{qudit_range, QuditId};
