//! Control predicates for controlled qudit gates.

use std::fmt;

use crate::dimension::Dimension;
use crate::error::Result;
use crate::qudit::QuditId;

/// A predicate on the state of a control qudit.
///
/// The paper uses four kinds of controls:
///
/// * `|ℓ⟩`-controls which fire when the control qudit is in level `ℓ`
///   ([`ControlPredicate::Level`]);
/// * `|o⟩`-controls firing on any odd level ([`ControlPredicate::Odd`]);
/// * `|e⟩`-controls firing on any non-zero even level
///   ([`ControlPredicate::EvenNonzero`]);
/// * controls firing on any non-zero level ([`ControlPredicate::NonZero`]),
///   used by the clean-ancilla baseline.
///
/// # Example
///
/// ```
/// # use qudit_core::{ControlPredicate, Dimension};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(5)?;
/// assert!(ControlPredicate::Odd.matches(3));
/// assert_eq!(ControlPredicate::EvenNonzero.matching_levels(d), vec![2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlPredicate {
    /// Fires when the control qudit is in the given level.
    Level(u32),
    /// Fires when the control qudit is in an odd level.
    Odd,
    /// Fires when the control qudit is in a non-zero even level.
    EvenNonzero,
    /// Fires when the control qudit is in any non-zero level.
    NonZero,
}

impl ControlPredicate {
    /// Returns `true` if the predicate fires for a control qudit in `level`.
    #[inline]
    pub fn matches(self, level: u32) -> bool {
        match self {
            ControlPredicate::Level(l) => level == l,
            ControlPredicate::Odd => level % 2 == 1,
            ControlPredicate::EvenNonzero => level != 0 && level.is_multiple_of(2),
            ControlPredicate::NonZero => level != 0,
        }
    }

    /// Lists the levels on which the predicate fires for dimension `d`.
    pub fn matching_levels(self, dimension: Dimension) -> Vec<u32> {
        dimension.levels().filter(|l| self.matches(*l)).collect()
    }

    /// Validates that the predicate makes sense for dimension `d`.
    ///
    /// # Errors
    ///
    /// Returns an error when a [`ControlPredicate::Level`] refers to a level
    /// that does not exist in dimension `d`.
    pub fn validate(self, dimension: Dimension) -> Result<()> {
        match self {
            ControlPredicate::Level(l) => dimension.check_level(l),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for ControlPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlPredicate::Level(l) => write!(f, "|{l}⟩"),
            ControlPredicate::Odd => write!(f, "|o⟩"),
            ControlPredicate::EvenNonzero => write!(f, "|e⟩"),
            ControlPredicate::NonZero => write!(f, "|≠0⟩"),
        }
    }
}

/// A control attached to a gate: a qudit together with the predicate that
/// must hold for the gate to fire.
///
/// # Example
///
/// ```
/// # use qudit_core::{Control, ControlPredicate, QuditId};
/// let c = Control::zero(QuditId::new(0));
/// assert_eq!(c.predicate, ControlPredicate::Level(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Control {
    /// The control qudit.
    pub qudit: QuditId,
    /// The predicate the control qudit must satisfy.
    pub predicate: ControlPredicate,
}

impl Control {
    /// Creates a control with an arbitrary predicate.
    pub fn new(qudit: QuditId, predicate: ControlPredicate) -> Self {
        Control { qudit, predicate }
    }

    /// Creates a `|0⟩`-control, the default control kind of the paper.
    pub fn zero(qudit: QuditId) -> Self {
        Control {
            qudit,
            predicate: ControlPredicate::Level(0),
        }
    }

    /// Creates a `|ℓ⟩`-control.
    pub fn level(qudit: QuditId, level: u32) -> Self {
        Control {
            qudit,
            predicate: ControlPredicate::Level(level),
        }
    }

    /// Creates an `|o⟩`-control (fires on odd levels).
    pub fn odd(qudit: QuditId) -> Self {
        Control {
            qudit,
            predicate: ControlPredicate::Odd,
        }
    }

    /// Creates an `|e⟩`-control (fires on non-zero even levels).
    pub fn even_nonzero(qudit: QuditId) -> Self {
        Control {
            qudit,
            predicate: ControlPredicate::EvenNonzero,
        }
    }

    /// Creates a control that fires on any non-zero level.
    pub fn nonzero(qudit: QuditId) -> Self {
        Control {
            qudit,
            predicate: ControlPredicate::NonZero,
        }
    }
}

impl fmt::Display for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.predicate, self.qudit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_predicate_matches_only_its_level() {
        let p = ControlPredicate::Level(2);
        assert!(p.matches(2));
        assert!(!p.matches(0));
        assert!(!p.matches(3));
    }

    #[test]
    fn odd_and_even_predicates() {
        assert!(ControlPredicate::Odd.matches(1));
        assert!(ControlPredicate::Odd.matches(5));
        assert!(!ControlPredicate::Odd.matches(4));
        assert!(!ControlPredicate::EvenNonzero.matches(0));
        assert!(ControlPredicate::EvenNonzero.matches(2));
        assert!(!ControlPredicate::EvenNonzero.matches(3));
        assert!(ControlPredicate::NonZero.matches(1));
        assert!(!ControlPredicate::NonZero.matches(0));
    }

    #[test]
    fn matching_levels_partition_for_every_dimension() {
        for d in 2..10 {
            let dim = Dimension::new(d).unwrap();
            let odd = ControlPredicate::Odd.matching_levels(dim);
            let even = ControlPredicate::EvenNonzero.matching_levels(dim);
            let zero = ControlPredicate::Level(0).matching_levels(dim);
            let mut all: Vec<u32> = odd.into_iter().chain(even).chain(zero).collect();
            all.sort_unstable();
            assert_eq!(all, dim.levels().collect::<Vec<_>>());
        }
    }

    #[test]
    fn validation_rejects_out_of_range_levels() {
        let dim = Dimension::new(3).unwrap();
        assert!(ControlPredicate::Level(2).validate(dim).is_ok());
        assert!(ControlPredicate::Level(3).validate(dim).is_err());
        assert!(ControlPredicate::Odd.validate(dim).is_ok());
    }

    #[test]
    fn control_constructors() {
        let q = QuditId::new(4);
        assert_eq!(Control::zero(q).predicate, ControlPredicate::Level(0));
        assert_eq!(Control::level(q, 2).predicate, ControlPredicate::Level(2));
        assert_eq!(Control::odd(q).predicate, ControlPredicate::Odd);
        assert_eq!(
            Control::even_nonzero(q).predicate,
            ControlPredicate::EvenNonzero
        );
        assert_eq!(Control::nonzero(q).predicate, ControlPredicate::NonZero);
        assert_eq!(Control::zero(q).qudit, q);
    }

    #[test]
    fn display_is_compact() {
        let c = Control::odd(QuditId::new(1));
        assert_eq!(c.to_string(), "|o⟩@q1");
    }
}
