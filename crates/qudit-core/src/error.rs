//! Error types shared by the core circuit substrate.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while building or transforming qudit circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuditError {
    /// The requested qudit dimension is not supported (must be at least 2).
    InvalidDimension {
        /// The rejected dimension value.
        dimension: u32,
    },
    /// A level index was used that is not smaller than the qudit dimension.
    LevelOutOfRange {
        /// The rejected level.
        level: u32,
        /// The dimension the level was checked against.
        dimension: u32,
    },
    /// A qudit index does not exist in the circuit it was used with.
    QuditOutOfRange {
        /// The rejected qudit index.
        qudit: usize,
        /// The number of qudits in the circuit.
        width: usize,
    },
    /// A gate refers to the same qudit more than once (for example a control
    /// that is also the target).
    DuplicateQudit {
        /// The duplicated qudit index.
        qudit: usize,
    },
    /// An operation requiring an even dimension was used with an odd one, or
    /// vice versa.
    ParityMismatch {
        /// The dimension that did not have the required parity.
        dimension: u32,
        /// `true` if an even dimension was required.
        requires_even: bool,
    },
    /// A transposition `Xij` was constructed with `i == j`.
    DegenerateTransposition {
        /// The repeated level.
        level: u32,
    },
    /// A permutation table is not a bijection on `[d]`.
    NotAPermutation,
    /// A matrix is not unitary within the numerical tolerance.
    NotUnitary,
    /// A matrix has the wrong shape for the dimension it is used with.
    MatrixShapeMismatch {
        /// Number of rows/columns found.
        found: usize,
        /// Number of rows/columns expected.
        expected: usize,
    },
    /// A lowering pass encountered a gate it cannot handle (for example a
    /// gate with two or more controls, which requires the synthesis crate).
    UnsupportedLowering {
        /// Human readable description of the unsupported gate.
        reason: String,
    },
    /// A non-classical (unitary) operation was used where a classical
    /// permutation operation is required.
    NotClassical,
    /// A gate is not a generalised-Pauli Clifford operation, so the
    /// stabilizer tableau engine cannot simulate it (see
    /// `qudit_sim::stabilizer`).
    NonClifford {
        /// Human readable description of why the gate was rejected.
        reason: String,
    },
    /// A construction required more borrowed/clean ancilla qudits than were
    /// provided.
    InsufficientAncillas {
        /// Number of ancillas required.
        required: usize,
        /// Number of ancillas available.
        available: usize,
    },
    /// Two circuits with incompatible dimension or width were combined.
    IncompatibleCircuits {
        /// Description of the mismatch.
        reason: String,
    },
    /// A compilation pass failed (see [`crate::pipeline`]): it could not
    /// transform its input, or a verification wrapper detected that it did
    /// not preserve the circuit's semantics.
    PassFailed {
        /// Name of the failing pass.
        pass: String,
        /// Description of the failure.
        reason: String,
    },
    /// A pipeline description named a stage that no pass factory is
    /// registered for (see [`crate::pipeline::PassRegistry`]).
    UnknownPass {
        /// The unresolvable stage name.
        stage: String,
    },
    /// A lowering-cache snapshot failed to restore (see
    /// [`crate::cache::LoweringCache::restore_snapshot`]): wrong header or
    /// version, truncated input, or an unparsable entry.
    SnapshotInvalid {
        /// 1-based snapshot line of the failure.
        line: u32,
        /// Description of the corruption.
        reason: String,
    },
    /// A text-IR source failed to parse (see [`crate::qasm`]).
    ParseFailed {
        /// 1-based source line of the failure.
        line: u32,
        /// 1-based source column of the failure.
        column: u32,
        /// The rendered [`crate::qasm::ParseErrorKind`] message.
        message: String,
    },
    /// A coupling graph has fewer sites than the operation needs: an
    /// undersized builder argument, or a circuit wider than the graph it is
    /// routed onto (see [`crate::topology`]).
    TopologyTooSmall {
        /// Number of sites the graph has (or was asked to have).
        sites: usize,
        /// Minimum number of sites required.
        minimum: usize,
    },
    /// A coupling graph does not connect all of its sites, so no routing can
    /// bring every pair of qudits adjacent (see [`crate::topology`]).
    TopologyDisconnected {
        /// Number of sites reachable from site 0.
        reached: usize,
        /// Total number of sites.
        sites: usize,
    },
    /// A custom coupling edge is invalid: a self-loop, or an endpoint outside
    /// the site range (see [`crate::topology::CouplingGraph::custom`]).
    TopologyInvalidEdge {
        /// First endpoint of the rejected edge.
        a: usize,
        /// Second endpoint of the rejected edge.
        b: usize,
        /// Number of sites in the graph.
        sites: usize,
    },
    /// A circuit violates a coupling graph's adjacency invariant: a
    /// multi-qudit gate acts on two sites the graph does not couple (see
    /// [`crate::route::validate_adjacency`]).
    UncoupledGate {
        /// Index of the offending gate in the circuit.
        gate: usize,
        /// First site the gate touches.
        a: usize,
        /// Second (uncoupled) site the gate touches.
        b: usize,
    },
}

impl fmt::Display for QuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuditError::InvalidDimension { dimension } => {
                write!(
                    f,
                    "invalid qudit dimension {dimension}; dimensions must be at least 2"
                )
            }
            QuditError::LevelOutOfRange { level, dimension } => {
                write!(f, "level {level} is out of range for dimension {dimension}")
            }
            QuditError::QuditOutOfRange { qudit, width } => {
                write!(
                    f,
                    "qudit index {qudit} is out of range for a circuit of width {width}"
                )
            }
            QuditError::DuplicateQudit { qudit } => {
                write!(f, "qudit {qudit} appears more than once in a single gate")
            }
            QuditError::ParityMismatch {
                dimension,
                requires_even,
            } => {
                if *requires_even {
                    write!(
                        f,
                        "operation requires an even dimension but d = {dimension}"
                    )
                } else {
                    write!(f, "operation requires an odd dimension but d = {dimension}")
                }
            }
            QuditError::DegenerateTransposition { level } => {
                write!(f, "transposition with identical levels {level} and {level}")
            }
            QuditError::NotAPermutation => write!(f, "table is not a permutation of the levels"),
            QuditError::NotUnitary => write!(f, "matrix is not unitary within tolerance"),
            QuditError::MatrixShapeMismatch { found, expected } => {
                write!(
                    f,
                    "matrix has size {found} but size {expected} was expected"
                )
            }
            QuditError::UnsupportedLowering { reason } => {
                write!(f, "cannot lower gate to G-gates: {reason}")
            }
            QuditError::NotClassical => {
                write!(
                    f,
                    "operation is not a classical permutation of the computational basis"
                )
            }
            QuditError::NonClifford { reason } => {
                write!(f, "gate is not a qudit clifford operation: {reason}")
            }
            QuditError::InsufficientAncillas {
                required,
                available,
            } => {
                write!(f, "construction needs {required} ancilla qudits but only {available} are available")
            }
            QuditError::IncompatibleCircuits { reason } => {
                write!(f, "circuits cannot be combined: {reason}")
            }
            QuditError::PassFailed { pass, reason } => {
                write!(f, "pass '{pass}' failed: {reason}")
            }
            QuditError::UnknownPass { stage } => {
                write!(f, "no pass is registered for pipeline stage '{stage}'")
            }
            QuditError::SnapshotInvalid { line, reason } => {
                write!(f, "cache snapshot is invalid at line {line}: {reason}")
            }
            QuditError::ParseFailed {
                line,
                column,
                message,
            } => {
                write!(
                    f,
                    "qasm parse failed at line {line}, column {column}: {message}"
                )
            }
            QuditError::TopologyTooSmall { sites, minimum } => {
                write!(
                    f,
                    "coupling graph has {sites} sites but at least {minimum} are required"
                )
            }
            QuditError::TopologyDisconnected { reached, sites } => {
                write!(
                    f,
                    "coupling graph is disconnected: only {reached} of {sites} sites are reachable from site 0"
                )
            }
            QuditError::TopologyInvalidEdge { a, b, sites } => {
                write!(
                    f,
                    "coupling edge ({a}, {b}) is invalid for a graph with {sites} sites"
                )
            }
            QuditError::UncoupledGate { gate, a, b } => {
                write!(
                    f,
                    "gate {gate} acts on qudits {a} and {b}, which the coupling graph does not couple"
                )
            }
        }
    }
}

impl StdError for QuditError {}

/// Convenience result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, QuditError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let errors = vec![
            QuditError::InvalidDimension { dimension: 1 },
            QuditError::LevelOutOfRange {
                level: 5,
                dimension: 3,
            },
            QuditError::QuditOutOfRange { qudit: 7, width: 3 },
            QuditError::DuplicateQudit { qudit: 2 },
            QuditError::ParityMismatch {
                dimension: 3,
                requires_even: true,
            },
            QuditError::ParityMismatch {
                dimension: 4,
                requires_even: false,
            },
            QuditError::DegenerateTransposition { level: 1 },
            QuditError::NotAPermutation,
            QuditError::NotUnitary,
            QuditError::MatrixShapeMismatch {
                found: 2,
                expected: 3,
            },
            QuditError::UnsupportedLowering {
                reason: "two controls".into(),
            },
            QuditError::NotClassical,
            QuditError::NonClifford {
                reason: "gate acts on 3 qudits".into(),
            },
            QuditError::InsufficientAncillas {
                required: 3,
                available: 1,
            },
            QuditError::IncompatibleCircuits {
                reason: "widths differ".into(),
            },
            QuditError::PassFailed {
                pass: "lower-to-g-gates".into(),
                reason: "not classical".into(),
            },
            QuditError::UnknownPass {
                stage: "route-qudits".into(),
            },
            QuditError::SnapshotInvalid {
                line: 3,
                reason: "unknown stage 'nowhere'".into(),
            },
            QuditError::ParseFailed {
                line: 2,
                column: 1,
                message: "unknown gate 'wiggle'".into(),
            },
            QuditError::TopologyTooSmall {
                sites: 2,
                minimum: 3,
            },
            QuditError::TopologyDisconnected {
                reached: 3,
                sites: 5,
            },
            QuditError::TopologyInvalidEdge {
                a: 0,
                b: 7,
                sites: 4,
            },
            QuditError::UncoupledGate {
                gate: 9,
                a: 0,
                b: 3,
            },
        ];
        for error in errors {
            let message = error.to_string();
            assert!(!message.is_empty());
            assert!(message.chars().next().unwrap().is_lowercase());
            assert!(!message.ends_with('.'));
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuditError>();
    }
}
