//! Lowering of gates with at most one control to the elementary G-gate set
//! `{ Xij } ∪ { |0⟩-X01 }`.
//!
//! Gates with two or more controls require the constructions of the paper and
//! are lowered by the `qudit-synthesis` crate; this module provides the
//! final step shared by every construction: conjugating levels so that all
//! controlled gates become `|0⟩-X01`.

use crate::cache::{CacheCounters, CanonicalSite, LoweringCache, LoweringStage, WidthClass};
use crate::circuit::Circuit;
use crate::control::{Control, ControlPredicate};
use crate::dimension::Dimension;
use crate::error::{QuditError, Result};
use crate::gate::{Gate, GateOp};
use crate::ops::{Permutation, SingleQuditOp};
use crate::pool::WorkStealingPool;
use crate::qudit::QuditId;

/// Gate-count threshold above which the lowering passes fan the per-gate
/// work out over a [`WorkStealingPool`].  Below it the per-task bookkeeping
/// outweighs the parallelism.
pub const PARALLEL_GATE_THRESHOLD: usize = 512;

/// Lowers a single gate with at most one control into G-gates.
///
/// # Errors
///
/// Returns [`QuditError::UnsupportedLowering`] for gates with two or more
/// controls (or a value-controlled shift with an extra control), and
/// [`QuditError::NotClassical`] for non-permutation unitaries.
pub fn lower_gate(gate: &Gate, dimension: Dimension) -> Result<Vec<Gate>> {
    if !gate.is_classical() {
        return Err(QuditError::NotClassical);
    }
    if gate.is_g_gate() {
        return Ok(vec![gate.clone()]);
    }
    match gate.controls().len() {
        0 => lower_uncontrolled(gate, dimension),
        1 => lower_single_controlled(gate, dimension),
        n => Err(QuditError::UnsupportedLowering {
            reason: format!(
                "gate has {n} controls; use qudit-synthesis to lower multi-controlled gates"
            ),
        }),
    }
}

/// Lowers every gate of a circuit into G-gates.
///
/// # Errors
///
/// Propagates the per-gate errors of [`lower_gate`].
pub fn lower_circuit(circuit: &Circuit) -> Result<Circuit> {
    let mut out = Circuit::new(circuit.dimension(), circuit.width());
    for gate in circuit.gates() {
        for lowered in lower_gate(gate, circuit.dimension())? {
            out.push(lowered)?;
        }
    }
    Ok(out)
}

/// Returns the number of G-gates a circuit lowers to.
///
/// # Errors
///
/// Propagates the errors of [`lower_circuit`].
pub fn g_gate_count(circuit: &Circuit) -> Result<usize> {
    Ok(lower_circuit(circuit)?.len())
}

/// [`lower_gate`] through a [`LoweringCache`].
///
/// The gate is canonicalised (qudits renamed to role order), looked up by
/// `(gate kind, dimension, width-class)`, and the cached expansion is
/// renamed back onto the gate's actual wires.  G-gates pass through without
/// touching the cache, and uncacheable gates (general unitaries) fall back
/// to the direct path.
///
/// # Errors
///
/// Same as [`lower_gate`]; failed lowerings are never cached.
pub fn lower_gate_cached(
    gate: &Gate,
    dimension: Dimension,
    width_class: WidthClass,
    cache: &LoweringCache,
    counters: &mut CacheCounters,
) -> Result<Vec<Gate>> {
    if gate.is_g_gate() {
        return Ok(vec![gate.clone()]);
    }
    let Some(site) = CanonicalSite::of(LoweringStage::GGates, gate, dimension, width_class, &[])
    else {
        return lower_gate(gate, dimension);
    };
    let canonical =
        cache.get_or_insert_with(site.key(), counters, || lower_gate(site.gate(), dimension))?;
    Ok(site.restore(&canonical))
}

/// [`lower_circuit`] through a [`LoweringCache`], tallying hits and misses
/// into `counters`.
///
/// The output is gate-for-gate identical to [`lower_circuit`].
///
/// # Errors
///
/// Propagates the per-gate errors of [`lower_gate`].
pub fn lower_circuit_cached(
    circuit: &Circuit,
    cache: &LoweringCache,
    counters: &mut CacheCounters,
) -> Result<Circuit> {
    let width_class = WidthClass::of(circuit.width());
    let mut out = Circuit::new(circuit.dimension(), circuit.width());
    for gate in circuit.gates() {
        for lowered in lower_gate_cached(gate, circuit.dimension(), width_class, cache, counters)? {
            out.push(lowered)?;
        }
    }
    Ok(out)
}

/// [`lower_circuit`] with the per-gate work fanned out over `pool`,
/// optionally through a shared [`LoweringCache`].
///
/// Gates lower independently, so the circuit is split into contiguous chunks
/// that the pool's workers process concurrently (stealing across workers
/// when chunks are unevenly expensive); the chunk results are concatenated
/// in gate order, so the output circuit is identical to the sequential path.
///
/// The returned counters are made order-independent: two workers can race to
/// first-compute the same key (both observe a miss), so the miss count is
/// derived from the number of *distinct* entries the call added to the cache
/// instead of the raw per-worker tallies.  With a cache private to this call
/// (or one pass of a [`crate::pipeline::CacheMode::PerRun`] pipeline) the
/// counters therefore equal the sequential ones exactly; with a cache
/// concurrently shared by other jobs they are a close approximation.
///
/// # Errors
///
/// Returns the first per-gate error in gate order.
pub fn lower_circuit_parallel(
    circuit: &Circuit,
    cache: Option<&LoweringCache>,
    pool: &WorkStealingPool,
) -> Result<(Circuit, CacheCounters)> {
    let dimension = circuit.dimension();
    let width_class = WidthClass::of(circuit.width());
    let (gates, counters) =
        lower_gates_chunked(circuit.gates(), cache, pool, |gate, counters| match cache {
            Some(cache) => lower_gate_cached(gate, dimension, width_class, cache, counters),
            None => lower_gate(gate, dimension),
        })?;
    let mut out = Circuit::new(dimension, circuit.width());
    out.extend_gates(gates)?;
    Ok((out, counters))
}

/// The chunked fan-out shared by every parallel lowering path: applies
/// `lower` to each gate, in contiguous chunks over `pool`'s workers, and
/// concatenates the expansions in gate order.
///
/// When `cache` is the cache `lower` consults, the returned counters are
/// made order-independent by deriving the miss count from the number of
/// distinct entries the call added (see [`lower_circuit_parallel`]).
///
/// # Errors
///
/// Returns the first per-gate error in gate order.
pub fn lower_gates_chunked<E, F>(
    gates: &[Gate],
    cache: Option<&LoweringCache>,
    pool: &WorkStealingPool,
    lower: F,
) -> std::result::Result<(Vec<Gate>, CacheCounters), E>
where
    E: Send,
    F: Fn(&Gate, &mut CacheCounters) -> std::result::Result<Vec<Gate>, E> + Sync,
{
    let entries_before = cache.map_or(0, LoweringCache::len);
    let chunk_size = gates
        .len()
        .div_ceil(pool.threads().saturating_mul(4).max(1))
        .max(1);
    let chunks: Vec<&[Gate]> = gates.chunks(chunk_size).collect();
    let results = pool.map(chunks, |chunk| {
        let mut counters = CacheCounters::default();
        let mut lowered = Vec::new();
        for gate in chunk {
            lowered.extend(lower(gate, &mut counters)?);
        }
        Ok((lowered, counters))
    });
    let mut out = Vec::new();
    let mut total = CacheCounters::default();
    for result in results {
        let (lowered, counters) = result?;
        total.merge(counters);
        out.extend(lowered);
    }
    if let Some(cache) = cache {
        let misses = (cache.len() - entries_before) as u64;
        total = CacheCounters {
            hits: total.total().saturating_sub(misses),
            misses,
        };
    }
    Ok((out, total))
}

fn lower_uncontrolled(gate: &Gate, dimension: Dimension) -> Result<Vec<Gate>> {
    match gate.op() {
        GateOp::Single(op) => {
            let transpositions = op.transpositions(dimension)?;
            Ok(transpositions
                .into_iter()
                .map(|(i, j)| Gate::single(SingleQuditOp::Swap(i, j), gate.target()))
                .collect())
        }
        GateOp::AddFrom { source, negate } => {
            // target += ±value(source) = ∏_{y≠0} |y⟩(source)-X±y.
            let d = dimension.get();
            let mut out = Vec::new();
            for y in 1..d {
                let shift = if *negate { (d - y) % d } else { y };
                if shift == 0 {
                    continue;
                }
                let controlled = Gate::controlled(
                    SingleQuditOp::Add(shift),
                    gate.target(),
                    vec![Control::level(*source, y)],
                );
                out.extend(lower_single_controlled(&controlled, dimension)?);
            }
            Ok(out)
        }
    }
}

fn lower_single_controlled(gate: &Gate, dimension: Dimension) -> Result<Vec<Gate>> {
    let control = gate.controls()[0];
    match control.predicate {
        ControlPredicate::Level(level) => {
            lower_level_controlled(gate, control.qudit, level, dimension)
        }
        predicate => {
            // Expand the predicate into one level-controlled gate per
            // matching level; different control levels commute.
            let mut out = Vec::new();
            for level in predicate.matching_levels(dimension) {
                let expanded = Gate::new(
                    gate.op().clone(),
                    gate.target(),
                    vec![Control::level(control.qudit, level)],
                );
                out.extend(lower_gate(&expanded, dimension)?);
            }
            Ok(out)
        }
    }
}

fn lower_level_controlled(
    gate: &Gate,
    control: QuditId,
    level: u32,
    dimension: Dimension,
) -> Result<Vec<Gate>> {
    match gate.op() {
        GateOp::AddFrom { .. } => Err(QuditError::UnsupportedLowering {
            reason: "value-controlled shift with an additional control is a three-qudit gate; \
                     use qudit-synthesis to lower it"
                .to_string(),
        }),
        GateOp::Single(op) => {
            let transpositions = op.transpositions(dimension)?;
            let mut out = Vec::new();
            for (i, j) in transpositions {
                out.extend(lower_controlled_swap(
                    control,
                    level,
                    gate.target(),
                    i,
                    j,
                    dimension,
                ));
            }
            Ok(out)
        }
    }
}

/// Lowers `|level⟩(control)-Xij(target)` into G-gates by conjugating the
/// control level to `0` and the target levels to `(0, 1)`.
fn lower_controlled_swap(
    control: QuditId,
    level: u32,
    target: QuditId,
    i: u32,
    j: u32,
    dimension: Dimension,
) -> Vec<Gate> {
    let mut out = Vec::new();
    let conjugate_control = level != 0;
    if conjugate_control {
        out.push(Gate::single(SingleQuditOp::Swap(0, level), control));
    }
    let needs_sigma = !((i == 0 && j == 1) || (i == 1 && j == 0));
    let sigma = if needs_sigma {
        Some(Permutation::sending_01_to(dimension, i, j))
    } else {
        None
    };
    if let Some(sigma) = &sigma {
        for (a, b) in sigma.inverse().transpositions() {
            out.push(Gate::single(SingleQuditOp::Swap(a, b), target));
        }
    }
    out.push(Gate::controlled(
        SingleQuditOp::Swap(0, 1),
        target,
        vec![Control::zero(control)],
    ));
    if let Some(sigma) = &sigma {
        for (a, b) in sigma.transpositions() {
            out.push(Gate::single(SingleQuditOp::Swap(a, b), target));
        }
    }
    if conjugate_control {
        out.push(Gate::single(SingleQuditOp::Swap(0, level), control));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    /// Checks that the lowering of `gate` acts identically to `gate` on every
    /// basis state of a width-`width` register.
    fn assert_lowering_equivalent(gate: &Gate, dimension: Dimension, width: usize) {
        let lowered = lower_gate(gate, dimension).expect("gate should lower");
        for g in &lowered {
            assert!(g.is_g_gate(), "lowered gate {g} is not a G-gate");
        }
        let mut original = Circuit::new(dimension, width);
        original.push(gate.clone()).unwrap();
        let mut replacement = Circuit::new(dimension, width);
        replacement.extend_gates(lowered).unwrap();
        let size = dimension.register_size(width);
        for index in 0..size {
            let digits = index_to_digits(index, dimension, width);
            assert_eq!(
                original.apply_to_basis(&digits).unwrap(),
                replacement.apply_to_basis(&digits).unwrap(),
                "mismatch for input {digits:?} lowering {gate}"
            );
        }
    }

    fn index_to_digits(mut index: usize, dimension: Dimension, width: usize) -> Vec<u32> {
        let d = dimension.as_usize();
        let mut digits = vec![0u32; width];
        for slot in digits.iter_mut().rev() {
            *slot = (index % d) as u32;
            index /= d;
        }
        digits
    }

    #[test]
    fn uncontrolled_ops_lower_to_transpositions() {
        for d in [3u32, 4, 5, 6] {
            let dimension = dim(d);
            let ops = vec![
                SingleQuditOp::Swap(0, d - 1),
                SingleQuditOp::Add(1),
                SingleQuditOp::Add(d - 1),
                if d % 2 == 0 {
                    SingleQuditOp::ParityFlipEven
                } else {
                    SingleQuditOp::ParityFlipOdd
                },
            ];
            for op in ops {
                let gate = Gate::single(op, QuditId::new(0));
                assert_lowering_equivalent(&gate, dimension, 1);
            }
        }
    }

    #[test]
    fn level_controlled_swaps_lower_correctly() {
        for d in [3u32, 4, 5] {
            let dimension = dim(d);
            for level in 0..d {
                for i in 0..d {
                    for j in 0..d {
                        if i == j {
                            continue;
                        }
                        let gate = Gate::controlled(
                            SingleQuditOp::Swap(i, j),
                            QuditId::new(1),
                            vec![Control::level(QuditId::new(0), level)],
                        );
                        assert_lowering_equivalent(&gate, dimension, 2);
                    }
                }
            }
        }
    }

    #[test]
    fn predicate_controlled_gates_lower_correctly() {
        for d in [3u32, 4, 6] {
            let dimension = dim(d);
            for predicate in [
                ControlPredicate::Odd,
                ControlPredicate::EvenNonzero,
                ControlPredicate::NonZero,
            ] {
                let gate = Gate::controlled(
                    SingleQuditOp::Add(1),
                    QuditId::new(1),
                    vec![Control::new(QuditId::new(0), predicate)],
                );
                assert_lowering_equivalent(&gate, dimension, 2);
            }
        }
    }

    #[test]
    fn controlled_parity_flip_lowers_correctly() {
        let dimension = dim(6);
        let gate = Gate::controlled(
            SingleQuditOp::ParityFlipEven,
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 2)],
        );
        assert_lowering_equivalent(&gate, dimension, 2);
    }

    #[test]
    fn uncontrolled_add_from_lowers_correctly() {
        for d in [3u32, 4, 5] {
            let dimension = dim(d);
            for negate in [false, true] {
                let gate = Gate::add_from(QuditId::new(0), negate, QuditId::new(1), vec![]);
                assert_lowering_equivalent(&gate, dimension, 2);
            }
        }
    }

    #[test]
    fn multi_controlled_gates_are_rejected() {
        let dimension = dim(3);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(2),
            vec![
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
            ],
        );
        assert!(matches!(
            lower_gate(&gate, dimension),
            Err(QuditError::UnsupportedLowering { .. })
        ));
        let star = Gate::add_from(
            QuditId::new(0),
            false,
            QuditId::new(2),
            vec![Control::zero(QuditId::new(1))],
        );
        assert!(matches!(
            lower_gate(&star, dimension),
            Err(QuditError::UnsupportedLowering { .. })
        ));
    }

    #[test]
    fn lower_circuit_counts_g_gates() {
        let dimension = dim(3);
        let mut circuit = Circuit::new(dimension, 2);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 2)],
            ))
            .unwrap();
        let lowered = lower_circuit(&circuit).unwrap();
        assert!(lowered.gates().iter().all(Gate::is_g_gate));
        assert_eq!(g_gate_count(&circuit).unwrap(), lowered.len());
        assert!(!lowered.is_empty());
    }

    #[test]
    fn g_gates_pass_through_unchanged() {
        let dimension = dim(4);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        assert_eq!(lower_gate(&gate, dimension).unwrap(), vec![gate]);
    }
}
