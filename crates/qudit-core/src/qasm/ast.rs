//! Syntax tree for the qudit text IR.
//!
//! The tree is deliberately "dumb": it records what the source *said*
//! (names, raw numbers, spans) and defers every meaning judgement — gate
//! tables, arity checks, level ranges, unitarity — to the semantic lowering
//! in [`super::lower`].  That split keeps the parser total over arbitrary
//! token streams and gives diagnostics precise spans at both layers.

use super::Span;

/// A parsed program: one register declaration plus gate statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The single qudit register of the program.
    pub register: RegisterDecl,
    /// The gate statements, in source order.
    pub statements: Vec<GateStmt>,
}

/// The `qudit[d] name[n];` register declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterDecl {
    /// The register name (`q` in `qudit[3] q[8];`).
    pub name: String,
    /// The declared qudit dimension `d`.
    pub dimension: u32,
    /// The declared register width `n`.
    pub size: usize,
    /// Span of the `qudit` keyword.
    pub span: Span,
}

/// A control modifier `ctrl(<pred>) @` on a gate statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlMod {
    /// The predicate between the parentheses (a bare `ctrl @` records
    /// [`CtrlPred::Level(0)`](CtrlPred::Level)).
    pub pred: CtrlPred,
    /// Span of the `ctrl` keyword.
    pub span: Span,
}

/// A control predicate as written in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlPred {
    /// `ctrl(l)` — fire on level `l` (also the bare-`ctrl` default, `l = 0`).
    Level(u32),
    /// `ctrl(odd)` — fire on odd levels.
    Odd,
    /// `ctrl(even)` — fire on non-zero even levels.
    Even,
    /// `ctrl(nonzero)` — fire on any non-zero level.
    NonZero,
}

/// A numeric gate parameter, kept both parsed and raw.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// The parsed value (sign applied).
    pub value: f64,
    /// The literal as written, sign included (for integer-ness checks and
    /// diagnostics).
    pub raw: String,
    /// Span of the literal (of the sign, when present).
    pub span: Span,
}

/// A register-indexed operand `name[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operand {
    /// The register name before the brackets.
    pub register: String,
    /// The wire index between the brackets.
    pub index: usize,
    /// Span of the register name.
    pub span: Span,
}

/// A gate statement: modifiers, a gate name, parameters and operands.
#[derive(Debug, Clone, PartialEq)]
pub struct GateStmt {
    /// The `ctrl(…) @` modifiers, outermost first; each consumes one
    /// leading operand as its control qudit.
    pub controls: Vec<CtrlMod>,
    /// The gate name.
    pub name: String,
    /// The parenthesised parameters (empty when none were written).
    pub params: Vec<Param>,
    /// The operands, controls first.
    pub operands: Vec<Operand>,
    /// Span of the statement's first token (first modifier or gate name).
    pub span: Span,
    /// Span of the gate name itself.
    pub name_span: Span,
}
