//! Lexer for the qudit text IR: source text to spanned [`Token`]s.
//!
//! The alphabet is deliberately small — identifiers, unsigned numeric
//! literals, punctuation (`( ) [ ] , ; @ -`) and `//` line comments.  Any
//! other character is a typed [`ParseError`], never a panic: the lexer is
//! the first line of the parser-never-unwinds contract the fuzz-smoke CI
//! job enforces.

use std::fmt;

use super::{ParseError, ParseErrorKind, Span};

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`qudit`, `ctrl`, gate names, …).
    Ident(String),
    /// An unsigned numeric literal, kept raw (`3`, `0.5`, `1e-3`); signs
    /// are separate [`TokenKind::Minus`] tokens.
    Number(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `@`
    At,
    /// `-`
    Minus,
    /// End of input (always the final token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(name) => write!(f, "'{name}'"),
            TokenKind::Number(raw) => write!(f, "number '{raw}'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::At => write!(f, "'@'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with the [`Span`] of its first character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// 1-based position of the token's first character.
    pub span: Span,
}

/// Tokenises a complete source, ending with a [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns [`ParseErrorKind::UnexpectedChar`] at the first character
/// outside the dialect alphabet.
///
/// # Example
///
/// ```
/// use qudit_core::qasm::lexer::{tokenize, TokenKind};
///
/// let tokens = tokenize("qudit[3] q[2]; // register")?;
/// assert_eq!(tokens.first().unwrap().kind, TokenKind::Ident("qudit".into()));
/// assert_eq!(tokens.last().unwrap().kind, TokenKind::Eof);
/// # Ok::<(), qudit_core::qasm::ParseError>(())
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    let mut column: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line = line.saturating_add(1);
                    column = 1;
                } else {
                    column = column.saturating_add(1);
                }
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let span = Span::new(line, column);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&next) = chars.peek() {
                        if next == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(ParseError::new(ParseErrorKind::UnexpectedChar('/'), span));
                }
            }
            '(' | ')' | '[' | ']' | ',' | ';' | '@' | '-' => {
                bump!();
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semicolon,
                    '@' => TokenKind::At,
                    _ => TokenKind::Minus,
                };
                tokens.push(Token { kind, span });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&next) = chars.peek() {
                    if next.is_ascii_alphanumeric() || next == '_' {
                        name.push(next);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(name),
                    span,
                });
            }
            c if c.is_ascii_digit() => {
                let mut raw = String::new();
                let mut seen_dot = false;
                let mut seen_exp = false;
                while let Some(&next) = chars.peek() {
                    let take = next.is_ascii_digit()
                        || (next == '.' && !seen_dot && !seen_exp)
                        || ((next == 'e' || next == 'E') && !seen_exp)
                        || ((next == '+' || next == '-')
                            && matches!(raw.chars().last(), Some('e') | Some('E')));
                    if !take {
                        break;
                    }
                    seen_dot |= next == '.';
                    seen_exp |= next == 'e' || next == 'E';
                    raw.push(next);
                    bump!();
                }
                if raw.parse::<f64>().is_err() {
                    return Err(ParseError::new(ParseErrorKind::InvalidNumber(raw), span));
                }
                tokens.push(Token {
                    kind: TokenKind::Number(raw),
                    span,
                });
            }
            other => {
                return Err(ParseError::new(ParseErrorKind::UnexpectedChar(other), span));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(line, column),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn punctuation_and_idents() {
        assert_eq!(
            kinds("ctrl(0) @ swap q[1];"),
            vec![
                TokenKind::Ident("ctrl".into()),
                TokenKind::LParen,
                TokenKind::Number("0".into()),
                TokenKind::RParen,
                TokenKind::At,
                TokenKind::Ident("swap".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Number("1".into()),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_cover_floats_and_exponents() {
        assert_eq!(
            kinds("3.0 0.5 1e-3 2E+6 7"),
            vec![
                TokenKind::Number("3.0".into()),
                TokenKind::Number("0.5".into()),
                TokenKind::Number("1e-3".into()),
                TokenKind::Number("2E+6".into()),
                TokenKind::Number("7".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_spans_track_lines() {
        let tokens = tokenize("// header\n  swap").unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Ident("swap".into()));
        assert_eq!(tokens[0].span, Span::new(2, 3));
    }

    #[test]
    fn unexpected_characters_are_typed_errors() {
        let error = tokenize("swap $ q").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::UnexpectedChar('$'));
        assert_eq!(error.span, Span::new(1, 6));
        let second_dot = tokenize("1.2.3").unwrap_err();
        assert_eq!(second_dot.kind, ParseErrorKind::UnexpectedChar('.'));
        let lone_slash = tokenize("/").unwrap_err();
        assert_eq!(lone_slash.kind, ParseErrorKind::UnexpectedChar('/'));
    }

    #[test]
    fn malformed_numbers_are_rejected_not_panicked_on() {
        let error = tokenize("1e").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::InvalidNumber("1e".into()));
        let error = tokenize("3e+;").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::InvalidNumber(_)));
    }
}
