//! Semantic lowering: the syntax tree to a validated [`Circuit`].
//!
//! The parser accepts anything grammatically well-formed; this pass is
//! where meaning is enforced — the gate table, parameter and operand
//! arities, integer-ness of levels, and finally [`Circuit::push`]'s own
//! validation (level ranges, duplicate qudits, unitarity).  Core errors
//! are wrapped as [`ParseErrorKind::Semantic`] and anchored at the span of
//! the offending statement.

use crate::circuit::Circuit;
use crate::control::Control;
use crate::dimension::Dimension;
use crate::gate::Gate;
use crate::math::{Complex, SquareMatrix};
use crate::ops::{Permutation, SingleQuditOp};
use crate::qudit::QuditId;

use super::ast::{CtrlPred, GateStmt, Param, Program};
use super::{ParseError, ParseErrorKind};

/// Lowers a parsed program to a validated [`Circuit`].
///
/// # Errors
///
/// Returns the first [`ParseError`] in statement order: unknown gates or
/// registers, wrong parameter/operand counts, non-integer levels, or a
/// [`ParseErrorKind::Semantic`] wrapper around the core validation error.
///
/// # Example
///
/// ```
/// use qudit_core::qasm::{lower, parser};
///
/// let program = parser::parse_program("qudit[3] q[2]; sum q[0], q[1];")?;
/// let circuit = lower::lower_program(&program)?;
/// assert_eq!(circuit.width(), 2);
/// # Ok::<(), qudit_core::qasm::ParseError>(())
/// ```
pub fn lower_program(program: &Program) -> Result<Circuit, ParseError> {
    let register = &program.register;
    let dimension = Dimension::new(register.dimension)
        .map_err(|e| ParseError::new(ParseErrorKind::Semantic(e), register.span))?;
    let mut circuit = Circuit::new(dimension, register.size);
    circuit.set_register_name(&register.name);
    for statement in &program.statements {
        let gate = lower_statement(statement, &register.name, dimension)?;
        circuit
            .push(gate)
            .map_err(|e| ParseError::new(ParseErrorKind::Semantic(e), statement.span))?;
    }
    Ok(circuit)
}

/// How many operands a gate consumes beyond its controls.
fn operand_arity(name: &str) -> usize {
    match name {
        "sum" | "sumdg" => 2,
        _ => 1,
    }
}

fn lower_statement(
    statement: &GateStmt,
    register: &str,
    dimension: Dimension,
) -> Result<Gate, ParseError> {
    for operand in &statement.operands {
        if operand.register != register {
            return Err(ParseError::new(
                ParseErrorKind::UnknownRegister(operand.register.clone()),
                operand.span,
            ));
        }
    }

    let name = statement.name.as_str();
    let d = dimension.get();
    let op: Option<SingleQuditOp> = match name {
        "swap" => {
            expect_params(statement, 2, "2 level parameters")?;
            Some(SingleQuditOp::Swap(
                int_param(&statement.params[0])?,
                int_param(&statement.params[1])?,
            ))
        }
        "shift" => {
            expect_params(statement, 1, "1 level parameter")?;
            Some(SingleQuditOp::Add(int_param(&statement.params[0])?))
        }
        "parityflip_e" => {
            expect_params(statement, 0, "no parameters")?;
            Some(SingleQuditOp::ParityFlipEven)
        }
        "parityflip_o" => {
            expect_params(statement, 0, "no parameters")?;
            Some(SingleQuditOp::ParityFlipOdd)
        }
        "perm" => {
            let expected = d as usize;
            expect_params(
                statement,
                expected,
                &format!("{expected} level parameters (one per level)"),
            )?;
            let mut map = Vec::with_capacity(expected);
            for param in &statement.params {
                map.push(int_param(param)?);
            }
            let perm = Permutation::from_map(map)
                .map_err(|e| ParseError::new(ParseErrorKind::Semantic(e), statement.span))?;
            Some(SingleQuditOp::Perm(perm))
        }
        "unitary" => {
            // 2·d² with checked arithmetic: a fuzzed `qudit[4294967295]`
            // register must fail the count check, not overflow it.  The
            // parameter list is source-bounded, so it can never match an
            // unrepresentable count.
            let expected = dimension
                .as_usize()
                .checked_mul(dimension.as_usize())
                .and_then(|n| n.checked_mul(2))
                .unwrap_or(usize::MAX);
            expect_params(
                statement,
                expected,
                &format!("{expected} real parameters (row-major re/im pairs)"),
            )?;
            let entries = expected / 2;
            let mut data = Vec::with_capacity(entries);
            for pair in statement.params.chunks_exact(2) {
                data.push(Complex::new(pair[0].value, pair[1].value));
            }
            let matrix = SquareMatrix::from_rows(dimension.as_usize(), data)
                .map_err(|e| ParseError::new(ParseErrorKind::Semantic(e), statement.span))?;
            let op = SingleQuditOp::unitary(dimension, matrix)
                .map_err(|e| ParseError::new(ParseErrorKind::Semantic(e), statement.span))?;
            Some(op)
        }
        "fourier" => {
            expect_params(statement, 0, "no parameters")?;
            check_dense_dimension(statement, dimension)?;
            Some(SingleQuditOp::fourier(dimension))
        }
        "phase" => {
            expect_params(statement, 0, "no parameters")?;
            check_dense_dimension(statement, dimension)?;
            Some(SingleQuditOp::clifford_phase(dimension))
        }
        "sum" | "sumdg" => {
            expect_params(statement, 0, "no parameters")?;
            None
        }
        _ => {
            return Err(ParseError::new(
                ParseErrorKind::UnknownGate(statement.name.clone()),
                statement.name_span,
            ))
        }
    };

    let n_controls = statement.controls.len();
    let expected_operands = n_controls + operand_arity(name);
    if statement.operands.len() != expected_operands {
        return Err(ParseError::new(
            ParseErrorKind::WrongOperandCount {
                gate: statement.name.clone(),
                expected: expected_operands,
                found: statement.operands.len(),
            },
            statement.name_span,
        ));
    }

    let controls: Vec<Control> = statement
        .controls
        .iter()
        .zip(&statement.operands)
        .map(|(modifier, operand)| {
            let qudit = QuditId::new(operand.index);
            match modifier.pred {
                CtrlPred::Level(level) => Control::level(qudit, level),
                CtrlPred::Odd => Control::odd(qudit),
                CtrlPred::Even => Control::even_nonzero(qudit),
                CtrlPred::NonZero => Control::nonzero(qudit),
            }
        })
        .collect();

    Ok(match op {
        Some(op) => {
            let target = QuditId::new(statement.operands[n_controls].index);
            Gate::controlled(op, target, controls)
        }
        None => {
            let source = QuditId::new(statement.operands[n_controls].index);
            let target = QuditId::new(statement.operands[n_controls + 1].index);
            Gate::add_from(source, name == "sumdg", target, controls)
        }
    })
}

/// The largest dimension the `fourier`/`phase` sugar materialises a dense
/// `d × d` matrix for.
///
/// Every other statement's cost is bounded by the source length (a `perm`
/// or `unitary` needs one literal per entry), but these two conjure a
/// matrix out of a single keyword — without a cap, a fuzzed
/// `qudit[4000000000]` register would make lowering allocate gigabytes.
pub const MAX_DENSE_SUGAR_DIMENSION: u32 = 64;

fn check_dense_dimension(statement: &GateStmt, dimension: Dimension) -> Result<(), ParseError> {
    let d = dimension.get();
    if d <= MAX_DENSE_SUGAR_DIMENSION {
        Ok(())
    } else {
        Err(ParseError::new(
            ParseErrorKind::UnsupportedDimension {
                gate: statement.name.clone(),
                max: MAX_DENSE_SUGAR_DIMENSION,
                found: d,
            },
            statement.name_span,
        ))
    }
}

fn expect_params(statement: &GateStmt, count: usize, expected: &str) -> Result<(), ParseError> {
    if statement.params.len() == count {
        Ok(())
    } else {
        Err(ParseError::new(
            ParseErrorKind::WrongParamCount {
                gate: statement.name.clone(),
                expected: expected.to_string(),
                found: statement.params.len(),
            },
            statement.name_span,
        ))
    }
}

/// A parameter that must be a non-negative integer (levels, shift amounts,
/// permutation images).  NaN, infinities, fractions and out-of-range values
/// are all [`ParseErrorKind::ExpectedInteger`].
fn int_param(param: &Param) -> Result<u32, ParseError> {
    let value = param.value;
    if value.is_finite() && value >= 0.0 && value <= f64::from(u32::MAX) && value.fract() == 0.0 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Ok(value as u32)
    } else {
        Err(ParseError::new(
            ParseErrorKind::ExpectedInteger(param.raw.clone()),
            param.span,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{parse_source, Span};
    use super::*;
    use crate::control::ControlPredicate;
    use crate::gate::GateOp;

    #[test]
    fn every_gate_family_lowers() {
        let circuit = parse_source(
            "qudit[4] q[3];\n\
             swap(1, 3) q[0];\n\
             shift(2) q[1];\n\
             parityflip_e q[2];\n\
             perm(1, 0, 3, 2) q[0];\n\
             fourier q[1];\n\
             phase q[2];\n\
             sum q[0], q[1];\n\
             sumdg q[2], q[0];",
        )
        .unwrap();
        assert_eq!(circuit.len(), 8);
        assert_eq!(
            circuit.gates()[0].op(),
            &GateOp::Single(SingleQuditOp::Swap(1, 3))
        );
        assert!(matches!(
            circuit.gates()[6].op(),
            GateOp::AddFrom { negate: false, .. }
        ));
        assert!(matches!(
            circuit.gates()[7].op(),
            GateOp::AddFrom { negate: true, .. }
        ));
    }

    #[test]
    fn controls_consume_leading_operands_in_order() {
        let circuit = parse_source(
            "qudit[5] q[4];\n\
             ctrl(3) @ ctrl(odd) @ ctrl(even) @ shift(1) q[2], q[0], q[3], q[1];",
        )
        .unwrap();
        let gate = &circuit.gates()[0];
        assert_eq!(gate.target(), QuditId::new(1));
        let controls = gate.controls();
        assert_eq!(controls[0].qudit, QuditId::new(2));
        assert_eq!(controls[0].predicate, ControlPredicate::Level(3));
        assert_eq!(controls[1].qudit, QuditId::new(0));
        assert_eq!(controls[1].predicate, ControlPredicate::Odd);
        assert_eq!(controls[2].qudit, QuditId::new(3));
        assert_eq!(controls[2].predicate, ControlPredicate::EvenNonzero);
    }

    #[test]
    fn bare_ctrl_is_a_zero_control() {
        let circuit = parse_source("qudit[3] q[2]; ctrl @ swap(0, 1) q[0], q[1];").unwrap();
        assert_eq!(
            circuit.gates()[0].controls()[0].predicate,
            ControlPredicate::Level(0)
        );
        assert!(circuit.gates()[0].is_g_gate());
    }

    #[test]
    fn controlled_sum_orders_control_source_target() {
        let circuit = parse_source("qudit[3] q[3]; ctrl(nonzero) @ sum q[0], q[1], q[2];").unwrap();
        let gate = &circuit.gates()[0];
        assert_eq!(
            gate.qudits(),
            vec![QuditId::new(0), QuditId::new(1), QuditId::new(2)]
        );
    }

    #[test]
    fn unitary_params_build_a_row_major_matrix() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let source = format!("qudit[2] q[1]; unitary({s}, 0, {s}, 0, {s}, 0, -{s}, 0) q[0];");
        let circuit = parse_source(&source).unwrap();
        match circuit.gates()[0].op() {
            GateOp::Single(SingleQuditOp::Unitary(m)) => {
                assert_eq!(m[(0, 0)], Complex::new(s, 0.0));
                assert_eq!(m[(1, 1)], Complex::new(-s, 0.0));
            }
            other => panic!("expected a unitary, got {other:?}"),
        }
    }

    #[test]
    fn arity_and_parameter_mistakes_are_typed() {
        let error = parse_source("qudit[3] q[2]; swap(0) q[0];").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::WrongParamCount { .. }));
        let error = parse_source("qudit[3] q[2]; swap(0, 1) q[0], q[1];").unwrap_err();
        assert!(matches!(
            error.kind,
            ParseErrorKind::WrongOperandCount {
                expected: 1,
                found: 2,
                ..
            }
        ));
        let error = parse_source("qudit[3] q[2]; ctrl @ sum q[0], q[1];").unwrap_err();
        assert!(matches!(
            error.kind,
            ParseErrorKind::WrongOperandCount {
                expected: 3,
                found: 2,
                ..
            }
        ));
        let error = parse_source("qudit[3] q[2]; shift(1.5) q[0];").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::ExpectedInteger("1.5".into()));
        let error = parse_source("qudit[3] q[2]; shift(-1) q[0];").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::ExpectedInteger("-1".into()));
        let error = parse_source("qudit[3] q[2]; swap(0, 1) r[0];").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::UnknownRegister("r".into()));
    }

    #[test]
    fn semantic_failures_carry_the_statement_span() {
        let error = parse_source("qudit[3] q[2];\nswap(0, 7) q[0];").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::Semantic(_)));
        assert_eq!(error.span, Span::new(2, 1));
        // Duplicate qudits, parity mismatch, non-permutations, bad unitaries.
        assert!(parse_source("qudit[3] q[2]; sum q[0], q[0];").is_err());
        assert!(parse_source("qudit[3] q[1]; parityflip_e q[0];").is_err());
        assert!(parse_source("qudit[3] q[1]; perm(0, 0, 1) q[0];").is_err());
        assert!(parse_source("qudit[2] q[1]; unitary(1, 0, 1, 0, 0, 0, 1, 0) q[0];").is_err());
        // A dimension below 2 is a semantic error, not a parse error.
        let error = parse_source("qudit[1] q[2];").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::Semantic(_)));
    }

    #[test]
    fn fourier_and_phase_are_clifford_sugar() {
        for d in [2u32, 3, 5] {
            let source = format!("qudit[{d}] q[1]; fourier q[0]; phase q[0];");
            let circuit = parse_source(&source).unwrap();
            let dim = Dimension::new(d).unwrap();
            assert_eq!(
                circuit.gates()[0].op(),
                &GateOp::Single(SingleQuditOp::fourier(dim))
            );
            assert_eq!(
                circuit.gates()[1].op(),
                &GateOp::Single(SingleQuditOp::clifford_phase(dim))
            );
        }
    }
}
