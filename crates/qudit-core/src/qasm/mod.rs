//! OpenQASM-3-flavoured text IR for qudit circuits.
//!
//! Every workload used to be born inside the repo as a Rust-constructed
//! [`Circuit`]; this module is the interchange boundary that lets circuits
//! arrive (and leave) as text — external benchmark corpora, compile jobs
//! over a wire, and fuzzing all speak this dialect.  The pipeline follows
//! the classic lexer → parser → semantic-lowering split:
//!
//! * [`lexer`] — source text to spanned tokens ([`lexer::Token`]);
//! * [`parser`] — tokens to the syntax tree ([`ast::Program`]);
//! * [`lower`] — the syntax tree to a validated [`Circuit`];
//! * [`printer`] — the exact inverse: a [`Circuit`] back to canonical text,
//!   with `parse(print(c)) == c` *structurally* (float literals use Rust's
//!   shortest round-trip formatting, so even unitary matrices survive
//!   bit-for-bit).
//!
//! Every failure mode is a typed [`ParseError`] carrying a 1-based
//! line/column [`Span`]; the parser returns `Err` on any input — it never
//! panics, which the CI fuzz-smoke job enforces with ~50k mutated sources
//! per run.
//!
//! # Grammar sketch
//!
//! ```text
//! program   := version? register statement* EOF
//! version   := "OPENQASM" NUMBER ";"              // 3 or 3.0
//! register  := "qudit" "[" INT "]" IDENT "[" INT "]" ";"
//! statement := ctrl* gate params? operands ";"
//! ctrl      := "ctrl" ( "(" pred ")" )? "@"       // bare ctrl = ctrl(0)
//! pred      := INT | "odd" | "even" | "nonzero"
//! params    := "(" param ("," param)* ")"
//! param     := "-"? NUMBER
//! operands  := operand ("," operand)*
//! operand   := IDENT "[" INT "]"
//! ```
//!
//! Line comments (`// …`) are ignored.  A program declares exactly one
//! qudit register; `qudit[3] q[8];` declares eight qutrits.
//!
//! # Dialect reference
//!
//! | Statement | Params | Operands | Meaning |
//! |---|---|---|---|
//! | `swap(i, j) q[t];` | 2 levels | target | transposition `Xij` ([`SingleQuditOp::Swap`]) |
//! | `shift(y) q[t];` | 1 level | target | cyclic shift `X+y` ([`SingleQuditOp::Add`]) |
//! | `parityflip_e q[t];` | — | target | `X_eo^e` (even `d`) |
//! | `parityflip_o q[t];` | — | target | `X_eo^o` (odd `d`) |
//! | `perm(p0, …, p(d−1)) q[t];` | `d` levels | target | level permutation `i ↦ pi` |
//! | `unitary(re, im, …) q[t];` | `2d²` reals | target | row-major `d × d` unitary |
//! | `fourier q[t];` | — | target | the Clifford Fourier gate `F` ([`SingleQuditOp::fourier`]) |
//! | `phase q[t];` | — | target | the Clifford phase gate `S` ([`SingleQuditOp::clifford_phase`]) |
//! | `sum q[s], q[t];` | — | source, target | `X+⋆`: `\|y, t⟩ ↦ \|y, t+y⟩` ([`Gate::add_from`]) |
//! | `sumdg q[s], q[t];` | — | source, target | `X−⋆`, the inverse of `sum` |
//!
//! Any statement takes `ctrl(<pred>) @` modifiers; each modifier consumes
//! one extra *leading* operand as its control qudit, in order:
//!
//! ```text
//! ctrl(0) @ ctrl(odd) @ swap(0, 1) q[0], q[1], q[2];
//! ```
//!
//! is the doubly-controlled `X01` firing when `q[0]` is `|0⟩` and `q[1]`
//! is odd.  Predicates map onto [`ControlPredicate`]: an integer level,
//! `odd`, `even` (non-zero even) and `nonzero`; a bare `ctrl @` is the
//! paper's default `|0⟩`-control.
//!
//! # Example
//!
//! ```
//! use qudit_core::qasm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = "
//!     OPENQASM 3.0;
//!     qudit[3] q[2];
//!     fourier q[0];
//!     ctrl(1) @ shift(2) q[0], q[1];
//!     sum q[0], q[1];
//! ";
//! let circuit = qasm::parse_source(source)?;
//! assert_eq!(circuit.len(), 3);
//!
//! // The printer is an exact structural inverse.
//! let printed = qasm::print_circuit(&circuit);
//! assert_eq!(qasm::parse_source(&printed)?, circuit);
//!
//! // Errors carry line/column spans.
//! let error = qasm::parse_source("qudit[3] q[1];\nswap(0, 9) q[0];").unwrap_err();
//! assert_eq!((error.span.line, error.span.column), (2, 1));
//! # Ok(())
//! # }
//! ```

use std::error::Error as StdError;
use std::fmt;

use crate::circuit::Circuit;
#[allow(unused_imports)] // intra-doc links above
use crate::control::ControlPredicate;
use crate::error::QuditError;
#[allow(unused_imports)] // intra-doc links above
use crate::gate::Gate;
#[allow(unused_imports)] // intra-doc links above
use crate::ops::SingleQuditOp;

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod printer;

pub use printer::print_circuit;

/// A 1-based line/column position in a source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters, not bytes).
    pub column: u32,
}

impl Span {
    /// Creates a span at the given 1-based line and column.
    pub fn new(line: u32, column: u32) -> Self {
        Span { line, column }
    }

    /// The span of the very first character of a source.
    pub fn start() -> Self {
        Span { line: 1, column: 1 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// What went wrong while parsing or lowering a source (see [`ParseError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A character outside the dialect's alphabet.
    UnexpectedChar(char),
    /// A numeric literal that does not scan as a number.
    InvalidNumber(String),
    /// A token other than the one the grammar requires.
    UnexpectedToken {
        /// What the grammar required at this point.
        expected: String,
        /// The token actually found.
        found: String,
    },
    /// The source ended while the grammar required more input.
    UnexpectedEnd {
        /// What the grammar required at this point.
        expected: String,
    },
    /// An `OPENQASM` version other than the supported `3` / `3.0`.
    UnsupportedVersion(String),
    /// A second `qudit` register declaration (the dialect allows one).
    DuplicateRegister,
    /// A gate statement before the `qudit` register declaration.
    MissingRegister,
    /// An operand naming a register that was never declared.
    UnknownRegister(String),
    /// A gate name outside the dialect table.
    UnknownGate(String),
    /// A parameter that must be a non-negative integer but is not.
    ExpectedInteger(String),
    /// A gate called with the wrong number of parameters.
    WrongParamCount {
        /// The gate name.
        gate: String,
        /// Description of the expected parameter count.
        expected: String,
        /// Number of parameters found.
        found: usize,
    },
    /// A dense-matrix sugar statement (`fourier`, `phase`) used with a
    /// dimension too large to materialise a `d × d` matrix for.
    UnsupportedDimension {
        /// The gate name.
        gate: String,
        /// The largest supported dimension.
        max: u32,
        /// The declared register dimension.
        found: u32,
    },
    /// A gate called with the wrong number of operands (controls included).
    WrongOperandCount {
        /// The gate name.
        gate: String,
        /// Number of operands expected (control operands included).
        expected: usize,
        /// Number of operands found.
        found: usize,
    },
    /// The statement parsed but the gate it describes is invalid for the
    /// declared register (level out of range, duplicate qudit, non-unitary
    /// matrix, …).
    Semantic(QuditError),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character '{c}'"),
            ParseErrorKind::InvalidNumber(raw) => write!(f, "invalid numeric literal '{raw}'"),
            ParseErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnexpectedEnd { expected } => {
                write!(f, "expected {expected}, found end of input")
            }
            ParseErrorKind::UnsupportedVersion(raw) => {
                write!(
                    f,
                    "unsupported OPENQASM version '{raw}' (expected 3 or 3.0)"
                )
            }
            ParseErrorKind::DuplicateRegister => {
                write!(f, "a qudit register was already declared")
            }
            ParseErrorKind::MissingRegister => {
                write!(f, "statement precedes the qudit register declaration")
            }
            ParseErrorKind::UnknownRegister(name) => {
                write!(f, "unknown register '{name}'")
            }
            ParseErrorKind::UnknownGate(name) => write!(f, "unknown gate '{name}'"),
            ParseErrorKind::ExpectedInteger(raw) => {
                write!(f, "expected a non-negative integer, found '{raw}'")
            }
            ParseErrorKind::WrongParamCount {
                gate,
                expected,
                found,
            } => {
                write!(f, "gate '{gate}' takes {expected}, found {found}")
            }
            ParseErrorKind::UnsupportedDimension { gate, max, found } => {
                write!(
                    f,
                    "gate '{gate}' supports dimensions up to {max}, found {found}"
                )
            }
            ParseErrorKind::WrongOperandCount {
                gate,
                expected,
                found,
            } => {
                write!(
                    f,
                    "gate '{gate}' needs {expected} operand(s) (controls included), found {found}"
                )
            }
            ParseErrorKind::Semantic(error) => write!(f, "{error}"),
        }
    }
}

/// A typed parse/lowering diagnostic with a source [`Span`].
///
/// # Example
///
/// ```
/// use qudit_core::qasm::{parse_source, ParseErrorKind};
///
/// let error = parse_source("qudit[3] q[2];\nwiggle q[0];").unwrap_err();
/// assert!(matches!(error.kind, ParseErrorKind::UnknownGate(_)));
/// assert_eq!(error.to_string(), "line 2, column 1: unknown gate 'wiggle'");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where it went wrong (1-based line and column).
    pub span: Span,
}

impl ParseError {
    /// Creates a diagnostic from its kind and location.
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.kind)
    }
}

impl StdError for ParseError {}

impl From<ParseError> for QuditError {
    fn from(error: ParseError) -> Self {
        QuditError::ParseFailed {
            line: error.span.line,
            column: error.span.column,
            message: error.kind.to_string(),
        }
    }
}

/// Parses a dialect source all the way to a validated [`Circuit`].
///
/// This is the composition [`lower::lower_program`] ∘
/// [`parser::parse_program`]; it returns `Err` on any invalid input and
/// never panics.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, in source order.
pub fn parse_source(source: &str) -> Result<Circuit, ParseError> {
    lower::lower_program(&parser::parse_program(source)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_format_one_based() {
        assert_eq!(Span::start().to_string(), "line 1, column 1");
        assert_eq!(Span::new(4, 17).to_string(), "line 4, column 17");
    }

    #[test]
    fn parse_error_converts_into_qudit_error() {
        let error = parse_source("qudit[3] q[1]").unwrap_err();
        let core: QuditError = error.clone().into();
        match core {
            QuditError::ParseFailed {
                line,
                column,
                message,
            } => {
                assert_eq!((line, column), (error.span.line, error.span.column));
                assert_eq!(message, error.kind.to_string());
            }
            other => panic!("expected ParseFailed, got {other:?}"),
        }
    }

    #[test]
    fn error_displays_are_lowercase_and_informative() {
        let sources = [
            "qudit[3] q[1]; $",
            "qudit[3] q[1]; swap(0, 1) q[9];",
            "OPENQASM 2.0; qudit[3] q[1];",
            "swap(0, 1) q[0];",
            "qudit[3] q[1]; qudit[3] r[1];",
            "qudit[3] q[1]; warble q[0];",
        ];
        for source in sources {
            let message = parse_source(source).unwrap_err().to_string();
            assert!(message.starts_with("line "), "{message}");
            assert!(!message.ends_with('.'), "{message}");
        }
    }
}
