//! Recursive-descent parser for the qudit text IR: tokens to [`Program`].
//!
//! The parser is a plain cursor over the token stream produced by
//! [`super::lexer::tokenize`].  It enforces the grammar of the
//! [module-level sketch](super) and nothing more; whether a statement
//! *means* anything (known gate, valid levels, operand arity) is decided by
//! [`super::lower`].  Every rejection is a spanned [`ParseError`] — the
//! parser is total and never panics, whatever the input.

use super::ast::{CtrlMod, CtrlPred, GateStmt, Operand, Param, Program, RegisterDecl};
use super::lexer::{tokenize, Token, TokenKind};
use super::{ParseError, ParseErrorKind, Span};

/// Parses a complete source into its syntax tree.
///
/// # Errors
///
/// Returns the first [`ParseError`] in source order: lexical errors, grammar
/// violations, a missing/duplicate register declaration, or an unsupported
/// `OPENQASM` version.
///
/// # Example
///
/// ```
/// use qudit_core::qasm::parser::parse_program;
///
/// let program = parse_program("qudit[5] r[3]; shift(2) r[0];")?;
/// assert_eq!(program.register.dimension, 5);
/// assert_eq!(program.statements.len(), 1);
/// # Ok::<(), qudit_core::qasm::ParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    Parser { tokens, at: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        // The token stream always ends with Eof, and the cursor never moves
        // past it.
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        token
    }

    fn error_at(&self, expected: &str) -> ParseError {
        let token = self.peek();
        let kind = match &token.kind {
            TokenKind::Eof => ParseErrorKind::UnexpectedEnd {
                expected: expected.to_string(),
            },
            other => ParseErrorKind::UnexpectedToken {
                expected: expected.to_string(),
                found: other.to_string(),
            },
        };
        ParseError::new(kind, token.span)
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.error_at(expected))
        }
    }

    fn expect_ident(&mut self, expected: &str) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let token = self.bump();
                match token.kind {
                    TokenKind::Ident(name) => Ok((name, token.span)),
                    _ => unreachable!("peeked an identifier"),
                }
            }
            _ => Err(self.error_at(expected)),
        }
    }

    /// An unsigned integer literal (register sizes and wire indices).
    fn expect_index(&mut self, expected: &str) -> Result<(u64, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Number(raw) => {
                let span = self.peek().span;
                let parsed = raw.parse::<u64>().map_err(|_| {
                    ParseError::new(ParseErrorKind::ExpectedInteger(raw.clone()), span)
                })?;
                self.bump();
                Ok((parsed, span))
            }
            _ => Err(self.error_at(expected)),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.version()?;
        let mut register: Option<RegisterDecl> = None;
        let mut statements = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::Ident(name) if name == "qudit" => {
                    let decl = self.register_decl()?;
                    if register.is_some() {
                        return Err(ParseError::new(
                            ParseErrorKind::DuplicateRegister,
                            decl.span,
                        ));
                    }
                    register = Some(decl);
                }
                _ => {
                    let statement = self.gate_stmt()?;
                    if register.is_none() {
                        return Err(ParseError::new(
                            ParseErrorKind::MissingRegister,
                            statement.span,
                        ));
                    }
                    statements.push(statement);
                }
            }
        }
        let register = register
            .ok_or_else(|| ParseError::new(ParseErrorKind::MissingRegister, self.peek().span))?;
        Ok(Program {
            register,
            statements,
        })
    }

    /// The optional `OPENQASM <version>;` header.
    fn version(&mut self) -> Result<(), ParseError> {
        if !matches!(&self.peek().kind, TokenKind::Ident(name) if name == "OPENQASM") {
            return Ok(());
        }
        self.bump();
        let token = self.peek().clone();
        let raw = match &token.kind {
            TokenKind::Number(raw) => raw.clone(),
            _ => return Err(self.error_at("a version number after OPENQASM")),
        };
        if raw != "3" && raw != "3.0" {
            return Err(ParseError::new(
                ParseErrorKind::UnsupportedVersion(raw),
                token.span,
            ));
        }
        self.bump();
        self.expect(&TokenKind::Semicolon, "';' after the OPENQASM version")?;
        Ok(())
    }

    /// `qudit [ d ] name [ n ] ;` — the cursor sits on `qudit`.
    fn register_decl(&mut self) -> Result<RegisterDecl, ParseError> {
        let (_, span) = self.expect_ident("'qudit'")?;
        self.expect(&TokenKind::LBracket, "'[' after 'qudit'")?;
        let (dimension, dim_span) = self.expect_index("a qudit dimension")?;
        let dimension = u32::try_from(dimension).map_err(|_| {
            ParseError::new(
                ParseErrorKind::ExpectedInteger(dimension.to_string()),
                dim_span,
            )
        })?;
        self.expect(&TokenKind::RBracket, "']' after the dimension")?;
        let (name, _) = self.expect_ident("a register name")?;
        self.expect(&TokenKind::LBracket, "'[' after the register name")?;
        let (size, size_span) = self.expect_index("a register width")?;
        let size = usize::try_from(size).map_err(|_| {
            ParseError::new(ParseErrorKind::ExpectedInteger(size.to_string()), size_span)
        })?;
        self.expect(&TokenKind::RBracket, "']' after the register width")?;
        self.expect(&TokenKind::Semicolon, "';' after the register declaration")?;
        Ok(RegisterDecl {
            name,
            dimension,
            size,
            span,
        })
    }

    /// `ctrl (pred)? @ … name params? operands ;`
    fn gate_stmt(&mut self) -> Result<GateStmt, ParseError> {
        let span = self.peek().span;
        let mut controls = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::Ident(name) if name == "ctrl" => {
                    controls.push(self.ctrl_mod()?);
                }
                _ => break,
            }
        }
        let (name, name_span) = self.expect_ident("a gate name")?;
        let params = if self.peek().kind == TokenKind::LParen {
            self.params()?
        } else {
            Vec::new()
        };
        let mut operands = vec![self.operand()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            operands.push(self.operand()?);
        }
        self.expect(&TokenKind::Semicolon, "';' after the gate statement")?;
        Ok(GateStmt {
            controls,
            name,
            params,
            operands,
            span,
            name_span,
        })
    }

    fn ctrl_mod(&mut self) -> Result<CtrlMod, ParseError> {
        let (_, span) = self.expect_ident("'ctrl'")?;
        let pred = if self.peek().kind == TokenKind::LParen {
            self.bump();
            let pred = match self.peek().kind.clone() {
                TokenKind::Number(_) => {
                    let (level, level_span) = self.expect_index("a control level")?;
                    let level = u32::try_from(level).map_err(|_| {
                        ParseError::new(
                            ParseErrorKind::ExpectedInteger(level.to_string()),
                            level_span,
                        )
                    })?;
                    CtrlPred::Level(level)
                }
                TokenKind::Ident(name) => {
                    let pred = match name.as_str() {
                        "odd" => CtrlPred::Odd,
                        "even" => CtrlPred::Even,
                        "nonzero" => CtrlPred::NonZero,
                        _ => {
                            return Err(self.error_at(
                                "a control predicate (a level, 'odd', 'even' or 'nonzero')",
                            ))
                        }
                    };
                    self.bump();
                    pred
                }
                _ => {
                    return Err(
                        self.error_at("a control predicate (a level, 'odd', 'even' or 'nonzero')")
                    )
                }
            };
            self.expect(&TokenKind::RParen, "')' after the control predicate")?;
            pred
        } else {
            CtrlPred::Level(0)
        };
        self.expect(&TokenKind::At, "'@' after the control modifier")?;
        Ok(CtrlMod { pred, span })
    }

    fn params(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut params = vec![self.param()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            params.push(self.param()?);
        }
        self.expect(&TokenKind::RParen, "')' after the gate parameters")?;
        Ok(params)
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let span = self.peek().span;
        let negate = if self.peek().kind == TokenKind::Minus {
            self.bump();
            true
        } else {
            false
        };
        match self.peek().kind.clone() {
            TokenKind::Number(raw) => {
                let number_span = self.peek().span;
                let magnitude = raw.parse::<f64>().map_err(|_| {
                    ParseError::new(ParseErrorKind::InvalidNumber(raw.clone()), number_span)
                })?;
                self.bump();
                let (value, raw) = if negate {
                    (-magnitude, format!("-{raw}"))
                } else {
                    (magnitude, raw)
                };
                Ok(Param { value, raw, span })
            }
            _ => Err(self.error_at("a numeric parameter")),
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        let (register, span) = self.expect_ident("an operand ('<register>[<index>]')")?;
        self.expect(&TokenKind::LBracket, "'[' after the operand register")?;
        let (index, index_span) = self.expect_index("a wire index")?;
        let index = usize::try_from(index).map_err(|_| {
            ParseError::new(
                ParseErrorKind::ExpectedInteger(index.to_string()),
                index_span,
            )
        })?;
        self.expect(&TokenKind::RBracket, "']' after the wire index")?;
        Ok(Operand {
            register,
            index,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_statement_shapes_parse() {
        let program = parse_program(
            "OPENQASM 3.0;\n\
             qudit[4] q[3];\n\
             ctrl(odd) @ ctrl @ swap(0, 2) q[0], q[1], q[2];\n\
             unitary(0.5, -0.5, 0.5, 0.5, 0.5, 0.5, 0.5, -0.5) q[1];\n\
             sumdg q[0], q[2];",
        )
        .unwrap();
        assert_eq!(program.register.name, "q");
        assert_eq!(program.statements.len(), 3);
        let mct = &program.statements[0];
        assert_eq!(mct.controls.len(), 2);
        assert_eq!(mct.controls[0].pred, CtrlPred::Odd);
        assert_eq!(mct.controls[1].pred, CtrlPred::Level(0));
        assert_eq!(mct.operands.len(), 3);
        let unitary = &program.statements[1];
        assert_eq!(unitary.params.len(), 8);
        assert_eq!(unitary.params[1].value, -0.5);
        assert_eq!(unitary.params[1].raw, "-0.5");
    }

    #[test]
    fn version_header_is_optional_but_checked() {
        assert!(parse_program("qudit[3] q[1];").is_ok());
        assert!(parse_program("OPENQASM 3; qudit[3] q[1];").is_ok());
        let error = parse_program("OPENQASM 2.0; qudit[3] q[1];").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::UnsupportedVersion("2.0".into()));
    }

    #[test]
    fn register_rules_are_enforced() {
        let missing = parse_program("swap(0, 1) q[0];").unwrap_err();
        assert_eq!(missing.kind, ParseErrorKind::MissingRegister);
        let empty = parse_program("").unwrap_err();
        assert_eq!(empty.kind, ParseErrorKind::MissingRegister);
        let duplicate = parse_program("qudit[3] q[1]; qudit[3] r[1];").unwrap_err();
        assert_eq!(duplicate.kind, ParseErrorKind::DuplicateRegister);
        assert_eq!(duplicate.span, Span::new(1, 16));
    }

    #[test]
    fn truncated_sources_report_what_was_expected() {
        let error = parse_program("qudit[3] q[2]; swap(0, 1) q[0]").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::UnexpectedEnd { .. }));
        let error = parse_program("qudit[3] q[2]; swap(0,").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::UnexpectedEnd { .. }));
        let error = parse_program("qudit[3]").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::UnexpectedEnd { .. }));
    }

    #[test]
    fn fractional_indices_are_rejected() {
        let error = parse_program("qudit[3.5] q[1];").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::ExpectedInteger("3.5".into()));
        let error = parse_program("qudit[3] q[1]; swap(0, 1) q[0.5];").unwrap_err();
        assert_eq!(error.kind, ParseErrorKind::ExpectedInteger("0.5".into()));
    }

    #[test]
    fn huge_indices_are_rejected_without_overflow() {
        let error = parse_program("qudit[99999999999999999999] q[1];").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::ExpectedInteger(_)));
        // u64-range but out of u32 range for a dimension.
        let error = parse_program("qudit[4294967296] q[1];").unwrap_err();
        assert!(matches!(error.kind, ParseErrorKind::ExpectedInteger(_)));
    }
}
