//! Pretty-printer: a [`Circuit`] back to canonical dialect text.
//!
//! The printer is an exact structural inverse of the parser:
//! `parse_source(print_circuit(c)) == c` for every valid circuit.  Float
//! literals use Rust's `{}` formatting, which is guaranteed to be the
//! shortest representation that round-trips through `f64` parsing, so even
//! arbitrary unitary matrices survive bit-for-bit.  The Fourier and phase
//! sugar statements are *input-only*: their lowered unitaries print as
//! `unitary(…)`, which reparses to the same [`SingleQuditOp::Unitary`].

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::control::ControlPredicate;
use crate::gate::{Gate, GateOp};
use crate::ops::SingleQuditOp;

/// Prints a circuit in the canonical dialect form (see [the module-level
/// grammar](super)).
///
/// A circuit carrying a [`Circuit::register_name`] (set by the parser)
/// prints with that name, so `parse → print → parse` preserves user-chosen
/// register names; programmatically built circuits print as the canonical
/// register `q`.
///
/// # Example
///
/// ```
/// use qudit_core::qasm::{parse_source, print_circuit};
///
/// let circuit = parse_source("qudit[3] work[2]; ctrl(odd) @ shift(2) work[0], work[1];")?;
/// let printed = print_circuit(&circuit);
/// assert_eq!(
///     printed,
///     "OPENQASM 3.0;\nqudit[3] work[2];\nctrl(odd) @ shift(2) work[0], work[1];\n"
/// );
/// assert_eq!(parse_source(&printed)?, circuit);
/// # Ok::<(), qudit_core::qasm::ParseError>(())
/// ```
pub fn print_circuit(circuit: &Circuit) -> String {
    let register = circuit.register_name().unwrap_or("q");
    let mut out = String::new();
    out.push_str("OPENQASM 3.0;\n");
    let _ = writeln!(
        out,
        "qudit[{}] {register}[{}];",
        circuit.dimension().get(),
        circuit.width()
    );
    for gate in circuit.gates() {
        print_gate(&mut out, gate, register);
    }
    out
}

fn print_gate(out: &mut String, gate: &Gate, register: &str) {
    for control in gate.controls() {
        match control.predicate {
            ControlPredicate::Level(0) => out.push_str("ctrl @ "),
            ControlPredicate::Level(l) => {
                let _ = write!(out, "ctrl({l}) @ ");
            }
            ControlPredicate::Odd => out.push_str("ctrl(odd) @ "),
            ControlPredicate::EvenNonzero => out.push_str("ctrl(even) @ "),
            ControlPredicate::NonZero => out.push_str("ctrl(nonzero) @ "),
        }
    }
    match gate.op() {
        GateOp::Single(op) => print_single_op(out, op),
        GateOp::AddFrom { negate, .. } => {
            out.push_str(if *negate { "sumdg" } else { "sum" });
        }
    }
    // Gate::qudits() lists controls, then the AddFrom source, then the
    // target — exactly the operand order the parser expects back.
    let mut first = true;
    for qudit in gate.qudits() {
        if first {
            let _ = write!(out, " {register}[{}]", qudit.index());
            first = false;
        } else {
            let _ = write!(out, ", {register}[{}]", qudit.index());
        }
    }
    out.push_str(";\n");
}

fn print_single_op(out: &mut String, op: &SingleQuditOp) {
    match op {
        SingleQuditOp::Swap(i, j) => {
            let _ = write!(out, "swap({i}, {j})");
        }
        SingleQuditOp::Add(y) => {
            let _ = write!(out, "shift({y})");
        }
        SingleQuditOp::ParityFlipEven => out.push_str("parityflip_e"),
        SingleQuditOp::ParityFlipOdd => out.push_str("parityflip_o"),
        SingleQuditOp::Perm(perm) => {
            out.push_str("perm(");
            for (i, to) in perm.as_map().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{to}");
            }
            out.push(')');
        }
        SingleQuditOp::Unitary(matrix) => {
            out.push_str("unitary(");
            for (i, z) in matrix.as_slice().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_real(out, z.re);
                out.push_str(", ");
                print_real(out, z.im);
            }
            out.push(')');
        }
    }
}

/// Prints an `f64` so that the lexer/parser reproduce it bit-for-bit.
///
/// Rust's `{}` is shortest-round-trip, but its `1e21`-style output for
/// large magnitudes and bare `-0` both fit our grammar already; the only
/// case needing care is that the grammar keeps `-` a separate token, which
/// the parser rejoins — so plain formatting suffices.
fn print_real(out: &mut String, value: f64) {
    let _ = write!(out, "{value}");
}

#[cfg(test)]
mod tests {
    use super::super::parse_source;
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::math::{Complex, SquareMatrix};
    use crate::qudit::QuditId;

    fn round_trip(source: &str) {
        let circuit = parse_source(source).unwrap();
        let printed = print_circuit(&circuit);
        let reparsed = parse_source(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to reparse: {e}\n{printed}"));
        assert_eq!(reparsed, circuit, "printed:\n{printed}");
    }

    #[test]
    fn canonical_statements_round_trip() {
        round_trip(
            "qudit[4] q[3];\n\
             swap(1, 3) q[0];\n\
             shift(2) q[1];\n\
             parityflip_e q[2];\n\
             perm(3, 2, 1, 0) q[0];\n\
             ctrl @ ctrl(2) @ swap(0, 1) q[0], q[1], q[2];\n\
             ctrl(odd) @ sum q[0], q[1], q[2];\n\
             ctrl(even) @ sumdg q[0], q[1], q[2];\n\
             ctrl(nonzero) @ shift(3) q[1], q[0];",
        );
        round_trip("qudit[5] q[1]; fourier q[0]; phase q[0]; parityflip_o q[0];");
        round_trip("qudit[2] q[2];");
    }

    #[test]
    fn unitaries_round_trip_bit_for_bit() {
        let d = Dimension::new(3).unwrap();
        let mut circuit = Circuit::new(d, 2);
        // An awkward unitary: the Fourier matrix has irrational entries in
        // every position.
        circuit
            .push(Gate::controlled(
                SingleQuditOp::fourier(d),
                QuditId::new(0),
                vec![Control::odd(QuditId::new(1))],
            ))
            .unwrap();
        let printed = print_circuit(&circuit);
        assert_eq!(parse_source(&printed).unwrap(), circuit);
    }

    #[test]
    fn negative_zero_and_tiny_magnitudes_survive() {
        let d = Dimension::new(2).unwrap();
        let mut circuit = Circuit::new(d, 1);
        let matrix = SquareMatrix::from_rows(
            2,
            vec![
                Complex::new(1.0, -0.0),
                Complex::new(0.0, 0.0),
                Complex::new(-0.0, 0.0),
                Complex::new(-1.0, 1e-300),
            ],
        )
        .unwrap();
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(matrix),
                QuditId::new(0),
            ))
            .unwrap();
        let printed = print_circuit(&circuit);
        let reparsed = parse_source(&printed).unwrap();
        assert_eq!(reparsed, circuit, "printed:\n{printed}");
        match reparsed.gates()[0].op() {
            GateOp::Single(SingleQuditOp::Unitary(m)) => {
                assert!(m[(0, 0)].im.is_sign_negative(), "-0.0 must survive");
            }
            other => panic!("expected a unitary, got {other:?}"),
        }
    }

    #[test]
    fn printed_output_is_canonical() {
        let circuit = parse_source(
            "OPENQASM 3; // header and comments vanish\n qudit[3] q[2];\n sum q[0], q[1];",
        )
        .unwrap();
        assert_eq!(
            print_circuit(&circuit),
            "OPENQASM 3.0;\nqudit[3] q[2];\nsum q[0], q[1];\n"
        );
    }
}
