//! ASCII circuit diagrams.
//!
//! The renderer draws one row per qudit and one column per gate, using the
//! same labels as the paper's figures: control predicates are printed as
//! `0`, `o`, `e` or `≠0`, the `X±⋆` source as `⋆`, and the target as the
//! operation name.  It is used by the experiment harness to regenerate
//! figure-style listings of the constructions.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateOp};

/// Renders a circuit as an ASCII diagram, one row per qudit.
///
/// Wire labels default to `q0`, `q1`, …; use [`render_with_labels`] to supply
/// custom names (for example `x1`, `t`, `a` as in the paper's figures).
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_core::diagram::render;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
/// let text = render(&circuit);
/// assert!(text.contains("q0"));
/// assert!(text.contains("X01"));
/// # Ok(())
/// # }
/// ```
pub fn render(circuit: &Circuit) -> String {
    let labels: Vec<String> = (0..circuit.width()).map(|i| format!("q{i}")).collect();
    render_with_labels(circuit, &labels)
}

/// Renders a circuit with custom wire labels.
///
/// # Panics
///
/// Panics if `labels.len() != circuit.width()`.
pub fn render_with_labels(circuit: &Circuit, labels: &[String]) -> String {
    assert_eq!(
        labels.len(),
        circuit.width(),
        "one label per qudit is required"
    );
    let width = circuit.width();
    let label_width = labels.iter().map(String::len).max().unwrap_or(0);

    // Build the cell text of every (qudit, gate) pair.
    let mut columns: Vec<Vec<String>> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let mut column = vec![String::new(); width];
        for control in gate.controls() {
            column[control.qudit.index()] = control_symbol(control.predicate);
        }
        if let GateOp::AddFrom { source, .. } = gate.op() {
            column[source.index()] = "⋆".to_string();
        }
        column[gate.target().index()] = target_symbol(gate);
        columns.push(column);
    }
    let column_widths: Vec<usize> = columns
        .iter()
        .map(|col| {
            col.iter()
                .map(|c| c.chars().count())
                .max()
                .unwrap_or(1)
                .max(1)
        })
        .collect();

    let mut out = String::new();
    for (qudit, label) in labels.iter().enumerate() {
        out.push_str(&format!("{label:>label_width$} "));
        for (column, &cell_width) in columns.iter().zip(column_widths.iter()) {
            let cell = &column[qudit];
            let pad = cell_width - cell.chars().count();
            out.push_str("──");
            if cell.is_empty() {
                out.push_str(&"─".repeat(cell_width));
            } else {
                out.push_str(cell);
                out.push_str(&"─".repeat(pad));
            }
        }
        out.push_str("──\n");
    }
    out
}

fn control_symbol(predicate: crate::control::ControlPredicate) -> String {
    use crate::control::ControlPredicate;
    match predicate {
        ControlPredicate::Level(l) => l.to_string(),
        ControlPredicate::Odd => "o".to_string(),
        ControlPredicate::EvenNonzero => "e".to_string(),
        ControlPredicate::NonZero => "≠0".to_string(),
    }
}

fn target_symbol(gate: &Gate) -> String {
    match gate.op() {
        GateOp::Single(op) => op.to_string(),
        GateOp::AddFrom { negate, .. } => {
            if *negate {
                "X-⋆".to_string()
            } else {
                "X+⋆".to_string()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::ops::SingleQuditOp;
    use crate::qudit::QuditId;

    fn sample_circuit() -> Circuit {
        let d = Dimension::new(3).unwrap();
        let mut c = Circuit::new(d, 3);
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(2),
            vec![
                Control::zero(QuditId::new(0)),
                Control::odd(QuditId::new(1)),
            ],
        ))
        .unwrap();
        c.push(Gate::add_from(
            QuditId::new(0),
            true,
            QuditId::new(1),
            vec![],
        ))
        .unwrap();
        c
    }

    #[test]
    fn renders_one_line_per_qudit() {
        let text = render(&sample_circuit());
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("X01"));
        assert!(text.contains('o'));
        assert!(text.contains('⋆'));
        assert!(text.contains("X-⋆"));
    }

    #[test]
    fn custom_labels_are_used() {
        let labels = vec!["x1".to_string(), "x2".to_string(), "t".to_string()];
        let text = render_with_labels(&sample_circuit(), &labels);
        assert!(text.starts_with("x1"));
        assert!(text.contains("\nx2"));
        assert!(text.contains("\n t") || text.contains("\nt"));
    }

    #[test]
    fn empty_circuit_renders_bare_wires() {
        let d = Dimension::new(3).unwrap();
        let circuit = Circuit::new(d, 2);
        let text = render(&circuit);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("──"));
    }

    #[test]
    #[should_panic(expected = "one label per qudit")]
    fn label_count_is_checked() {
        let _ = render_with_labels(&sample_circuit(), &["x".to_string()]);
    }
}
