//! Peephole optimisation of qudit circuits.
//!
//! The synthesis constructions conjugate levels aggressively, which produces
//! many adjacent gate/inverse pairs after lowering (for example the
//! `X_{0ℓ} … X_{0ℓ}` sandwiches around consecutive controlled gates on the
//! same control level).  [`cancel_inverse_pairs`] removes every pair of gates
//! that are exact inverses of each other and adjacent on all of their qudits;
//! the pass is applied to a fixed point in a single sweep thanks to the
//! per-qudit stack bookkeeping.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Removes adjacent gate/inverse pairs from a circuit.
///
/// Two gates form a cancellable pair when the second is the exact inverse of
/// the first (same controls, same target, inverse operation) and no gate in
/// between touches any qudit of the pair.  Cancellation is applied
/// transitively: removing a pair can make an enclosing pair adjacent, which
/// is then removed as well.
///
/// The result implements exactly the same unitary as the input.
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_core::optimize::cancel_inverse_pairs;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(5)?;
/// // X+1 followed by X+2 is not an inverse pair: nothing is removed.
/// let mut circuit = Circuit::new(d, 1);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))?;
/// assert_eq!(cancel_inverse_pairs(&circuit).len(), 2);
///
/// // X+1 followed by X−1 (= X+4) cancels, leaving only the trailing X+2.
/// let mut circuit = Circuit::new(d, 1);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(4), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))?;
/// assert_eq!(cancel_inverse_pairs(&circuit).len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn cancel_inverse_pairs(circuit: &Circuit) -> Circuit {
    let dimension = circuit.dimension();
    // `kept[i]` is Some(gate) while gate i is still in the output.
    let mut kept: Vec<Option<Gate>> = Vec::with_capacity(circuit.len());
    // For each qudit, the indices (into `kept`) of the retained gates that
    // touch it, in order.
    let mut last_touch: Vec<Vec<usize>> = vec![Vec::new(); circuit.width()];

    for gate in circuit.gates() {
        let qudits = gate.qudits();
        // The candidate for cancellation is the most recent retained gate on
        // any of this gate's qudits — and it must be the most recent on all
        // of them.
        let candidate = qudits
            .iter()
            .filter_map(|q| last_touch[q.index()].last().copied())
            .max();
        let cancels = candidate.is_some_and(|index| {
            let previous = kept[index].as_ref().expect("candidate is retained");
            let same_support = qudits
                .iter()
                .all(|q| last_touch[q.index()].last() == Some(&index));
            let same_qudits = {
                let mut a = previous.qudits();
                let mut b = qudits.clone();
                a.sort_unstable();
                b.sort_unstable();
                a == b
            };
            same_support && same_qudits && previous.inverse(dimension) == *gate
        });
        if let (true, Some(index)) = (cancels, candidate) {
            // Remove the previous gate and drop the current one.
            kept[index] = None;
            for q in kept_qudits(&qudits) {
                let stack = &mut last_touch[q];
                debug_assert_eq!(stack.last(), Some(&index));
                stack.pop();
            }
        } else {
            let index = kept.len();
            kept.push(Some(gate.clone()));
            for q in kept_qudits(&qudits) {
                last_touch[q].push(index);
            }
        }
    }

    let mut out = Circuit::new(dimension, circuit.width());
    for gate in kept.into_iter().flatten() {
        out.push(gate)
            .expect("gates were valid in the input circuit");
    }
    out
}

fn kept_qudits(qudits: &[crate::qudit::QuditId]) -> impl Iterator<Item = usize> + '_ {
    qudits.iter().map(|q| q.index())
}

/// Convenience statistic: the number of gates removed by
/// [`cancel_inverse_pairs`].
pub fn cancelled_gate_count(circuit: &Circuit) -> usize {
    circuit.len() - cancel_inverse_pairs(circuit).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::ops::SingleQuditOp;
    use crate::qudit::QuditId;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn assert_same_action(a: &Circuit, b: &Circuit) {
        let dimension = a.dimension();
        let d = dimension.as_usize();
        let width = a.width();
        let size = dimension.register_size(width);
        for mut index in 0..size {
            let mut digits = vec![0u32; width];
            for slot in digits.iter_mut().rev() {
                *slot = (index % d) as u32;
                index /= d;
            }
            assert_eq!(
                a.apply_to_basis(&digits).unwrap(),
                b.apply_to_basis(&digits).unwrap()
            );
        }
    }

    #[test]
    fn adjacent_involutions_cancel() {
        let d = dim(3);
        let mut c = Circuit::new(d, 2);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        c.push(gate.clone()).unwrap();
        c.push(gate).unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert!(optimized.is_empty());
        assert_eq!(cancelled_gate_count(&c), 2);
    }

    #[test]
    fn nested_pairs_cancel_transitively() {
        let d = dim(5);
        let mut c = Circuit::new(d, 1);
        // X+1, X+2, X−2, X−1 — cancels completely from the inside out.
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(3), QuditId::new(0)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(4), QuditId::new(0)))
            .unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert!(optimized.is_empty());
    }

    #[test]
    fn intervening_gates_block_cancellation() {
        let d = dim(3);
        let mut c = Circuit::new(d, 2);
        let swap = Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0));
        c.push(swap.clone()).unwrap();
        // A gate on the same qudit in between prevents the outer pair from
        // cancelling.
        c.push(Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        ))
        .unwrap();
        c.push(swap).unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert_eq!(optimized.len(), 3);
        assert_same_action(&c, &optimized);
    }

    #[test]
    fn gates_on_disjoint_qudits_do_not_block() {
        let d = dim(3);
        let mut c = Circuit::new(d, 3);
        let swap = Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(0));
        c.push(swap.clone()).unwrap();
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(2)))
            .unwrap();
        c.push(swap).unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert_eq!(optimized.len(), 1);
        assert_same_action(&c, &optimized);
    }

    #[test]
    fn controls_must_match_for_cancellation() {
        let d = dim(3);
        let mut c = Circuit::new(d, 2);
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        ))
        .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 1)],
        ))
        .unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert_eq!(optimized.len(), 2);
    }

    #[test]
    fn optimisation_preserves_semantics_on_a_mixed_circuit() {
        let d = dim(4);
        let mut c = Circuit::new(d, 3);
        let gates = vec![
            Gate::single(SingleQuditOp::Swap(0, 3), QuditId::new(0)),
            Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::odd(QuditId::new(0))],
            ),
            Gate::controlled(
                SingleQuditOp::Add(3),
                QuditId::new(1),
                vec![Control::odd(QuditId::new(0))],
            ),
            Gate::single(SingleQuditOp::Swap(0, 3), QuditId::new(0)),
            Gate::single(SingleQuditOp::ParityFlipEven, QuditId::new(2)),
        ];
        for gate in gates {
            c.push(gate).unwrap();
        }
        let optimized = cancel_inverse_pairs(&c);
        assert!(optimized.len() < c.len());
        assert_same_action(&c, &optimized);
    }
}
