//! Peephole optimisation of qudit circuits.
//!
//! The synthesis constructions conjugate levels aggressively, which produces
//! many adjacent gate/inverse pairs after lowering (for example the
//! `X_{0ℓ} … X_{0ℓ}` sandwiches around consecutive controlled gates on the
//! same control level).  [`cancel_inverse_pairs`] removes every pair of gates
//! that are exact inverses of each other and adjacent on all of their qudits.
//!
//! # Windowed reduction
//!
//! Large circuits are reduced in fixed-size *windows* of
//! [`CANCEL_WINDOW_SIZE`] gates: every window is reduced independently with
//! the per-qudit stack pass, the surviving gates are concatenated in order,
//! and one final stack pass over the survivors removes the pairs that
//! straddled a window boundary.  Deleting an adjacent inverse pair is a
//! confluent rewriting step (it is free reduction in a partially commutative
//! group: gates on disjoint qudits commute, gates sharing a qudit do not),
//! so the windowed reduction removes exactly as many gates as a single
//! sequential sweep and the result is fully reduced — a second application
//! is the identity.
//!
//! Windows only depend on the gate list, never on the execution mode, so
//! [`cancel_inverse_pairs`] and [`cancel_inverse_pairs_on`] (the same
//! algorithm with the window reductions fanned out over a
//! [`WorkStealingPool`]) return byte-identical circuits; pipelines may pick
//! either freely without perturbing batch-vs-sequential comparisons.

use crate::circuit::Circuit;
use crate::dimension::Dimension;
use crate::gate::Gate;
use crate::pool::WorkStealingPool;

/// Number of gates per independently reduced window.
///
/// Circuits at most this long are reduced in a single sequential sweep (the
/// windowed and single-sweep algorithms coincide there); longer circuits are
/// split into `ceil(len / CANCEL_WINDOW_SIZE)` windows whose reductions are
/// independent — the unit of parallelism of [`cancel_inverse_pairs_on`].
pub const CANCEL_WINDOW_SIZE: usize = 1024;

/// One sequential stack-pass over a gate sequence, returning the surviving
/// gates in order.
///
/// Two gates form a cancellable pair when the second is the exact inverse of
/// the first (same controls, same target, inverse operation) and no surviving
/// gate in between touches any qudit of the pair.  Cancellation is applied
/// transitively: removing a pair can make an enclosing pair adjacent, which
/// is then removed as well.  One pass reaches a fixed point (see the module
/// docs), so the result contains no cancellable pair.
fn reduce_gates<I>(dimension: Dimension, width: usize, gates: I) -> Vec<Gate>
where
    I: IntoIterator<Item = Gate>,
{
    // `kept[i]` is Some(gate) while gate i is still in the output.
    let mut kept: Vec<Option<Gate>> = Vec::new();
    // For each qudit, the indices (into `kept`) of the retained gates that
    // touch it, in order.
    let mut last_touch: Vec<Vec<usize>> = vec![Vec::new(); width];

    for gate in gates {
        let qudits = gate.qudits();
        // The candidate for cancellation is the most recent retained gate on
        // any of this gate's qudits — and it must be the most recent on all
        // of them.
        let candidate = qudits
            .iter()
            .filter_map(|q| last_touch[q.index()].last().copied())
            .max();
        let cancels = candidate.is_some_and(|index| {
            let previous = kept[index].as_ref().expect("candidate is retained");
            let same_support = qudits
                .iter()
                .all(|q| last_touch[q.index()].last() == Some(&index));
            let same_qudits = {
                let mut a = previous.qudits();
                let mut b = qudits.clone();
                a.sort_unstable();
                b.sort_unstable();
                a == b
            };
            same_support && same_qudits && previous.inverse(dimension) == gate
        });
        if let (true, Some(index)) = (cancels, candidate) {
            // Remove the previous gate and drop the current one.
            kept[index] = None;
            for q in &qudits {
                let stack = &mut last_touch[q.index()];
                debug_assert_eq!(stack.last(), Some(&index));
                stack.pop();
            }
        } else {
            let index = kept.len();
            kept.push(Some(gate));
            for q in &qudits {
                last_touch[q.index()].push(index);
            }
        }
    }

    kept.into_iter().flatten().collect()
}

/// Reduces the windows (sequentially or on a pool) and stitches the
/// survivors with a final sequential pass.
fn cancel_windowed(circuit: &Circuit, pool: Option<&WorkStealingPool>) -> Circuit {
    let dimension = circuit.dimension();
    let width = circuit.width();
    let survivors = if circuit.len() <= CANCEL_WINDOW_SIZE {
        reduce_gates(dimension, width, circuit.gates().iter().cloned())
    } else {
        let windows: Vec<&[Gate]> = circuit.gates().chunks(CANCEL_WINDOW_SIZE).collect();
        let reduce_window =
            |window: &[Gate]| reduce_gates(dimension, width, window.iter().cloned());
        let reduced: Vec<Vec<Gate>> = match pool {
            Some(pool) => pool.map(windows, reduce_window),
            None => windows.into_iter().map(reduce_window).collect(),
        };
        // The boundary-straddling pairs only become adjacent now; one more
        // pass over the (already much shorter) survivors reduces fully.
        reduce_gates(dimension, width, reduced.into_iter().flatten())
    };

    let mut out = Circuit::new(dimension, width);
    for gate in survivors {
        out.push(gate)
            .expect("gates were valid in the input circuit");
    }
    out
}

/// Removes adjacent gate/inverse pairs from a circuit.
///
/// Two gates form a cancellable pair when the second is the exact inverse of
/// the first (same controls, same target, inverse operation) and no gate in
/// between touches any qudit of the pair.  Cancellation is applied
/// transitively: removing a pair can make an enclosing pair adjacent, which
/// is then removed as well.
///
/// The result implements exactly the same unitary as the input and contains
/// no further cancellable pair.  Circuits longer than [`CANCEL_WINDOW_SIZE`]
/// are reduced window-by-window (see the module docs); use
/// [`cancel_inverse_pairs_on`] to reduce the windows in parallel — both
/// functions return the identical circuit.
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_core::optimize::cancel_inverse_pairs;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(5)?;
/// // X+1 followed by X+2 is not an inverse pair: nothing is removed.
/// let mut circuit = Circuit::new(d, 1);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))?;
/// assert_eq!(cancel_inverse_pairs(&circuit).len(), 2);
///
/// // X+1 followed by X−1 (= X+4) cancels, leaving only the trailing X+2.
/// let mut circuit = Circuit::new(d, 1);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(4), QuditId::new(0)))?;
/// circuit.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))?;
/// assert_eq!(cancel_inverse_pairs(&circuit).len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn cancel_inverse_pairs(circuit: &Circuit) -> Circuit {
    cancel_windowed(circuit, None)
}

/// [`cancel_inverse_pairs`] with the window reductions fanned out over a
/// [`WorkStealingPool`].
///
/// The windows are fixed-size chunks of the gate list (they depend only on
/// the circuit, not on the worker count), so the result is byte-identical to
/// the sequential [`cancel_inverse_pairs`] for every pool size — callers may
/// switch between the two freely.
///
/// # Example
///
/// ```
/// # use qudit_core::pool::WorkStealingPool;
/// # use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_core::optimize::{cancel_inverse_pairs, cancel_inverse_pairs_on};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(5)?;
/// let mut circuit = Circuit::new(d, 2);
/// for i in 0..2000u32 {
///     circuit.push(Gate::single(SingleQuditOp::Add(1 + i % 3), QuditId::new(0)))?;
/// }
/// let pool = WorkStealingPool::with_threads(4);
/// assert_eq!(
///     cancel_inverse_pairs_on(&circuit, &pool),
///     cancel_inverse_pairs(&circuit),
/// );
/// # Ok(())
/// # }
/// ```
pub fn cancel_inverse_pairs_on(circuit: &Circuit, pool: &WorkStealingPool) -> Circuit {
    cancel_windowed(circuit, Some(pool))
}

/// Convenience statistic: the number of gates removed by
/// [`cancel_inverse_pairs`].
pub fn cancelled_gate_count(circuit: &Circuit) -> usize {
    circuit.len() - cancel_inverse_pairs(circuit).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::ops::SingleQuditOp;
    use crate::qudit::QuditId;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn assert_same_action(a: &Circuit, b: &Circuit) {
        let dimension = a.dimension();
        let d = dimension.as_usize();
        let width = a.width();
        let size = dimension.register_size(width);
        for mut index in 0..size {
            let mut digits = vec![0u32; width];
            for slot in digits.iter_mut().rev() {
                *slot = (index % d) as u32;
                index /= d;
            }
            assert_eq!(
                a.apply_to_basis(&digits).unwrap(),
                b.apply_to_basis(&digits).unwrap()
            );
        }
    }

    #[test]
    fn adjacent_involutions_cancel() {
        let d = dim(3);
        let mut c = Circuit::new(d, 2);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        c.push(gate.clone()).unwrap();
        c.push(gate).unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert!(optimized.is_empty());
        assert_eq!(cancelled_gate_count(&c), 2);
    }

    #[test]
    fn nested_pairs_cancel_transitively() {
        let d = dim(5);
        let mut c = Circuit::new(d, 1);
        // X+1, X+2, X−2, X−1 — cancels completely from the inside out.
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(3), QuditId::new(0)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(4), QuditId::new(0)))
            .unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert!(optimized.is_empty());
    }

    #[test]
    fn intervening_gates_block_cancellation() {
        let d = dim(3);
        let mut c = Circuit::new(d, 2);
        let swap = Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0));
        c.push(swap.clone()).unwrap();
        // A gate on the same qudit in between prevents the outer pair from
        // cancelling.
        c.push(Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        ))
        .unwrap();
        c.push(swap).unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert_eq!(optimized.len(), 3);
        assert_same_action(&c, &optimized);
    }

    #[test]
    fn gates_on_disjoint_qudits_do_not_block() {
        let d = dim(3);
        let mut c = Circuit::new(d, 3);
        let swap = Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(0));
        c.push(swap.clone()).unwrap();
        c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(2)))
            .unwrap();
        c.push(swap).unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert_eq!(optimized.len(), 1);
        assert_same_action(&c, &optimized);
    }

    #[test]
    fn controls_must_match_for_cancellation() {
        let d = dim(3);
        let mut c = Circuit::new(d, 2);
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        ))
        .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 1)],
        ))
        .unwrap();
        let optimized = cancel_inverse_pairs(&c);
        assert_eq!(optimized.len(), 2);
    }

    #[test]
    fn optimisation_preserves_semantics_on_a_mixed_circuit() {
        let d = dim(4);
        let mut c = Circuit::new(d, 3);
        let gates = vec![
            Gate::single(SingleQuditOp::Swap(0, 3), QuditId::new(0)),
            Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::odd(QuditId::new(0))],
            ),
            Gate::controlled(
                SingleQuditOp::Add(3),
                QuditId::new(1),
                vec![Control::odd(QuditId::new(0))],
            ),
            Gate::single(SingleQuditOp::Swap(0, 3), QuditId::new(0)),
            Gate::single(SingleQuditOp::ParityFlipEven, QuditId::new(2)),
        ];
        for gate in gates {
            c.push(gate).unwrap();
        }
        let optimized = cancel_inverse_pairs(&c);
        assert!(optimized.len() < c.len());
        assert_same_action(&c, &optimized);
    }

    /// A deterministic pseudo-random circuit that mixes cancelling and
    /// non-cancelling runs, long enough to span several windows.
    fn multi_window_circuit(gates: usize) -> Circuit {
        multi_window_circuit_seeded(gates, 0x2545_F491_4F6C_DD1D)
    }

    /// [`multi_window_circuit`] with a caller-chosen xorshift seed.
    fn multi_window_circuit_seeded(gates: usize, seed: u64) -> Circuit {
        let d = dim(3);
        let mut c = Circuit::new(d, 3);
        // xorshift needs a nonzero state; every other seed is used as-is so
        // the default stream (and the proptest's seed diversity) is kept.
        let mut state = if seed == 0 {
            0x2545_F491_4F6C_DD1D
        } else {
            seed
        };
        let mut pending: Vec<Gate> = Vec::new();
        while c.len() < gates {
            // xorshift* step.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let roll = (state.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize;
            let target = QuditId::new(roll % 3);
            let gate = match roll % 4 {
                0 => Gate::single(SingleQuditOp::Add(1), target),
                1 => Gate::single(SingleQuditOp::Swap(0, 2), target),
                2 => Gate::controlled(
                    SingleQuditOp::Add(2),
                    target,
                    vec![Control::zero(QuditId::new((target.index() + 1) % 3))],
                ),
                _ => {
                    // Close a previously opened gate with its inverse so the
                    // circuit actually contains distant cancellable pairs.
                    match pending.pop() {
                        Some(open) => open.inverse(d),
                        None => Gate::single(SingleQuditOp::Add(1), target),
                    }
                }
            };
            if roll % 4 != 3 && pending.len() < 8 {
                pending.push(gate.clone());
            }
            c.push(gate).unwrap();
        }
        c
    }

    #[test]
    fn windowed_reduction_is_a_fixed_point() {
        let c = multi_window_circuit(3 * CANCEL_WINDOW_SIZE + 100);
        let once = cancel_inverse_pairs(&c);
        assert!(once.len() < c.len(), "the workload must cancel something");
        let twice = cancel_inverse_pairs(&once);
        assert_eq!(once, twice, "reduction must reach a fixed point");
        assert_same_action(&c, &once);
    }

    #[test]
    fn parallel_windows_match_sequential_windows_exactly() {
        let c = multi_window_circuit(4 * CANCEL_WINDOW_SIZE);
        let sequential = cancel_inverse_pairs(&c);
        for threads in [1, 2, 4, 7] {
            let pool = WorkStealingPool::with_threads(threads);
            assert_eq!(
                cancel_inverse_pairs_on(&c, &pool),
                sequential,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn a_single_pair_straddling_the_window_boundary_cancels() {
        // Directed coverage of the stitch pass: the *only* cancellable pair
        // in the circuit sits exactly astride the first window boundary
        // (gates CANCEL_WINDOW_SIZE−1 and CANCEL_WINDOW_SIZE).  Neither
        // window can cancel it internally — only the final stitch pass over
        // the survivors can.
        let d = dim(5);
        let mut c = Circuit::new(d, 2);
        // Window 0 filler: non-cancelling (X+1 is not its own inverse in
        // d = 5) and on a different qudit than the pair.
        for _ in 0..CANCEL_WINDOW_SIZE - 1 {
            c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
                .unwrap();
        }
        // The pair: last gate of window 0, first gate of window 1.
        c.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(1)))
            .unwrap();
        c.push(Gate::single(SingleQuditOp::Add(3), QuditId::new(1)))
            .unwrap();
        // Window 1 filler.
        for _ in 0..CANCEL_WINDOW_SIZE / 2 {
            c.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
                .unwrap();
        }
        assert!(c.len() > CANCEL_WINDOW_SIZE, "the pair must straddle");

        let reduced = cancel_inverse_pairs(&c);
        assert_eq!(
            reduced.len(),
            c.len() - 2,
            "exactly the straddling pair must cancel"
        );
        assert!(reduced
            .gates()
            .iter()
            .all(|g| g.target() == QuditId::new(0)));
        // The parallel windows agree, and the result matches the
        // single-sweep reference.
        let pool = WorkStealingPool::with_threads(4);
        assert_eq!(cancel_inverse_pairs_on(&c, &pool), reduced);
        let mut single_sweep = Circuit::new(d, 2);
        for gate in reduce_gates(d, 2, c.gates().iter().cloned()) {
            single_sweep.push(gate).unwrap();
        }
        assert_eq!(reduced, single_sweep);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Windowed == single-sweep for random circuits sized exactly at
        /// window multiples ±1 — the sizes where an off-by-one in the
        /// chunking would silently change which pairs become adjacent.
        #[test]
        fn windowed_reduction_matches_single_sweep_at_window_multiples(
            seed in any::<u64>(),
            multiple in 1usize..=3,
            delta_roll in 0usize..=2,
        ) {
            let delta = delta_roll as isize - 1; // −1, 0, +1 around the multiple
            let gates = (multiple * CANCEL_WINDOW_SIZE).saturating_add_signed(delta);
            let c = multi_window_circuit_seeded(gates, seed);
            prop_assert_eq!(c.len(), gates);
            let windowed = cancel_inverse_pairs(&c);
            let mut single_sweep = Circuit::new(c.dimension(), c.width());
            for gate in reduce_gates(c.dimension(), c.width(), c.gates().iter().cloned()) {
                single_sweep.push(gate).unwrap();
            }
            prop_assert_eq!(
                &windowed, &single_sweep,
                "windowed and single-sweep reductions diverge at \
                 {} windows {:+} (seed {:#x}): {} vs {} gates",
                multiple, delta, seed, windowed.len(), single_sweep.len()
            );
        }
    }

    #[test]
    fn boundary_straddling_pairs_cancel_across_windows() {
        // A palindrome of non-self-inverse gates longer than a window: every
        // pair straddles the midpoint, and full cancellation requires the
        // stitch pass to work across window boundaries.
        let d = dim(5);
        let mut c = Circuit::new(d, 2);
        let half = CANCEL_WINDOW_SIZE;
        let forward: Vec<Gate> = (0..half)
            .map(|i| Gate::single(SingleQuditOp::Add(1 + (i as u32) % 3), QuditId::new(i % 2)))
            .collect();
        for gate in &forward {
            c.push(gate.clone()).unwrap();
        }
        for gate in forward.iter().rev() {
            c.push(gate.inverse(d)).unwrap();
        }
        assert_eq!(c.len(), 2 * half);
        assert!(cancel_inverse_pairs(&c).is_empty());
        let pool = WorkStealingPool::with_threads(4);
        assert!(cancel_inverse_pairs_on(&c, &pool).is_empty());
    }
}
