//! Qudit circuits: ordered lists of gates over a register of fixed width.

use std::fmt;

use crate::dimension::Dimension;
use crate::error::{QuditError, Result};
use crate::gate::Gate;
use crate::qudit::QuditId;

/// A quantum circuit over `width` qudits of dimension `d`.
///
/// Gates are stored in time order: the first gate in the list is applied
/// first.
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
/// assert_eq!(circuit.len(), 1);
/// assert_eq!(circuit.apply_to_basis(&[0, 0])?, vec![0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    dimension: Dimension,
    width: usize,
    gates: Vec<Gate>,
    /// The register name the circuit was parsed with, when it came from the
    /// text IR (see [`crate::qasm`]).  Presentation metadata only: excluded
    /// from equality so a parsed circuit still compares equal to the same
    /// circuit built programmatically.
    register_name: Option<String>,
}

/// Equality ignores [`Circuit::register_name`]: it is presentation
/// metadata, not part of the circuit's semantics.
impl PartialEq for Circuit {
    fn eq(&self, other: &Self) -> bool {
        self.dimension == other.dimension && self.width == other.width && self.gates == other.gates
    }
}

impl Circuit {
    /// Creates an empty circuit with the given qudit dimension and width.
    pub fn new(dimension: Dimension, width: usize) -> Self {
        Circuit {
            dimension,
            width,
            gates: Vec::new(),
            register_name: None,
        }
    }

    /// The register name the circuit carries for text-IR printing, when it
    /// has one (set by the QASM lowering, `None` for programmatically built
    /// circuits, which print as the canonical register `q`).
    pub fn register_name(&self) -> Option<&str> {
        self.register_name.as_deref()
    }

    /// Sets the register name used when printing the circuit as text IR.
    pub fn set_register_name(&mut self, name: impl Into<String>) {
        self.register_name = Some(name.into());
    }

    /// The qudit dimension `d`.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of qudits (wires).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The gates in time order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` when the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Iterates over the gates in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a gate after validating it.
    ///
    /// # Errors
    ///
    /// Returns an error when the gate is invalid for this circuit (see
    /// [`Gate::validate`]).
    pub fn push(&mut self, gate: Gate) -> Result<()> {
        gate.validate(self.dimension, self.width)?;
        self.gates.push(gate);
        Ok(())
    }

    /// Appends all gates of `other`.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuits have different dimensions or
    /// `other` is wider than `self`.
    pub fn append(&mut self, other: &Circuit) -> Result<()> {
        if other.dimension != self.dimension {
            return Err(QuditError::IncompatibleCircuits {
                reason: format!(
                    "dimensions differ ({} vs {})",
                    self.dimension, other.dimension
                ),
            });
        }
        if other.width > self.width {
            return Err(QuditError::IncompatibleCircuits {
                reason: format!("width {} exceeds target width {}", other.width, self.width),
            });
        }
        for gate in &other.gates {
            // Gates were already validated for `other`; widths are compatible.
            self.gates.push(gate.clone());
        }
        Ok(())
    }

    /// Appends gates from an iterator, validating each one.
    ///
    /// # Errors
    ///
    /// Returns the first validation error encountered.
    pub fn extend_gates<I: IntoIterator<Item = Gate>>(&mut self, gates: I) -> Result<()> {
        for gate in gates {
            self.push(gate)?;
        }
        Ok(())
    }

    /// Returns the inverse circuit (each gate inverted, in reverse order).
    pub fn inverse(&self) -> Circuit {
        let gates = self
            .gates
            .iter()
            .rev()
            .map(|g| g.inverse(self.dimension))
            .collect();
        Circuit {
            dimension: self.dimension,
            width: self.width,
            gates,
            register_name: self.register_name.clone(),
        }
    }

    /// Returns a copy of the circuit embedded in a wider register.
    ///
    /// # Errors
    ///
    /// Returns an error when `width` is smaller than the current width.
    pub fn widened(&self, width: usize) -> Result<Circuit> {
        if width < self.width {
            return Err(QuditError::IncompatibleCircuits {
                reason: format!("cannot shrink width from {} to {}", self.width, width),
            });
        }
        Ok(Circuit {
            dimension: self.dimension,
            width,
            gates: self.gates.clone(),
            register_name: self.register_name.clone(),
        })
    }

    /// Applies a classical circuit to a computational basis state.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NotClassical`] when the circuit contains a
    /// non-permutation gate, and [`QuditError::QuditOutOfRange`] when the
    /// input has the wrong length.
    pub fn apply_to_basis(&self, digits: &[u32]) -> Result<Vec<u32>> {
        if digits.len() != self.width {
            return Err(QuditError::QuditOutOfRange {
                qudit: digits.len(),
                width: self.width,
            });
        }
        for (i, &v) in digits.iter().enumerate() {
            if v >= self.dimension.get() {
                return Err(QuditError::LevelOutOfRange {
                    level: v,
                    dimension: self.dimension.get(),
                });
            }
            let _ = i;
        }
        let mut state = digits.to_vec();
        for gate in &self.gates {
            gate.apply_to_basis(&mut state, self.dimension)?;
        }
        Ok(state)
    }

    /// Returns `true` when every gate permutes the computational basis.
    pub fn is_classical(&self) -> bool {
        self.gates.iter().all(Gate::is_classical)
    }

    /// Counts gates by the number of qudits they touch.
    ///
    /// The result maps arity (1, 2, 3, …) to the number of gates with that
    /// arity; useful for reporting "two-qudit gate" counts.
    pub fn arity_histogram(&self) -> Vec<(usize, usize)> {
        let mut counts: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for gate in &self.gates {
            *counts.entry(gate.arity()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Number of gates acting on exactly two qudits.
    pub fn two_qudit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.arity() == 2).count()
    }

    /// Number of gates that are elementary G-gates.
    pub fn g_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_g_gate()).count()
    }

    /// The largest number of controls on any gate (0 for an empty circuit).
    pub fn max_controls(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.controls().len())
            .max()
            .unwrap_or(0)
    }

    /// Returns the qudits that are touched by at least one gate.
    pub fn used_qudits(&self) -> Vec<QuditId> {
        let mut used = vec![false; self.width];
        for gate in &self.gates {
            for q in gate.qudits() {
                used[q.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(i, &u)| if u { Some(QuditId::new(i)) } else { None })
            .collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit: d={}, width={}, gates={}",
            self.dimension,
            self.width,
            self.gates.len()
        )?;
        for (i, gate) in self.gates.iter().enumerate() {
            writeln!(f, "  {i:4}: {gate}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::ops::SingleQuditOp;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn toffoli_like(d: Dimension) -> Circuit {
        let mut c = Circuit::new(d, 3);
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(2),
            vec![
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
            ],
        ))
        .unwrap();
        c
    }

    #[test]
    fn push_validates_gates() {
        let mut c = Circuit::new(dim(3), 2);
        let bad = Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(5));
        assert!(c.push(bad).is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn append_checks_compatibility() {
        let mut a = Circuit::new(dim(3), 3);
        let b = Circuit::new(dim(4), 3);
        assert!(a.append(&b).is_err());
        let narrow = Circuit::new(dim(3), 2);
        assert!(a.append(&narrow).is_ok());
        let wide = Circuit::new(dim(3), 4);
        assert!(a.append(&wide).is_err());
    }

    #[test]
    fn inverse_undoes_classical_circuit() {
        let d = dim(5);
        let mut c = Circuit::new(d, 2);
        c.push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))
            .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Add(3),
            QuditId::new(1),
            vec![Control::odd(QuditId::new(0))],
        ))
        .unwrap();
        let inv = c.inverse();
        for a in 0..5 {
            for b in 0..5 {
                let forward = c.apply_to_basis(&[a, b]).unwrap();
                let back = inv.apply_to_basis(&forward).unwrap();
                assert_eq!(back, vec![a, b]);
            }
        }
    }

    #[test]
    fn apply_to_basis_validates_input() {
        let c = toffoli_like(dim(3));
        assert!(c.apply_to_basis(&[0, 0]).is_err());
        assert!(c.apply_to_basis(&[0, 0, 7]).is_err());
        assert_eq!(c.apply_to_basis(&[0, 0, 0]).unwrap(), vec![0, 0, 1]);
        assert_eq!(c.apply_to_basis(&[1, 0, 0]).unwrap(), vec![1, 0, 0]);
    }

    #[test]
    fn counting_helpers() {
        let d = dim(4);
        let mut c = Circuit::new(d, 4);
        c.push(Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0)))
            .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        ))
        .unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 2),
            QuditId::new(2),
            vec![
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
            ],
        ))
        .unwrap();
        assert_eq!(c.two_qudit_gate_count(), 1);
        assert_eq!(c.g_gate_count(), 2);
        assert_eq!(c.max_controls(), 2);
        assert_eq!(c.arity_histogram(), vec![(1, 1), (2, 1), (3, 1)]);
        assert_eq!(c.used_qudits().len(), 3);
    }

    #[test]
    fn register_name_is_metadata_not_semantics() {
        let mut named = toffoli_like(dim(3));
        named.set_register_name("work");
        let anonymous = toffoli_like(dim(3));
        // Equality ignores the name…
        assert_eq!(named, anonymous);
        // …but derived circuits keep it.
        assert_eq!(named.inverse().register_name(), Some("work"));
        assert_eq!(named.widened(5).unwrap().register_name(), Some("work"));
        assert_eq!(anonymous.register_name(), None);
    }

    #[test]
    fn widening_preserves_gates() {
        let c = toffoli_like(dim(3));
        let wide = c.widened(5).unwrap();
        assert_eq!(wide.width(), 5);
        assert_eq!(wide.len(), c.len());
        assert!(c.widened(2).is_err());
    }
}
