//! Connectivity routing: rewrite circuits so every multi-qudit gate acts on
//! adjacent sites of a [`CouplingGraph`], with cost models driving the
//! router's choices.
//!
//! The synthesis pipeline lowers everything to gates touching at most two
//! qudits (`Xij`, `|0⟩-X01`, `X±⋆`), but those gates land on *logical* wire
//! pairs with no regard for device connectivity.  This module closes the
//! gap:
//!
//! * [`CostModel`] — how expensive a gate is.  [`UniformCost`] counts gates;
//!   [`NoiseAwareCost`] weighs per-gate-kind error rates with a two-qudit
//!   penalty, the weighted objective real devices optimise;
//! * [`wire_swap`] — an exact wire-SWAP for *any* dimension built from the
//!   classical gate set: three value-controlled shifts plus one level
//!   negation ([`SWAP_LADDER_GATES`] = 4 gates);
//! * [`Router`] / [`route_circuit`] — greedy distance-minimising initial
//!   placement plus a lookahead SWAP-ladder router.  The result
//!   ([`Routed`]) carries the routed circuit and the final
//!   logical→physical permutation; [`Routed::with_epilogue`] appends the
//!   inverse-permutation SWAP ladders, making the routed circuit *strictly*
//!   equivalent to the original embedded in the physical register;
//! * [`validate_adjacency`] — the adjacency-invariant checker the test
//!   suites enforce on every routed circuit;
//! * [`RoutePass`] — the `"route"` pipeline stage (placement + routing +
//!   epilogue, so the stage is semantics-preserving and verifies under
//!   `VerifyEquivalence` on every backend);
//! * [`route_batch`] — fans independent routing jobs over a
//!   [`WorkStealingPool`].
//!
//! # The SWAP ladder
//!
//! No native two-qudit SWAP exists in the gate set, but on wires `(a, b)`
//! the classical sequence
//!
//! ```text
//! b += a;  a -= b;  b += a;  a ← −a (mod d)
//! ```
//!
//! maps `(x, y) ↦ (y, x)` exactly for every dimension `d` — each step is a
//! classical permutation gate, so ladders stay classical (and Clifford),
//! keeping every verification backend applicable to routed circuits.
//!
//! # Example
//!
//! ```
//! use qudit_core::route::{route_circuit, validate_adjacency, UniformCost};
//! use qudit_core::topology::CouplingGraph;
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut circuit = Circuit::new(d, 4);
//! // |0⟩@q0-X01 on q3: the endpoints are 3 apart on a linear chain.
//! circuit.push(Gate::controlled(
//!     SingleQuditOp::Swap(0, 1),
//!     QuditId::new(3),
//!     vec![Control::zero(QuditId::new(0))],
//! ))?;
//! let graph = CouplingGraph::linear(4)?;
//! let routed = route_circuit(&circuit, &graph, &UniformCost)?;
//! validate_adjacency(&routed.circuit, &graph)?;
//! // Strict equivalence once the inverse-permutation epilogue is appended.
//! let full = routed.with_epilogue(&graph)?;
//! for state in 0..81u32 {
//!     let digits: Vec<u32> = (0..4).rev().map(|i| (state / 3u32.pow(i)) % 3).collect();
//!     assert_eq!(circuit.apply_to_basis(&digits)?, full.apply_to_basis(&digits)?);
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};

use crate::circuit::Circuit;
use crate::dimension::Dimension;
use crate::error::{QuditError, Result};
use crate::gate::{Gate, GateOp};
use crate::ops::{Permutation, SingleQuditOp};
use crate::pipeline::{Pass, PassContext};
use crate::pool::WorkStealingPool;
use crate::qudit::QuditId;
use crate::topology::CouplingGraph;

/// Number of elementary gates in one wire-SWAP ladder (see [`wire_swap`]).
pub const SWAP_LADDER_GATES: usize = 4;

/// How many upcoming two-qudit gates the router scores candidate swaps
/// against (exponentially decayed).
const DEFAULT_LOOKAHEAD: usize = 8;

/// Decay applied per position in the lookahead window.
const LOOKAHEAD_DECAY: f64 = 0.5;

/// A gate-cost objective the router minimises and reports.
///
/// Implementations must be cheap: [`CostModel::gate_cost`] runs inside the
/// router's candidate scoring loop.
pub trait CostModel: Send + Sync {
    /// A short, stable name used in reports.
    fn name(&self) -> &str;

    /// The cost of one gate.
    fn gate_cost(&self, gate: &Gate) -> f64;

    /// The summed cost of a circuit.
    fn circuit_cost(&self, circuit: &Circuit) -> f64 {
        circuit.gates().iter().map(|g| self.gate_cost(g)).sum()
    }
}

/// The trivial cost model: every gate costs 1, so the objective is the gate
/// count of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniformCost;

impl CostModel for UniformCost {
    fn name(&self) -> &str {
        "uniform"
    }

    fn gate_cost(&self, _gate: &Gate) -> f64 {
        1.0
    }
}

/// A noise-aware cost model: per-gate-kind error weights, multiplied by a
/// penalty whenever the gate touches two or more qudits (two-qudit
/// interactions dominate error budgets on every current platform).
///
/// The defaults are deliberately round relative weights, not calibration
/// data; construct with struct-update syntax to match a device:
///
/// ```
/// use qudit_core::route::NoiseAwareCost;
/// let device = NoiseAwareCost { two_qudit_penalty: 25.0, ..NoiseAwareCost::default() };
/// assert!(device.two_qudit_penalty > NoiseAwareCost::default().two_qudit_penalty);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseAwareCost {
    /// Weight of a level transposition `Xij`.
    pub swap_weight: f64,
    /// Weight of a cyclic shift `X+y`.
    pub add_weight: f64,
    /// Weight of the parity flips `X_eo^e` / `X_eo^o`.
    pub parity_weight: f64,
    /// Weight of a general level permutation.
    pub perm_weight: f64,
    /// Weight of a general single-qudit unitary.
    pub unitary_weight: f64,
    /// Weight of the value-controlled shift `X±⋆`.
    pub add_from_weight: f64,
    /// Multiplier applied when a gate touches two or more qudits.
    pub two_qudit_penalty: f64,
}

impl Default for NoiseAwareCost {
    fn default() -> Self {
        NoiseAwareCost {
            swap_weight: 1.0,
            add_weight: 1.0,
            parity_weight: 1.2,
            perm_weight: 1.5,
            unitary_weight: 2.0,
            add_from_weight: 1.5,
            two_qudit_penalty: 10.0,
        }
    }
}

impl CostModel for NoiseAwareCost {
    fn name(&self) -> &str {
        "noise-aware"
    }

    fn gate_cost(&self, gate: &Gate) -> f64 {
        let base = match gate.op() {
            GateOp::Single(SingleQuditOp::Swap(_, _)) => self.swap_weight,
            GateOp::Single(SingleQuditOp::Add(_)) => self.add_weight,
            GateOp::Single(SingleQuditOp::ParityFlipEven | SingleQuditOp::ParityFlipOdd) => {
                self.parity_weight
            }
            GateOp::Single(SingleQuditOp::Perm(_)) => self.perm_weight,
            GateOp::Single(SingleQuditOp::Unitary(_)) => self.unitary_weight,
            GateOp::AddFrom { .. } => self.add_from_weight,
        };
        if gate.arity() >= 2 {
            base * self.two_qudit_penalty
        } else {
            base
        }
    }
}

/// The four-gate wire-SWAP ladder exchanging the values of wires `a` and
/// `b` (exact for every dimension; see the module docs).
///
/// # Panics
///
/// Panics when `a == b`.
pub fn wire_swap(dimension: Dimension, a: usize, b: usize) -> Vec<Gate> {
    assert_ne!(a, b, "wire-SWAP endpoints must differ");
    let (qa, qb) = (QuditId::new(a), QuditId::new(b));
    let d = dimension.get();
    let negate = Permutation::from_map((0..d).map(|l| (d - l) % d).collect())
        .expect("level negation is a bijection");
    vec![
        Gate::add_from(qa, false, qb, vec![]),
        Gate::add_from(qb, true, qa, vec![]),
        Gate::add_from(qa, false, qb, vec![]),
        Gate::single(SingleQuditOp::Perm(negate), qa),
    ]
}

/// Checks the adjacency invariant: every gate touching two qudits acts on a
/// coupled pair, and no gate touches three or more.
///
/// # Errors
///
/// * [`QuditError::TopologyTooSmall`] when the circuit is wider than the
///   graph;
/// * [`QuditError::UnsupportedLowering`] for a gate of arity ≥ 3 (route
///   after lowering);
/// * [`QuditError::UncoupledGate`] naming the first violating gate.
pub fn validate_adjacency(circuit: &Circuit, graph: &CouplingGraph) -> Result<()> {
    if circuit.width() > graph.sites() {
        return Err(QuditError::TopologyTooSmall {
            sites: graph.sites(),
            minimum: circuit.width(),
        });
    }
    for (index, gate) in circuit.gates().iter().enumerate() {
        let qudits = gate.qudits();
        match qudits.len() {
            0 | 1 => {}
            2 => {
                let (a, b) = (qudits[0].index(), qudits[1].index());
                if !graph.are_coupled(a, b) {
                    return Err(QuditError::UncoupledGate {
                        gate: index,
                        a: a.min(b),
                        b: a.max(b),
                    });
                }
            }
            arity => {
                return Err(QuditError::UnsupportedLowering {
                    reason: format!(
                        "gate {index} touches {arity} qudits; \
                         lower to two-qudit gates before routing"
                    ),
                })
            }
        }
    }
    Ok(())
}

/// The result of routing a circuit onto a coupling graph.
#[derive(Debug, Clone)]
pub struct Routed {
    /// The routed circuit over the graph's full site register.  Every
    /// multi-qudit gate acts on a coupled pair
    /// ([`validate_adjacency`]-clean); relative to the original embedded in
    /// the physical register it computes the same function *followed by*
    /// the wire permutation [`Routed::final_placement`].
    pub circuit: Circuit,
    /// Logical→physical placement after the greedy-placement prologue
    /// (identity when the placement strategy chose not to move anything).
    pub initial_placement: Vec<usize>,
    /// Final logical→physical permutation: the value that started on wire
    /// `l` ends on site `final_placement[l]`.
    pub final_placement: Vec<usize>,
    /// Number of wire-SWAP ladders inserted (each [`SWAP_LADDER_GATES`]
    /// gates), including the placement prologue.
    pub swap_count: usize,
}

impl Routed {
    /// Returns `true` when routing left the circuit untouched (already
    /// adjacency-valid, identity permutation, zero swaps).
    pub fn is_trivial(&self) -> bool {
        self.swap_count == 0
            && self
                .final_placement
                .iter()
                .enumerate()
                .all(|(l, &p)| l == p)
    }

    /// The routed circuit with the inverse-permutation SWAP epilogue
    /// appended, undoing [`Routed::final_placement`] so the result is
    /// strictly equivalent to the original circuit embedded in the physical
    /// register (`original.widened(graph.sites())`).
    ///
    /// # Errors
    ///
    /// Returns an error when `graph` does not match the routed circuit's
    /// register.
    pub fn with_epilogue(&self, graph: &CouplingGraph) -> Result<Circuit> {
        if graph.sites() != self.circuit.width() {
            return Err(QuditError::TopologyTooSmall {
                sites: graph.sites(),
                minimum: self.circuit.width(),
            });
        }
        let mut out = self.circuit.clone();
        let mut placement = Placement::from_map(&self.final_placement);
        let identity: Vec<usize> = (0..graph.sites()).collect();
        drive_to_placement(&mut out, graph, &mut placement, &identity);
        Ok(out)
    }
}

/// Tracks where each logical wire currently lives (and which wire occupies
/// each site).
struct Placement {
    /// `site_of[wire]` — the physical site currently holding the wire.
    site_of: Vec<usize>,
    /// `wire_at[site]` — the wire currently held by the site.
    wire_at: Vec<usize>,
}

impl Placement {
    fn identity(sites: usize) -> Self {
        Placement {
            site_of: (0..sites).collect(),
            wire_at: (0..sites).collect(),
        }
    }

    fn from_map(site_of: &[usize]) -> Self {
        let mut wire_at = vec![0; site_of.len()];
        for (wire, &site) in site_of.iter().enumerate() {
            wire_at[site] = wire;
        }
        Placement {
            site_of: site_of.to_vec(),
            wire_at,
        }
    }

    /// Records that the values at two sites were exchanged.
    fn swap_sites(&mut self, a: usize, b: usize) {
        self.wire_at.swap(a, b);
        self.site_of[self.wire_at[a]] = a;
        self.site_of[self.wire_at[b]] = b;
    }
}

/// A breadth-first site order from site 0; every prefix of the order is a
/// connected subgraph, which is what makes the token routing below safe.
fn bfs_order(graph: &CouplingGraph) -> Vec<usize> {
    let mut order = Vec::with_capacity(graph.sites());
    let mut seen = vec![false; graph.sites()];
    let mut queue = VecDeque::new();
    queue.push_back(0);
    seen[0] = true;
    while let Some(site) = queue.pop_front() {
        order.push(site);
        for &next in graph.neighbors(site) {
            if !seen[next] {
                seen[next] = true;
                queue.push_back(next);
            }
        }
    }
    order
}

/// A shortest path from `from` to `to` staying inside the `allowed` sites
/// (deterministic: sorted neighbour lists, first-found parents).
fn bfs_path_within(graph: &CouplingGraph, allowed: &[bool], from: usize, to: usize) -> Vec<usize> {
    let mut parent = vec![usize::MAX; graph.sites()];
    let mut queue = VecDeque::new();
    parent[from] = from;
    queue.push_back(from);
    while let Some(site) = queue.pop_front() {
        if site == to {
            break;
        }
        for &next in graph.neighbors(site) {
            if allowed[next] && parent[next] == usize::MAX {
                parent[next] = site;
                queue.push_back(next);
            }
        }
    }
    assert_ne!(
        parent[to],
        usize::MAX,
        "token routing region stays connected"
    );
    let mut path = vec![to];
    let mut current = to;
    while current != from {
        current = parent[current];
        path.push(current);
    }
    path.reverse();
    path
}

/// Emits wire-SWAP ladders until the placement matches `target` (a full
/// wire→site bijection).  Sites are finalised deepest-BFS-first, and each
/// token walks only through not-yet-finalised sites — every prefix of the
/// BFS order is connected, so a path always exists.  Returns the number of
/// ladders emitted.
fn drive_to_placement(
    out: &mut Circuit,
    graph: &CouplingGraph,
    placement: &mut Placement,
    target: &[usize],
) -> usize {
    let sites = graph.sites();
    let dimension = out.dimension();
    let mut target_wire_at = vec![0; sites];
    for (wire, &site) in target.iter().enumerate() {
        target_wire_at[site] = wire;
    }
    let order = bfs_order(graph);
    let mut allowed = vec![true; sites];
    let mut swaps = 0;
    for &site in order.iter().skip(1).rev() {
        let wire = target_wire_at[site];
        let current = placement.site_of[wire];
        if current != site {
            let path = bfs_path_within(graph, &allowed, current, site);
            for step in path.windows(2) {
                for gate in wire_swap(dimension, step[0], step[1]) {
                    out.push(gate).expect("ladder gates are valid");
                }
                placement.swap_sites(step[0], step[1]);
                swaps += 1;
            }
        }
        allowed[site] = false;
    }
    swaps
}

/// Greedy distance-minimising placement: wires are ordered by how much they
/// interact, the busiest seeds the graph's [`center`](CouplingGraph::center),
/// and each following wire takes the free site minimising its
/// interaction-weighted distance to its already-placed partners.
/// Non-interacting wires keep their own site when free, so circuits without
/// two-qudit gates place identically.  Returns a full wire→site bijection.
fn greedy_placement(circuit: &Circuit, graph: &CouplingGraph) -> Vec<usize> {
    let sites = graph.sites();
    let mut pair_weight: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut wire_weight = vec![0.0f64; sites];
    for gate in circuit.gates() {
        let qudits = gate.qudits();
        if qudits.len() == 2 {
            let (a, b) = (qudits[0].index(), qudits[1].index());
            *pair_weight.entry((a.min(b), a.max(b))).or_insert(0.0) += 1.0;
            wire_weight[a] += 1.0;
            wire_weight[b] += 1.0;
        }
    }
    let mut interacting: Vec<usize> = (0..sites).filter(|&l| wire_weight[l] > 0.0).collect();
    interacting.sort_by(|&a, &b| {
        wire_weight[b]
            .partial_cmp(&wire_weight[a])
            .expect("weights are finite")
            .then(a.cmp(&b))
    });

    let mut site_of = vec![usize::MAX; sites];
    let mut used = vec![false; sites];
    let free_site_near = |anchor: usize, used: &[bool]| -> usize {
        (0..sites)
            .filter(|&s| !used[s])
            .min_by_key(|&s| (graph.distance(anchor, s), s))
            .expect("a free site always remains")
    };
    for &wire in &interacting {
        let placed_partners: Vec<(usize, f64)> = pair_weight
            .iter()
            .filter_map(|(&(a, b), &w)| {
                let partner = if a == wire {
                    b
                } else if b == wire {
                    a
                } else {
                    return None;
                };
                (site_of[partner] != usize::MAX).then_some((site_of[partner], w))
            })
            .collect();
        let site = if placed_partners.is_empty() {
            free_site_near(graph.center(), &used)
        } else {
            (0..sites)
                .filter(|&s| !used[s])
                .min_by(|&x, &y| {
                    let score = |s: usize| -> f64 {
                        placed_partners
                            .iter()
                            .map(|&(p, w)| w * graph.distance(s, p) as f64)
                            .sum()
                    };
                    score(x)
                        .partial_cmp(&score(y))
                        .expect("scores are finite")
                        .then(x.cmp(&y))
                })
                .expect("a free site always remains")
        };
        site_of[wire] = site;
        used[site] = true;
    }
    // Everything else (idle real wires and filler wires padding the circuit
    // out to the graph) stays put when possible.
    for wire in 0..sites {
        if site_of[wire] != usize::MAX {
            continue;
        }
        let site = if used[wire] {
            free_site_near(wire, &used)
        } else {
            wire
        };
        site_of[wire] = site;
        used[site] = true;
    }
    site_of
}

/// The SWAP-ladder router over a [`CouplingGraph`].
///
/// See [`route_circuit`] for the one-call entry point and the module docs
/// for the algorithm; [`Router::with_lookahead`] and
/// [`Router::with_identity_placement`] tune it.
pub struct Router<'a> {
    graph: &'a CouplingGraph,
    cost: &'a dyn CostModel,
    lookahead: usize,
    greedy: bool,
}

impl<'a> Router<'a> {
    /// A router with the default lookahead window and greedy initial
    /// placement.
    pub fn new(graph: &'a CouplingGraph, cost: &'a dyn CostModel) -> Self {
        Router {
            graph,
            cost,
            lookahead: DEFAULT_LOOKAHEAD,
            greedy: true,
        }
    }

    /// Sets how many upcoming two-qudit gates candidate swaps are scored
    /// against (0 disables lookahead).
    #[must_use]
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// Skips the greedy-placement prologue and starts from the identity
    /// placement.
    #[must_use]
    pub fn with_identity_placement(mut self) -> Self {
        self.greedy = false;
        self
    }

    /// Routes a circuit onto the graph.
    ///
    /// A circuit that already satisfies the adjacency invariant on the full
    /// site register is returned unchanged (identity permutation, zero
    /// swaps), which makes routing idempotent.
    ///
    /// # Errors
    ///
    /// * [`QuditError::TopologyTooSmall`] when the circuit is wider than the
    ///   graph;
    /// * [`QuditError::UnsupportedLowering`] for gates of arity ≥ 3.
    pub fn route(&self, circuit: &Circuit) -> Result<Routed> {
        let sites = self.graph.sites();
        if circuit.width() > sites {
            return Err(QuditError::TopologyTooSmall {
                sites,
                minimum: circuit.width(),
            });
        }
        for (index, gate) in circuit.gates().iter().enumerate() {
            if gate.arity() > 2 {
                return Err(QuditError::UnsupportedLowering {
                    reason: format!(
                        "gate {index} touches {} qudits; lower to two-qudit gates before routing",
                        gate.arity()
                    ),
                });
            }
        }
        // Already-routed circuits are fixpoints: no placement, no swaps.
        if circuit.width() == sites && validate_adjacency(circuit, self.graph).is_ok() {
            let identity: Vec<usize> = (0..sites).collect();
            return Ok(Routed {
                circuit: circuit.clone(),
                initial_placement: identity.clone(),
                final_placement: identity,
                swap_count: 0,
            });
        }

        let embedded = circuit.widened(sites)?;
        let dimension = embedded.dimension();
        let mut out = Circuit::new(dimension, sites);
        let mut placement = Placement::identity(sites);
        let mut swaps = 0;

        if self.greedy {
            let target = greedy_placement(&embedded, self.graph);
            swaps += drive_to_placement(&mut out, self.graph, &mut placement, &target);
        }
        let initial_placement = placement.site_of.clone();

        // The wire pairs of every upcoming two-qudit gate, for lookahead.
        let pairs: Vec<Option<(usize, usize)>> = embedded
            .gates()
            .iter()
            .map(|gate| {
                let qudits = gate.qudits();
                (qudits.len() == 2).then(|| (qudits[0].index(), qudits[1].index()))
            })
            .collect();

        for (index, gate) in embedded.gates().iter().enumerate() {
            if let Some((l1, l2)) = pairs[index] {
                loop {
                    let (a, b) = (placement.site_of[l1], placement.site_of[l2]);
                    if self.graph.are_coupled(a, b) {
                        break;
                    }
                    let edge = self.pick_swap(&placement, (l1, l2), &pairs[index + 1..]);
                    for ladder_gate in wire_swap(dimension, edge.0, edge.1) {
                        out.push(ladder_gate).expect("ladder gates are valid");
                    }
                    placement.swap_sites(edge.0, edge.1);
                    swaps += 1;
                }
            }
            out.push(gate.map_qudits(|q| QuditId::new(placement.site_of[q.index()])))
                .expect("remapped gates stay valid on the site register");
        }

        Ok(Routed {
            circuit: out,
            initial_placement,
            final_placement: placement.site_of.clone(),
            swap_count: swaps,
        })
    }

    /// Picks the swap edge for the current non-adjacent gate: among the
    /// edges touching either endpoint that strictly shorten the current
    /// gate's distance (so the router always terminates), the one with the
    /// best decayed lookahead score over the upcoming two-qudit gates; ties
    /// break on the candidate ladder's weighted cost, then on the edge
    /// itself.
    fn pick_swap(
        &self,
        placement: &Placement,
        current: (usize, usize),
        upcoming: &[Option<(usize, usize)>],
    ) -> (usize, usize) {
        let (a, b) = (placement.site_of[current.0], placement.site_of[current.1]);
        let distance_now = self.graph.distance(a, b);
        let dimension_probe = Dimension::new(2).expect("2 is a valid dimension");
        let mut best: Option<((usize, usize), f64, f64)> = None;
        for &u in &[a, b] {
            for &v in self.graph.neighbors(u) {
                let moved = |site: usize| -> usize {
                    if site == u {
                        v
                    } else if site == v {
                        u
                    } else {
                        site
                    }
                };
                let after = self.graph.distance(moved(a), moved(b));
                if after >= distance_now {
                    continue;
                }
                let mut score = after as f64;
                let mut decay = 1.0;
                for pair in upcoming.iter().flatten().take(self.lookahead) {
                    decay *= LOOKAHEAD_DECAY;
                    let (s1, s2) = (placement.site_of[pair.0], placement.site_of[pair.1]);
                    score += decay * self.graph.distance(moved(s1), moved(s2)) as f64;
                }
                // The candidate ladder's weighted cost; with per-gate-kind
                // weights this is edge-independent, but it keeps the tie
                // order under the configured objective.
                let ladder_cost: f64 = wire_swap(dimension_probe, u, v)
                    .iter()
                    .map(|g| self.cost.gate_cost(g))
                    .sum();
                let candidate = ((u.min(v), u.max(v)), score, ladder_cost);
                let better = match &best {
                    None => true,
                    Some((edge, s, c)) => (score, ladder_cost, candidate.0) < (*s, *c, *edge),
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        best.expect("a neighbour along a shortest path always shortens the distance")
            .0
    }
}

/// Routes `circuit` onto `graph` with the default [`Router`] (greedy
/// placement, lookahead 8); see [`Router::route`].
///
/// # Errors
///
/// Propagates [`Router::route`]'s errors.
pub fn route_circuit(
    circuit: &Circuit,
    graph: &CouplingGraph,
    cost: &dyn CostModel,
) -> Result<Routed> {
    Router::new(graph, cost).route(circuit)
}

/// Routes a batch of circuits, fanning the independent jobs over a
/// [`WorkStealingPool`] when one is provided (results keep input order and
/// are identical to the sequential ones for every pool width).
///
/// # Errors
///
/// Returns the first routing error in input order.
pub fn route_batch(
    circuits: &[Circuit],
    graph: &CouplingGraph,
    cost: &dyn CostModel,
    pool: Option<&WorkStealingPool>,
) -> Result<Vec<Routed>> {
    let router = Router::new(graph, cost);
    let results: Vec<Result<Routed>> = match pool.filter(|p| p.threads() > 1 && circuits.len() > 1)
    {
        Some(pool) => pool.map((0..circuits.len()).collect(), |i| {
            router.route(&circuits[i])
        }),
        None => circuits.iter().map(|c| router.route(c)).collect(),
    };
    results.into_iter().collect()
}

/// The `"route"` pipeline stage: embeds the circuit in the graph's site
/// register, routes it (greedy placement + lookahead SWAP ladders), and
/// appends the inverse-permutation epilogue so the stage preserves the
/// circuit's semantics exactly — routed pipelines verify under
/// `VerifyEquivalence` on every backend.
///
/// The stage expects its input to already span the physical register
/// (`width == sites`) when running under verification; the compiler facade
/// widens circuits before the pipeline for exactly this reason.  Without
/// verification, narrower inputs are widened in place.
pub struct RoutePass {
    graph: CouplingGraph,
    cost: std::sync::Arc<dyn CostModel>,
}

impl RoutePass {
    /// Creates the stage for a graph and cost model.
    pub fn new(graph: CouplingGraph, cost: std::sync::Arc<dyn CostModel>) -> Self {
        RoutePass { graph, cost }
    }
}

impl Pass for RoutePass {
    fn name(&self) -> &str {
        "route"
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        self.run_with(circuit, &mut PassContext::new())
    }

    fn run_with(&self, circuit: Circuit, _ctx: &mut PassContext) -> Result<Circuit> {
        let routed = Router::new(&self.graph, self.cost.as_ref()).route(&circuit)?;
        routed.with_epilogue(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn q(i: usize) -> QuditId {
        QuditId::new(i)
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        let total = d.pow(width as u32);
        (0..total)
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    #[test]
    fn wire_swap_exchanges_values_for_every_dimension() {
        for d in [2u32, 3, 4, 5] {
            let dimension = dim(d);
            let mut circuit = Circuit::new(dimension, 2);
            for gate in wire_swap(dimension, 0, 1) {
                circuit.push(gate).unwrap();
            }
            for state in all_states(dimension, 2) {
                let out = circuit.apply_to_basis(&state).unwrap();
                assert_eq!(out, vec![state[1], state[0]], "d = {d}, state {state:?}");
            }
        }
    }

    fn far_apart_circuit(dimension: Dimension, width: usize) -> Circuit {
        let mut circuit = Circuit::new(dimension, width);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                q(width - 1),
                vec![Control::zero(q(0))],
            ))
            .unwrap();
        circuit
            .push(Gate::add_from(q(width - 1), false, q(0), vec![]))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), q(width / 2)))
            .unwrap();
        circuit
    }

    #[test]
    fn routing_makes_every_gate_adjacent_and_stays_equivalent() {
        let dimension = dim(3);
        let circuit = far_apart_circuit(dimension, 5);
        for graph in [
            CouplingGraph::linear(5).unwrap(),
            CouplingGraph::ring(5).unwrap(),
            CouplingGraph::grid(2, 3).unwrap(),
        ] {
            let routed = route_circuit(&circuit, &graph, &UniformCost).unwrap();
            validate_adjacency(&routed.circuit, &graph).unwrap();
            assert!(routed.swap_count > 0 || routed.is_trivial());
            let full = routed.with_epilogue(&graph).unwrap();
            validate_adjacency(&full, &graph).unwrap();
            let embedded = circuit.widened(graph.sites()).unwrap();
            for state in all_states(dimension, graph.sites()) {
                assert_eq!(
                    embedded.apply_to_basis(&state).unwrap(),
                    full.apply_to_basis(&state).unwrap(),
                    "graph {graph}"
                );
            }
        }
    }

    #[test]
    fn routed_circuit_matches_modulo_final_permutation() {
        let dimension = dim(3);
        let circuit = far_apart_circuit(dimension, 4);
        let graph = CouplingGraph::linear(4).unwrap();
        let routed = route_circuit(&circuit, &graph, &NoiseAwareCost::default()).unwrap();
        for state in all_states(dimension, 4) {
            let expected = circuit.apply_to_basis(&state).unwrap();
            let actual = routed.circuit.apply_to_basis(&state).unwrap();
            for (wire, &site) in routed.final_placement.iter().enumerate() {
                assert_eq!(actual[site], expected[wire], "state {state:?}, wire {wire}");
            }
        }
    }

    #[test]
    fn routing_is_idempotent_on_routed_circuits() {
        let circuit = far_apart_circuit(dim(3), 5);
        let graph = CouplingGraph::linear(5).unwrap();
        let once = route_circuit(&circuit, &graph, &UniformCost).unwrap();
        let full = once.with_epilogue(&graph).unwrap();
        let again = route_circuit(&full, &graph, &UniformCost).unwrap();
        assert!(again.is_trivial());
        assert_eq!(again.circuit, full);
    }

    #[test]
    fn validator_rejects_uncoupled_gates_and_high_arity() {
        let graph = CouplingGraph::linear(4).unwrap();
        let mut violating = Circuit::new(dim(3), 4);
        violating
            .push(Gate::add_from(q(0), false, q(3), vec![]))
            .unwrap();
        assert!(matches!(
            validate_adjacency(&violating, &graph),
            Err(QuditError::UncoupledGate {
                gate: 0,
                a: 0,
                b: 3
            })
        ));
        let mut wide_gate = Circuit::new(dim(3), 4);
        wide_gate
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                q(2),
                vec![Control::zero(q(0)), Control::zero(q(1))],
            ))
            .unwrap();
        assert!(matches!(
            validate_adjacency(&wide_gate, &graph),
            Err(QuditError::UnsupportedLowering { .. })
        ));
        assert!(matches!(
            route_circuit(&wide_gate, &graph, &UniformCost),
            Err(QuditError::UnsupportedLowering { .. })
        ));
    }

    #[test]
    fn undersized_graph_is_a_typed_error() {
        let circuit = far_apart_circuit(dim(3), 5);
        let graph = CouplingGraph::linear(3).unwrap();
        assert!(matches!(
            route_circuit(&circuit, &graph, &UniformCost),
            Err(QuditError::TopologyTooSmall {
                sites: 3,
                minimum: 5
            })
        ));
    }

    #[test]
    fn wider_graph_embeds_the_circuit() {
        let dimension = dim(3);
        let circuit = far_apart_circuit(dimension, 3);
        let graph = CouplingGraph::grid(2, 3).unwrap();
        let routed = route_circuit(&circuit, &graph, &UniformCost).unwrap();
        assert_eq!(routed.circuit.width(), 6);
        let full = routed.with_epilogue(&graph).unwrap();
        let embedded = circuit.widened(6).unwrap();
        for state in all_states(dimension, 6) {
            assert_eq!(
                embedded.apply_to_basis(&state).unwrap(),
                full.apply_to_basis(&state).unwrap()
            );
        }
    }

    #[test]
    fn cost_models_report_weighted_costs() {
        let mut circuit = Circuit::new(dim(3), 2);
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), q(0)))
            .unwrap();
        circuit
            .push(Gate::add_from(q(0), false, q(1), vec![]))
            .unwrap();
        assert_eq!(UniformCost.circuit_cost(&circuit), 2.0);
        let noisy = NoiseAwareCost::default();
        // X+1 costs 1.0; the two-qudit X±⋆ costs 1.5 × 10.
        assert!((noisy.circuit_cost(&circuit) - 16.0).abs() < 1e-12);
        assert_eq!(noisy.name(), "noise-aware");
        assert_eq!(UniformCost.name(), "uniform");
    }

    #[test]
    fn route_batch_matches_sequential_for_every_pool_width() {
        let circuits: Vec<Circuit> = (3..6).map(|w| far_apart_circuit(dim(3), w)).collect();
        let graph = CouplingGraph::linear(6).unwrap();
        let sequential = route_batch(&circuits, &graph, &UniformCost, None).unwrap();
        for threads in [1, 2, 4] {
            let pool = WorkStealingPool::with_threads(threads);
            let parallel = route_batch(&circuits, &graph, &UniformCost, Some(&pool)).unwrap();
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(s.circuit, p.circuit, "threads {threads}");
                assert_eq!(s.final_placement, p.final_placement);
                assert_eq!(s.swap_count, p.swap_count);
            }
        }
    }

    #[test]
    fn route_pass_is_a_semantics_preserving_stage() {
        let dimension = dim(3);
        let circuit = far_apart_circuit(dimension, 4);
        let graph = CouplingGraph::linear(4).unwrap();
        let pass = RoutePass::new(graph.clone(), std::sync::Arc::new(UniformCost));
        assert_eq!(pass.name(), "route");
        let out = pass.run(circuit.clone()).unwrap();
        validate_adjacency(&out, &graph).unwrap();
        for state in all_states(dimension, 4) {
            assert_eq!(
                circuit.apply_to_basis(&state).unwrap(),
                out.apply_to_basis(&state).unwrap()
            );
        }
    }

    #[test]
    fn lookahead_and_identity_placement_knobs_stay_correct() {
        let dimension = dim(3);
        let circuit = far_apart_circuit(dimension, 5);
        let graph = CouplingGraph::linear(5).unwrap();
        for router in [
            Router::new(&graph, &UniformCost).with_lookahead(0),
            Router::new(&graph, &UniformCost).with_identity_placement(),
        ] {
            let routed = router.route(&circuit).unwrap();
            validate_adjacency(&routed.circuit, &graph).unwrap();
            let full = routed.with_epilogue(&graph).unwrap();
            for state in all_states(dimension, 5) {
                assert_eq!(
                    circuit.widened(5).unwrap().apply_to_basis(&state).unwrap(),
                    full.apply_to_basis(&state).unwrap()
                );
            }
        }
        let identity_routed = Router::new(&graph, &UniformCost)
            .with_identity_placement()
            .route(&circuit)
            .unwrap();
        assert_eq!(
            identity_routed.initial_placement,
            (0..5).collect::<Vec<_>>()
        );
    }
}
