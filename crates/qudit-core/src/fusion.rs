//! Gate fusion: grouping runs of same-support single-qudit gates so that
//! downstream consumers touch each amplitude (or each macro gate) once per
//! *run* instead of once per gate.
//!
//! Two consumers share the planner in this module:
//!
//! * the dense simulation engine (`qudit-sim`) compiles a circuit into a
//!   fused program whose kernels traverse the `d^width` amplitude vector
//!   once per group, applying the member actions back to back on the
//!   gathered block — see [`plan_fusion`];
//! * the `gate-fusion` pipeline pass ([`crate::pipeline::GateFusion`])
//!   rewrites classical runs into a single composed permutation gate when
//!   that provably does not increase the lowered G-gate cost — see
//!   [`fuse_circuit`].
//!
//! # The grouping rule
//!
//! A gate joins an open group when it is a [`GateOp::Single`] operation with
//! the *same target and the same control list* as the group.  A group stays
//! open across an interleaved non-member gate only when that gate is
//! **classical with qudit support disjoint from the group's support**
//! (target plus control qudits).  Any other gate — non-classical, or
//! touching the group's support — closes the group.
//!
//! The disjoint-classical rule is deliberately stronger than operator
//! commutation: a classical gate on disjoint wires is a pure relocation of
//! amplitudes that maps the group's target-stride blocks onto target-stride
//! blocks, preserving the level order inside each block.  Delaying such a
//! relocation past the group therefore produces **bit-identical** amplitudes
//! (every output amplitude is the same floating-point expression over the
//! same inputs), which is what lets the dense engine fuse across it while
//! keeping its "fused ≡ gate-by-gate" contract exact rather than
//! approximate.  A commuting-but-overlapping gate, or a commuting unitary on
//! disjoint wires, would preserve the operator but reassociate the
//! floating-point arithmetic, so it closes the group instead.

use crate::circuit::Circuit;
use crate::error::Result;
use crate::gate::{Gate, GateOp};
use crate::ops::{Permutation, SingleQuditOp};
use crate::qudit::QuditId;

/// One fused group: indices into the planned gate list, in time order.
///
/// Groups of length 1 are gates that did not fuse with anything (including
/// every gate kind that can never be a member, such as `AddFrom`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// Indices of the member gates, ascending.
    pub members: Vec<usize>,
}

impl FusionGroup {
    /// The index of the first member — the group's position in the fused
    /// emission order.
    pub fn first(&self) -> usize {
        self.members[0]
    }
}

/// The fusion plan of a gate list: every gate appears in exactly one group,
/// and groups are ordered by their first member.
///
/// Emitting each group's members back to back at the position of its first
/// member is semantics-preserving by the grouping rule (see the module
/// docs), and bit-identical for dense simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    /// The groups, ordered by first member index.
    pub groups: Vec<FusionGroup>,
}

impl FusionPlan {
    /// Number of gates that were absorbed into a larger group — the
    /// traversal (or macro-gate) savings of the plan.
    pub fn fused_gates(&self) -> usize {
        self.groups.iter().map(|g| g.members.len() - 1).sum()
    }
}

/// An open (still growing) group during planning.
struct OpenGroup {
    target: QuditId,
    controls_match: Vec<crate::control::Control>,
    support: Vec<QuditId>,
    members: Vec<usize>,
}

/// Plans fusion groups over a gate list (see the module docs for the rule).
///
/// `fuse_non_classical` controls whether non-classical `Single` operations
/// (general unitaries) may be group members: the dense simulator fuses them
/// at the traversal level, while the circuit-level rewrite only composes
/// classical permutations and passes `false`.
pub fn plan_fusion(gates: &[Gate], fuse_non_classical: bool) -> FusionPlan {
    let mut open: Vec<OpenGroup> = Vec::new();
    let mut groups: Vec<FusionGroup> = Vec::new();

    for (index, gate) in gates.iter().enumerate() {
        let fusable =
            matches!(gate.op(), GateOp::Single(_)) && (fuse_non_classical || gate.is_classical());

        // Join an open group with the identical (target, controls) key.
        let joined = if fusable {
            open.iter_mut()
                .find(|g| g.target == gate.target() && g.controls_match == gate.controls())
                .map(|g| g.members.push(index))
                .is_some()
        } else {
            false
        };

        // Every open group this gate is *not* a member of sees it as an
        // interleaved gate: keep the group open only across classical gates
        // on disjoint wires.
        let qudits = gate.qudits();
        let last = if joined { Some(index) } else { None };
        open.retain_mut(|g| {
            if g.members.last() == last.as_ref() {
                return true; // the group it just joined
            }
            let keep = gate.is_classical() && qudits.iter().all(|q| !g.support.contains(q));
            if !keep {
                groups.push(FusionGroup {
                    members: std::mem::take(&mut g.members),
                });
            }
            keep
        });

        if !joined {
            if fusable {
                open.push(OpenGroup {
                    target: gate.target(),
                    controls_match: gate.controls().to_vec(),
                    support: gate.qudits(),
                    members: vec![index],
                });
            } else {
                groups.push(FusionGroup {
                    members: vec![index],
                });
            }
        }
    }
    for g in open {
        groups.push(FusionGroup { members: g.members });
    }
    groups.sort_by_key(FusionGroup::first);
    FusionPlan { groups }
}

/// The lowered G-gate cost proxy of a classical single-qudit operation: the
/// number of transpositions it decomposes into.  Gates in a group share
/// their control list, so the per-transposition control overhead is a
/// common factor and transposition counts compare fused against unfused
/// runs exactly.
fn transposition_cost(op: &SingleQuditOp, dimension: crate::Dimension) -> Result<usize> {
    Ok(op.transpositions(dimension)?.len())
}

/// The most specific [`SingleQuditOp`] implementing a permutation: a single
/// transposition becomes [`SingleQuditOp::Swap`], a cyclic shift becomes
/// [`SingleQuditOp::Add`], everything else stays a general
/// [`SingleQuditOp::Perm`].
fn canonical_op(permutation: Permutation) -> SingleQuditOp {
    let transpositions = permutation.transpositions();
    if transpositions.len() == 1 {
        let (i, j) = transpositions[0];
        return SingleQuditOp::Swap(i, j);
    }
    let d = permutation.len() as u32;
    let shift = permutation.apply(0);
    if (0..d).all(|level| permutation.apply(level) == (level + shift) % d) {
        return SingleQuditOp::Add(shift);
    }
    SingleQuditOp::Perm(permutation)
}

/// Rewrites classical fusion runs of a circuit into single composed gates,
/// returning the fused circuit and the number of gates removed.
///
/// A run is rewritten only when that provably does not increase the lowered
/// G-gate cost:
///
/// * a run composing to the **identity** is dropped entirely (a controlled
///   identity is the identity);
/// * otherwise the composed permutation replaces the run only when its
///   transposition count is *strictly smaller* than the member total, and
///   is emitted as the most specific operation (`Swap`, `Add`, or `Perm`);
/// * runs that would not shrink are left exactly as written, so the pass
///   never regresses the paper's gate counts.
///
/// Non-classical gates, `AddFrom` gates, and gates with no same-support
/// neighbours pass through unchanged (in plan emission order, which only
/// reorders across disjoint classical gates — semantics-preserving by the
/// rule in the module docs).
///
/// # Errors
///
/// Returns an error when a gate of the circuit is invalid for its register.
pub fn fuse_circuit(circuit: &Circuit) -> Result<Circuit> {
    let dimension = circuit.dimension();
    let gates = circuit.gates();
    let plan = plan_fusion(gates, false);
    let mut out = Circuit::new(dimension, circuit.width());
    for group in &plan.groups {
        if group.members.len() == 1 {
            out.push(gates[group.members[0]].clone())?;
            continue;
        }
        let mut composed = Permutation::identity(dimension);
        let mut member_cost = 0usize;
        for &index in &group.members {
            let GateOp::Single(op) = gates[index].op() else {
                unreachable!("multi-gate groups only contain Single members");
            };
            member_cost += transposition_cost(op, dimension)?;
            // Members apply first-to-last: the run's permutation is
            // `p_last ∘ … ∘ p_first`.
            composed = op.to_permutation(dimension)?.compose(&composed);
        }
        if composed.is_identity() {
            continue;
        }
        let fused_cost = composed.transpositions().len();
        if fused_cost < member_cost {
            let template = &gates[group.first()];
            out.push(Gate::new(
                GateOp::Single(canonical_op(composed)),
                template.target(),
                template.controls().to_vec(),
            ))?;
        } else {
            for &index in &group.members {
                out.push(gates[index].clone())?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::math::{Complex, SquareMatrix};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn fourier(d: u32) -> SquareMatrix {
        let omega = Complex::from_phase(2.0 * std::f64::consts::PI / f64::from(d));
        let s = 1.0 / f64::from(d).sqrt();
        let mut entries = Vec::new();
        for r in 0..d {
            for c in 0..d {
                let mut w = Complex::ONE;
                for _ in 0..(r * c) {
                    w *= omega;
                }
                entries.push(w.scale(s));
            }
        }
        SquareMatrix::from_rows(d as usize, entries).unwrap()
    }

    #[test]
    fn adjacent_same_support_gates_fuse() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 2);
        let controls = vec![Control::zero(QuditId::new(0))];
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                controls.clone(),
            ))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                controls,
            ))
            .unwrap();
        let plan = plan_fusion(circuit.gates(), true);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].members, vec![0, 1]);
        assert_eq!(plan.fused_gates(), 1);
    }

    #[test]
    fn differing_controls_do_not_fuse() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 2);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::zero(QuditId::new(0))],
            ))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 1)],
            ))
            .unwrap();
        let plan = plan_fusion(circuit.gates(), true);
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn disjoint_classical_gates_keep_groups_open() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 3);
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        // Classical, disjoint: the q0 group survives.
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(1)))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        let plan = plan_fusion(circuit.gates(), true);
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.groups[0].members, vec![0, 2]);
        assert_eq!(plan.groups[1].members, vec![1]);
    }

    #[test]
    fn overlapping_or_non_classical_gates_split_groups() {
        let d = dim(3);
        // Overlap through a control wire.
        let mut overlap = Circuit::new(d, 2);
        overlap
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        overlap
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::zero(QuditId::new(0))],
            ))
            .unwrap();
        overlap
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        let plan = plan_fusion(overlap.gates(), true);
        assert_eq!(plan.groups.len(), 3, "overlapping support must split");

        // A disjoint but non-classical gate also splits.
        let mut unitary = Circuit::new(d, 2);
        unitary
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        unitary
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier(3)),
                QuditId::new(1),
            ))
            .unwrap();
        unitary
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        let plan = plan_fusion(unitary.gates(), true);
        assert_eq!(plan.groups.len(), 3, "non-classical gates must split");
    }

    #[test]
    fn fuse_circuit_drops_identity_runs() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 2);
        let controls = vec![Control::zero(QuditId::new(0))];
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 2),
                QuditId::new(1),
                controls.clone(),
            ))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 2),
                QuditId::new(1),
                controls,
            ))
            .unwrap();
        let fused = fuse_circuit(&circuit).unwrap();
        assert!(fused.is_empty());
    }

    #[test]
    fn fuse_circuit_composes_shifts_into_one_add() {
        let d = dim(5);
        let mut circuit = Circuit::new(d, 1);
        circuit
            .push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(2), QuditId::new(0)))
            .unwrap();
        let fused = fuse_circuit(&circuit).unwrap();
        assert_eq!(fused.len(), 1);
        assert_eq!(
            fused.gates()[0].op(),
            &GateOp::Single(SingleQuditOp::Add(4))
        );
        // Semantics are preserved on every basis state.
        for level in 0..5 {
            assert_eq!(
                circuit.apply_to_basis(&[level]).unwrap(),
                fused.apply_to_basis(&[level]).unwrap()
            );
        }
    }

    #[test]
    fn fuse_circuit_keeps_runs_that_would_not_shrink() {
        let d = dim(4);
        let mut circuit = Circuit::new(d, 1);
        // X01 then X23: composed permutation still needs two transpositions,
        // so the original gates stay as written.
        circuit
            .push(Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0)))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Swap(2, 3), QuditId::new(0)))
            .unwrap();
        let fused = fuse_circuit(&circuit).unwrap();
        assert_eq!(fused, circuit);
    }

    #[test]
    fn fuse_circuit_preserves_basis_semantics_on_mixed_circuits() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 3);
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))
            .unwrap();
        circuit
            .push(Gate::add_from(
                QuditId::new(0),
                false,
                QuditId::new(1),
                vec![],
            ))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(2), QuditId::new(2)))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), QuditId::new(2)))
            .unwrap();
        let fused = fuse_circuit(&circuit).unwrap();
        // The two shifts on q2 compose to the identity and vanish.
        assert_eq!(fused.len(), 2);
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    assert_eq!(
                        circuit.apply_to_basis(&[a, b, c]).unwrap(),
                        fused.apply_to_basis(&[a, b, c]).unwrap()
                    );
                }
            }
        }
    }
}
