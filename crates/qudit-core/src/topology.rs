//! Hardware coupling graphs: which pairs of physical qudits can interact.
//!
//! The synthesis pipeline historically assumed all-to-all connectivity;
//! real qudit devices constrain two-qudit interactions to the edges of a
//! *coupling graph*.  This module provides the graph substrate for the
//! [`crate::route`] subsystem:
//!
//! * [`CouplingGraph`] — an undirected, connected graph over physical
//!   *sites* with builders for the common device layouts ([`linear`],
//!   [`ring`], [`grid`], [`heavy_hex`]) and arbitrary edge lists
//!   ([`custom`]);
//! * an all-pairs BFS distance matrix computed at construction, so
//!   [`distance`], [`shortest_path`] and [`center`] queries are cheap inside
//!   the router's inner loop;
//! * typed errors for the failure modes a device description can exhibit:
//!   [`QuditError::TopologyTooSmall`], [`QuditError::TopologyDisconnected`]
//!   and [`QuditError::TopologyInvalidEdge`].
//!
//! [`linear`]: CouplingGraph::linear
//! [`ring`]: CouplingGraph::ring
//! [`grid`]: CouplingGraph::grid
//! [`heavy_hex`]: CouplingGraph::heavy_hex
//! [`custom`]: CouplingGraph::custom
//! [`distance`]: CouplingGraph::distance
//! [`shortest_path`]: CouplingGraph::shortest_path
//! [`center`]: CouplingGraph::center
//!
//! # Example
//!
//! ```
//! use qudit_core::topology::CouplingGraph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chain = CouplingGraph::linear(5)?;
//! assert!(chain.are_coupled(1, 2));
//! assert!(!chain.are_coupled(0, 4));
//! assert_eq!(chain.distance(0, 4), 4);
//! assert_eq!(chain.shortest_path(0, 3), vec![0, 1, 2, 3]);
//!
//! // A 2×3 grid shortens the worst-case distance.
//! let grid = CouplingGraph::grid(2, 3)?;
//! assert_eq!(grid.sites(), 6);
//! assert_eq!(grid.diameter(), 3);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::error::{QuditError, Result};

/// An undirected, connected coupling graph over physical qudit sites.
///
/// Sites are indexed `0, …, sites − 1`; an edge `(a, b)` means a two-qudit
/// gate may act on the pair directly.  Construction validates the edge list
/// and connectivity, then precomputes the all-pairs BFS distance matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    sites: usize,
    /// Sorted neighbour lists, one per site.
    neighbors: Vec<Vec<usize>>,
    /// Canonical (`a < b`) edge list, sorted and deduplicated.
    edges: Vec<(usize, usize)>,
    /// Row-major `sites × sites` BFS distance matrix.
    distances: Vec<u32>,
}

impl CouplingGraph {
    /// Builds a graph from an explicit edge list over `sites` sites.
    ///
    /// Edges may appear in either orientation and repeatedly; they are
    /// canonicalised and deduplicated.
    ///
    /// # Errors
    ///
    /// * [`QuditError::TopologyTooSmall`] when `sites == 0`;
    /// * [`QuditError::TopologyInvalidEdge`] for a self-loop or an endpoint
    ///   `≥ sites`;
    /// * [`QuditError::TopologyDisconnected`] when some site is unreachable
    ///   from site 0.
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_core::topology::CouplingGraph;
    /// let star = CouplingGraph::custom(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
    /// assert_eq!(star.distance(1, 3), 2);
    /// assert!(CouplingGraph::custom(3, &[(0, 1)]).is_err()); // site 2 unreachable
    /// ```
    pub fn custom(sites: usize, edges: &[(usize, usize)]) -> Result<Self> {
        if sites == 0 {
            return Err(QuditError::TopologyTooSmall { sites, minimum: 1 });
        }
        let mut canonical: Vec<(usize, usize)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a == b || a >= sites || b >= sites {
                return Err(QuditError::TopologyInvalidEdge { a, b, sites });
            }
            canonical.push((a.min(b), a.max(b)));
        }
        canonical.sort_unstable();
        canonical.dedup();
        let mut neighbors = vec![Vec::new(); sites];
        for &(a, b) in &canonical {
            neighbors[a].push(b);
            neighbors[b].push(a);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        let graph = CouplingGraph {
            sites,
            neighbors,
            edges: canonical,
            distances: Vec::new(),
        };
        let from_zero = graph.bfs_distances(0);
        let reached = from_zero.iter().filter(|&&d| d != u32::MAX).count();
        if reached != sites {
            return Err(QuditError::TopologyDisconnected { reached, sites });
        }
        let mut distances = Vec::with_capacity(sites * sites);
        distances.extend_from_slice(&from_zero);
        for site in 1..sites {
            distances.extend_from_slice(&graph.bfs_distances(site));
        }
        Ok(CouplingGraph { distances, ..graph })
    }

    /// A linear chain `0 — 1 — … — (sites − 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::TopologyTooSmall`] when `sites == 0`.
    pub fn linear(sites: usize) -> Result<Self> {
        if sites == 0 {
            return Err(QuditError::TopologyTooSmall { sites, minimum: 1 });
        }
        let edges: Vec<(usize, usize)> = (1..sites).map(|i| (i - 1, i)).collect();
        Self::custom(sites, &edges)
    }

    /// A ring: the linear chain plus the closing edge `(sites − 1, 0)`.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::TopologyTooSmall`] when `sites < 3` (smaller
    /// rings degenerate to a chain or a self-loop).
    pub fn ring(sites: usize) -> Result<Self> {
        if sites < 3 {
            return Err(QuditError::TopologyTooSmall { sites, minimum: 3 });
        }
        let mut edges: Vec<(usize, usize)> = (1..sites).map(|i| (i - 1, i)).collect();
        edges.push((sites - 1, 0));
        Self::custom(sites, &edges)
    }

    /// A `rows × cols` rectangular grid with 4-neighbour coupling; site
    /// `(r, c)` has index `r · cols + c`.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::TopologyTooSmall`] when either side is zero.
    pub fn grid(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(QuditError::TopologyTooSmall {
                sites: rows * cols,
                minimum: 1,
            });
        }
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let site = r * cols + c;
                if c + 1 < cols {
                    edges.push((site, site + 1));
                }
                if r + 1 < rows {
                    edges.push((site, site + cols));
                }
            }
        }
        Self::custom(rows * cols, &edges)
    }

    /// A heavy-hex style lattice: `rows` chains of `cols` sites, with
    /// degree-2 *bridge* sites linking vertically adjacent chains at every
    /// fourth column (offset alternating by row, as on IBM's heavy-hex
    /// devices).  Bridge sites are indexed after the `rows · cols` chain
    /// sites.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::TopologyTooSmall`] when `rows == 0` or
    /// `cols < 3` (narrower lattices cannot host the alternating bridge
    /// pattern).
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_core::topology::CouplingGraph;
    /// let hex = CouplingGraph::heavy_hex(2, 5).unwrap();
    /// // Two 5-site chains plus 2 bridges (columns 0 and 4 of the even row).
    /// assert_eq!(hex.sites(), 12);
    /// // Bridge sites have degree 2.
    /// assert_eq!(hex.neighbors(10).len(), 2);
    /// ```
    pub fn heavy_hex(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols < 3 {
            return Err(QuditError::TopologyTooSmall {
                sites: rows * cols,
                minimum: 3,
            });
        }
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 1..cols {
                edges.push((r * cols + c - 1, r * cols + c));
            }
        }
        let mut next_bridge = rows * cols;
        for r in 0..rows.saturating_sub(1) {
            // Even rows bridge at columns 0, 4, 8, …; odd rows at 2, 6, 10, …
            let offset = 2 * (r % 2);
            let mut c = offset;
            while c < cols {
                edges.push((r * cols + c, next_bridge));
                edges.push((next_bridge, (r + 1) * cols + c));
                next_bridge += 1;
                c += 4;
            }
        }
        Self::custom(next_bridge, &edges)
    }

    /// Number of physical sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The canonical (`a < b`, sorted, deduplicated) edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The sorted neighbour list of a site.
    ///
    /// # Panics
    ///
    /// Panics when `site` is out of range.
    pub fn neighbors(&self, site: usize) -> &[usize] {
        &self.neighbors[site]
    }

    /// Returns `true` when the two sites share an edge.
    ///
    /// # Panics
    ///
    /// Panics when either site is out of range.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        assert!(b < self.sites, "site {b} out of range");
        self.neighbors[a].binary_search(&b).is_ok()
    }

    /// BFS distance (number of edges) between two sites.
    ///
    /// # Panics
    ///
    /// Panics when either site is out of range.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.distances[a * self.sites + b] as usize
    }

    /// The largest distance between any two sites.
    pub fn diameter(&self) -> usize {
        self.distances.iter().copied().max().unwrap_or(0) as usize
    }

    /// A site of minimum eccentricity (ties broken by lowest index) — the
    /// seed the greedy placement grows from.
    pub fn center(&self) -> usize {
        (0..self.sites)
            .min_by_key(|&site| {
                self.distances[site * self.sites..(site + 1) * self.sites]
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    /// A shortest path from `a` to `b`, inclusive of both endpoints
    /// (deterministic: each step descends the distance matrix toward `b`
    /// through the lowest-indexed qualifying neighbour).
    ///
    /// # Panics
    ///
    /// Panics when either site is out of range.
    pub fn shortest_path(&self, a: usize, b: usize) -> Vec<usize> {
        let mut path = vec![a];
        let mut current = a;
        while current != b {
            let next = self.neighbors[current]
                .iter()
                .copied()
                .find(|&n| self.distance(n, b) + 1 == self.distance(current, b))
                .expect("the graph is connected, so the distance always descends");
            path.push(next);
            current = next;
        }
        path
    }

    /// Single-source BFS distances (`u32::MAX` for unreachable sites; only
    /// possible before the constructor's connectivity check has passed).
    fn bfs_distances(&self, source: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.sites];
        dist[source] = 0;
        let mut queue = VecDeque::with_capacity(self.sites);
        queue.push_back(source);
        while let Some(site) = queue.pop_front() {
            for &next in &self.neighbors[site] {
                if dist[next] == u32::MAX {
                    dist[next] = dist[site] + 1;
                    queue.push_back(next);
                }
            }
        }
        dist
    }
}

impl fmt::Debug for CouplingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CouplingGraph")
            .field("sites", &self.sites)
            .field("edges", &self.edges)
            .finish()
    }
}

impl fmt::Display for CouplingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coupling graph: {} sites, {} edges",
            self.sites,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_distances_and_paths() {
        let g = CouplingGraph::linear(6).unwrap();
        assert_eq!(g.sites(), 6);
        assert_eq!(g.edges().len(), 5);
        assert_eq!(g.distance(0, 5), 5);
        assert_eq!(g.shortest_path(5, 2), vec![5, 4, 3, 2]);
        assert_eq!(g.diameter(), 5);
        // The chain's centers are the middle sites; ties break low.
        assert_eq!(g.center(), 2);
        assert!(g.are_coupled(3, 4));
        assert!(!g.are_coupled(0, 2));
    }

    #[test]
    fn ring_halves_the_diameter() {
        let chain = CouplingGraph::linear(8).unwrap();
        let ring = CouplingGraph::ring(8).unwrap();
        assert_eq!(chain.diameter(), 7);
        assert_eq!(ring.diameter(), 4);
        assert_eq!(ring.distance(0, 7), 1);
        assert!(CouplingGraph::ring(2).is_err());
    }

    #[test]
    fn grid_indexing_is_row_major() {
        let g = CouplingGraph::grid(3, 4).unwrap();
        assert_eq!(g.sites(), 12);
        assert!(g.are_coupled(0, 1)); // (0,0)–(0,1)
        assert!(g.are_coupled(0, 4)); // (0,0)–(1,0)
        assert!(!g.are_coupled(3, 4)); // row wrap is not an edge
        assert_eq!(g.distance(0, 11), 5);
        assert!(CouplingGraph::grid(0, 3).is_err());
    }

    #[test]
    fn heavy_hex_has_degree_two_bridges() {
        let g = CouplingGraph::heavy_hex(3, 5).unwrap();
        // 3 chains of 5, bridges at columns {0, 4} (row 0→1) and {2} (row 1→2).
        assert_eq!(g.sites(), 15 + 3);
        for bridge in 15..18 {
            assert_eq!(g.neighbors(bridge).len(), 2, "bridge {bridge}");
        }
        // Chain interiors keep degree ≤ 3 (heavy-hex property).
        for site in 0..15 {
            assert!(g.neighbors(site).len() <= 3, "site {site}");
        }
        assert!(CouplingGraph::heavy_hex(2, 2).is_err());
    }

    #[test]
    fn custom_rejects_bad_edges_and_disconnection() {
        assert!(matches!(
            CouplingGraph::custom(0, &[]),
            Err(QuditError::TopologyTooSmall { .. })
        ));
        assert!(matches!(
            CouplingGraph::custom(3, &[(0, 0)]),
            Err(QuditError::TopologyInvalidEdge { .. })
        ));
        assert!(matches!(
            CouplingGraph::custom(3, &[(0, 5)]),
            Err(QuditError::TopologyInvalidEdge { .. })
        ));
        assert!(matches!(
            CouplingGraph::custom(4, &[(0, 1), (2, 3)]),
            Err(QuditError::TopologyDisconnected {
                reached: 2,
                sites: 4
            })
        ));
        // Duplicate and reversed edges canonicalise away.
        let g = CouplingGraph::custom(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edges(), &[(0, 1)]);
    }

    #[test]
    fn single_site_graph_is_valid() {
        let g = CouplingGraph::linear(1).unwrap();
        assert_eq!(g.sites(), 1);
        assert_eq!(g.diameter(), 0);
        assert_eq!(g.shortest_path(0, 0), vec![0]);
    }

    #[test]
    fn distances_are_symmetric_and_triangle_consistent() {
        let g = CouplingGraph::heavy_hex(2, 5).unwrap();
        let s = g.sites();
        for a in 0..s {
            for b in 0..s {
                assert_eq!(g.distance(a, b), g.distance(b, a));
                let path = g.shortest_path(a, b);
                assert_eq!(path.len(), g.distance(a, b) + 1);
                for step in path.windows(2) {
                    assert!(g.are_coupled(step[0], step[1]));
                }
            }
        }
    }
}
