//! The compilation pipeline: composable circuit-to-circuit passes with
//! per-pass statistics.
//!
//! The paper's flow — MCT synthesis → macro-gate lowering → G-gate lowering
//! → inverse-pair cancellation — is a staged compilation pipeline.  This
//! module provides the seam every stage plugs into:
//!
//! * [`Pass`] — a named, semantics-preserving circuit transformation;
//! * [`PassManager`] — composes passes and records a [`PassStats`] entry
//!   (gate counts, G-gate counts, depth, active qudits, wall time) for each;
//! * [`CancelInversePairs`] and [`LowerToGGates`] — the core passes, wrapping
//!   [`crate::optimize::cancel_inverse_pairs`] and
//!   [`crate::lowering::lower_circuit`].
//!
//! The macro-gate lowering pass (`LowerToElementary`) and the
//! `Pipeline::standard` preset live in `qudit-synthesis`, which owns the
//! Fig. 2 / Fig. 5 gadgets; the semantics-checking `VerifyEquivalence`
//! wrapper lives in `qudit-sim`, which owns the simulators.
//!
//! # Example
//!
//! ```
//! use qudit_core::pipeline::{CancelInversePairs, LowerToGGates, PassManager};
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut circuit = Circuit::new(d, 2);
//! circuit.push(Gate::controlled(
//!     SingleQuditOp::Add(1),
//!     QuditId::new(1),
//!     vec![Control::level(QuditId::new(0), 2)],
//! ))?;
//!
//! let manager = PassManager::new()
//!     .with_pass(LowerToGGates)
//!     .with_pass(CancelInversePairs);
//! let report = manager.run(circuit)?;
//! assert!(report.circuit.gates().iter().all(|g| g.is_g_gate()));
//! assert_eq!(report.stats.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::time::{Duration, Instant};

use crate::circuit::Circuit;
use crate::depth::circuit_depth;
use crate::error::{QuditError, Result};
use crate::lowering;
use crate::optimize;

/// A named circuit-to-circuit transformation.
///
/// A pass must preserve the semantics of the circuit it transforms (up to
/// the contract it documents — for example, lowering passes preserve the
/// action on every basis state).  Passes take the circuit by value so that
/// identity-like passes can return their input without cloning.
pub trait Pass {
    /// A short, stable, kebab-case name used in statistics and diagnostics.
    fn name(&self) -> &str;

    /// Transforms the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the pass cannot handle the circuit (for
    /// example, lowering a gate with too many controls).
    fn run(&self, circuit: Circuit) -> Result<Circuit>;
}

impl Pass for Box<dyn Pass> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        self.as_ref().run(circuit)
    }
}

/// A cheap structural snapshot of a circuit, recorded before and after every
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Total gate count.
    pub gates: usize,
    /// Number of gates that are elementary G-gates.
    pub g_gates: usize,
    /// Number of gates touching exactly two qudits.
    pub two_qudit_gates: usize,
    /// Circuit depth under greedy scheduling.
    pub depth: usize,
    /// The largest control count on any gate.
    pub max_controls: usize,
    /// Number of qudits touched by at least one gate (register activity —
    /// for the synthesis constructions the delta over the controls+target
    /// set is the ancilla usage).
    pub active_qudits: usize,
}

impl CircuitProfile {
    /// Profiles a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        CircuitProfile {
            gates: circuit.len(),
            g_gates: circuit.g_gate_count(),
            two_qudit_gates: circuit.two_qudit_gate_count(),
            depth: circuit_depth(circuit),
            max_controls: circuit.max_controls(),
            active_qudits: circuit.used_qudits().len(),
        }
    }
}

/// Statistics of one pass execution.
#[derive(Debug, Clone)]
pub struct PassStats {
    /// Name of the pass.
    pub pass: String,
    /// Profile of the input circuit.
    pub before: CircuitProfile,
    /// Profile of the output circuit.
    pub after: CircuitProfile,
    /// Wall-clock time the pass took.
    pub elapsed: Duration,
}

impl PassStats {
    /// Signed change in gate count (negative when the pass removed gates).
    pub fn gate_delta(&self) -> i64 {
        self.after.gates as i64 - self.before.gates as i64
    }

    /// Signed change in depth.
    pub fn depth_delta(&self) -> i64 {
        self.after.depth as i64 - self.before.depth as i64
    }
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: gates {} -> {}, depth {} -> {}, {:.1} µs",
            self.pass,
            self.before.gates,
            self.after.gates,
            self.before.depth,
            self.after.depth,
            self.elapsed.as_secs_f64() * 1e6,
        )
    }
}

/// The result of running a [`PassManager`]: the final circuit plus one
/// [`PassStats`] entry per pass, in execution order.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The circuit after every pass has run.
    pub circuit: Circuit,
    /// Per-pass statistics, in execution order.
    pub stats: Vec<PassStats>,
}

impl PipelineReport {
    /// Total wall-clock time across all passes.
    pub fn total_elapsed(&self) -> Duration {
        self.stats.iter().map(|s| s.elapsed).sum()
    }

    /// The statistics entry of the named pass, if it ran.
    pub fn stats_for(&self, pass: &str) -> Option<&PassStats> {
        self.stats.iter().find(|s| s.pass == pass)
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stats in &self.stats {
            writeln!(f, "{stats}")?;
        }
        write!(
            f,
            "final: {} gates, depth {}",
            self.circuit.len(),
            circuit_depth(&self.circuit)
        )
    }
}

/// Composes [`Pass`]es into a pipeline and records per-pass statistics.
///
/// Optionally pins the register shape (dimension and width) the pipeline is
/// built for, rejecting mismatched circuits up front.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    shape: Option<(crate::dimension::Dimension, usize)>,
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            shape: None,
        }
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a boxed pass.
    pub fn push_pass(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Pins the register shape: [`PassManager::run`] will reject circuits
    /// whose dimension or width differs.
    #[must_use]
    pub fn with_shape(mut self, dimension: crate::dimension::Dimension, width: usize) -> Self {
        self.shape = Some((dimension, width));
        self
    }

    /// Rebuilds the pipeline with every pass transformed by `wrap` — the
    /// hook decorating wrappers (such as `qudit-sim`'s `VerifyEquivalence`)
    /// use to instrument an existing pipeline.
    #[must_use]
    pub fn map_passes(self, wrap: impl FnMut(Box<dyn Pass>) -> Box<dyn Pass>) -> Self {
        PassManager {
            passes: self.passes.into_iter().map(wrap).collect(),
            shape: self.shape,
        }
    }

    /// The names of the passes, in execution order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Returns `true` when the pipeline has no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order, profiling the circuit before and after
    /// each one.
    ///
    /// # Errors
    ///
    /// Returns the first pass error, or [`QuditError::IncompatibleCircuits`]
    /// when the circuit does not match a pinned shape.
    pub fn run(&self, circuit: Circuit) -> Result<PipelineReport> {
        if let Some((dimension, width)) = self.shape {
            if circuit.dimension() != dimension || circuit.width() != width {
                return Err(QuditError::IncompatibleCircuits {
                    reason: format!(
                        "pipeline was built for d={dimension}, width={width} but got d={}, width={}",
                        circuit.dimension(),
                        circuit.width()
                    ),
                });
            }
        }
        let mut current = circuit;
        let mut stats = Vec::with_capacity(self.passes.len());
        // Each pass's input profile is the previous pass's output profile;
        // profile each intermediate circuit only once.
        let mut before = CircuitProfile::of(&current);
        for pass in &self.passes {
            let start = Instant::now();
            current = pass.run(current)?;
            let elapsed = start.elapsed();
            let after = CircuitProfile::of(&current);
            stats.push(PassStats {
                pass: pass.name().to_string(),
                before,
                after,
                elapsed,
            });
            before = after;
        }
        Ok(PipelineReport {
            circuit: current,
            stats,
        })
    }

    /// Runs the pipeline and returns only the final circuit.
    ///
    /// # Errors
    ///
    /// See [`PassManager::run`].
    pub fn run_circuit(&self, circuit: Circuit) -> Result<Circuit> {
        Ok(self.run(circuit)?.circuit)
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("shape", &self.shape)
            .finish()
    }
}

/// Pass removing adjacent gate/inverse pairs
/// (wraps [`crate::optimize::cancel_inverse_pairs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancelInversePairs;

impl Pass for CancelInversePairs {
    fn name(&self) -> &str {
        "cancel-inverse-pairs"
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        Ok(optimize::cancel_inverse_pairs(&circuit))
    }
}

/// Pass lowering gates with at most one control to the elementary G-gate set
/// `{Xij} ∪ {|0⟩-X01}` (wraps [`crate::lowering::lower_circuit`]).
///
/// Gates with two or more controls make this pass fail; lower them first
/// with `qudit-synthesis`'s `LowerToElementary` pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerToGGates;

impl Pass for LowerToGGates {
    fn name(&self) -> &str {
        "lower-to-g-gates"
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        lowering::lower_circuit(&circuit)
    }
}

/// An ad-hoc pass built from a closure; see [`pass_fn`].
pub struct FnPass<F> {
    name: String,
    run: F,
}

impl<F: Fn(Circuit) -> Result<Circuit>> Pass for FnPass<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        (self.run)(circuit)
    }
}

/// Wraps a closure as a [`Pass`], for one-off transformations and tests.
pub fn pass_fn<F: Fn(Circuit) -> Result<Circuit>>(name: impl Into<String>, run: F) -> FnPass<F> {
    FnPass {
        name: name.into(),
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::gate::Gate;
    use crate::ops::SingleQuditOp;
    use crate::qudit::QuditId;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn sample_circuit() -> Circuit {
        let mut circuit = Circuit::new(dim(3), 2);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 2)],
            ))
            .unwrap();
        circuit
    }

    #[test]
    fn empty_manager_is_identity() {
        let circuit = sample_circuit();
        let report = PassManager::new().run(circuit.clone()).unwrap();
        assert_eq!(report.circuit, circuit);
        assert!(report.stats.is_empty());
        assert!(PassManager::new().is_empty());
    }

    #[test]
    fn passes_run_in_order_and_record_stats() {
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs);
        assert_eq!(
            manager.pass_names(),
            vec!["lower-to-g-gates", "cancel-inverse-pairs"]
        );
        let report = manager.run(sample_circuit()).unwrap();
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        assert_eq!(report.stats.len(), 2);
        assert_eq!(report.stats[0].pass, "lower-to-g-gates");
        assert_eq!(report.stats[0].before.gates, 1);
        assert_eq!(report.stats[0].after.gates, report.stats[1].before.gates);
        assert_eq!(report.stats[1].after.gates, report.circuit.len());
        assert!(report.stats_for("lower-to-g-gates").is_some());
        assert!(report.stats_for("nonexistent").is_none());
        assert!(report.total_elapsed() >= Duration::ZERO);
    }

    #[test]
    fn g_gate_lowering_preserves_basis_action() {
        let circuit = sample_circuit();
        let lowered = PassManager::new()
            .with_pass(LowerToGGates)
            .run_circuit(circuit.clone())
            .unwrap();
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(
                    circuit.apply_to_basis(&[a, b]).unwrap(),
                    lowered.apply_to_basis(&[a, b]).unwrap()
                );
            }
        }
    }

    #[test]
    fn shape_pinning_rejects_mismatched_circuits() {
        let manager = PassManager::new()
            .with_pass(CancelInversePairs)
            .with_shape(dim(3), 3);
        assert!(matches!(
            manager.run(sample_circuit()),
            Err(QuditError::IncompatibleCircuits { .. })
        ));
        let ok = PassManager::new()
            .with_pass(CancelInversePairs)
            .with_shape(dim(3), 2);
        assert!(ok.run(sample_circuit()).is_ok());
    }

    #[test]
    fn fn_pass_and_map_passes_compose() {
        let reverse = pass_fn("reverse", |c: Circuit| Ok(c.inverse()));
        let manager = PassManager::new().with_pass(reverse);
        let report = manager.run(sample_circuit()).unwrap();
        assert_eq!(report.stats[0].pass, "reverse");

        // Decorate every pass with a renaming wrapper.
        struct Renamed {
            name: String,
            inner: Box<dyn Pass>,
        }
        impl Pass for Renamed {
            fn name(&self) -> &str {
                &self.name
            }
            fn run(&self, circuit: Circuit) -> Result<Circuit> {
                self.inner.run(circuit)
            }
        }
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .map_passes(|inner| {
                Box::new(Renamed {
                    name: format!("wrapped({})", inner.name()),
                    inner,
                })
            });
        assert_eq!(manager.pass_names(), vec!["wrapped(lower-to-g-gates)"]);
        assert!(manager.run(sample_circuit()).is_ok());
    }

    #[test]
    fn pass_errors_propagate() {
        let failing = pass_fn("fail", |_| {
            Err(QuditError::PassFailed {
                pass: "fail".into(),
                reason: "boom".into(),
            })
        });
        let manager = PassManager::new().with_pass(failing);
        assert!(matches!(
            manager.run(sample_circuit()),
            Err(QuditError::PassFailed { .. })
        ));
    }

    #[test]
    fn profile_counts_are_consistent() {
        let circuit = sample_circuit();
        let profile = CircuitProfile::of(&circuit);
        assert_eq!(profile.gates, 1);
        assert_eq!(profile.two_qudit_gates, 1);
        assert_eq!(profile.depth, 1);
        assert_eq!(profile.max_controls, 1);
        assert_eq!(profile.active_qudits, 2);
        assert_eq!(profile.g_gates, 0);
    }

    #[test]
    fn stats_display_and_deltas() {
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs);
        let report = manager.run(sample_circuit()).unwrap();
        let lowering = &report.stats[0];
        assert!(lowering.gate_delta() > 0);
        assert!(lowering.to_string().contains("lower-to-g-gates"));
        assert!(report.to_string().contains("final:"));
    }
}
