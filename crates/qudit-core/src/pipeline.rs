//! The compilation pipeline: composable circuit-to-circuit passes with
//! per-pass statistics.
//!
//! The paper's flow — MCT synthesis → macro-gate lowering → G-gate lowering
//! → inverse-pair cancellation — is a staged compilation pipeline.  This
//! module provides the seam every stage plugs into:
//!
//! * [`Pass`] — a named, semantics-preserving circuit transformation;
//! * [`PassManager`] — composes passes and records a [`PassStats`] entry
//!   (gate counts, G-gate counts, depth, active qudits, wall time) for each;
//! * [`CancelInversePairs`] and [`LowerToGGates`] — the core passes, wrapping
//!   [`crate::optimize::cancel_inverse_pairs`] and
//!   [`crate::lowering::lower_circuit`].
//!
//! The macro-gate lowering pass (`LowerToElementary`) and the
//! `Compiler` / `CompileOptions` facade configuring the full flow live in
//! `qudit-synthesis`, which owns the Fig. 2 / Fig. 5 gadgets; the
//! semantics-checking `VerifyEquivalence` wrapper lives in `qudit-sim`,
//! which owns the simulators.
//!
//! Passes are `Send + Sync`, and three scaling seams build on that:
//!
//! * **Caching** — [`PassManager::with_cache`] hands every pass a
//!   [`LoweringCache`] through [`PassContext`]; cache-aware passes (the
//!   lowering passes) record per-run hit/miss counters that surface in
//!   [`PassStats::cache`].  See [`CacheMode`] for the sharing options.
//! * **Batching** — [`PassManager::run_batch`] compiles many circuits
//!   concurrently on a [`WorkStealingPool`] and merges the per-pass
//!   statistics order-independently into a [`BatchReport`].
//! * **Pooling** — [`PassManager::with_pool`] pins the worker pool every
//!   parallel-capable pass draws from (through [`PassContext::pool`]);
//!   unpooled managers keep the historical behaviour of sizing a fresh
//!   pool per pass from the environment.
//!
//! Pipelines can also be *assembled from data* instead of hard-coded
//! builder chains: a [`PipelineSpec`] names the stages, shape and cache
//! mode, and a [`PassRegistry`] maps stage names to pass factories
//! ([`PassRegistry::assemble`]).  This is the seam configuration surfaces
//! (such as `qudit-synthesis`'s `CompileOptions`) build on, so a new
//! orthogonal option means one more registered stage rather than a new
//! constructor family.
//!
//! # Example
//!
//! ```
//! use qudit_core::pipeline::{CancelInversePairs, LowerToGGates, PassManager};
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut circuit = Circuit::new(d, 2);
//! circuit.push(Gate::controlled(
//!     SingleQuditOp::Add(1),
//!     QuditId::new(1),
//!     vec![Control::level(QuditId::new(0), 2)],
//! ))?;
//!
//! let manager = PassManager::new()
//!     .with_pass(LowerToGGates)
//!     .with_pass(CancelInversePairs);
//! let report = manager.run(circuit)?;
//! assert!(report.circuit.gates().iter().all(|g| g.is_g_gate()));
//! assert_eq!(report.stats.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::{CacheCounters, LoweringCache};
use crate::circuit::Circuit;
use crate::commute;
use crate::depth::circuit_depth;
use crate::error::{QuditError, Result};
use crate::lowering;
use crate::optimize;
use crate::pool::WorkStealingPool;

/// A named circuit-to-circuit transformation.
///
/// A pass must preserve the semantics of the circuit it transforms (up to
/// the contract it documents — for example, lowering passes preserve the
/// action on every basis state).  Passes take the circuit by value so that
/// identity-like passes can return their input without cloning, and are
/// `Send + Sync` so that one pipeline instance can compile many circuits
/// concurrently ([`PassManager::run_batch`]).
///
/// # Example
///
/// ```
/// use qudit_core::pipeline::{Pass, PassManager};
/// use qudit_core::{Circuit, Result};
///
/// /// Reverses a circuit into its inverse (semantics: the inverse map).
/// struct Invert;
///
/// impl Pass for Invert {
///     fn name(&self) -> &str {
///         "invert"
///     }
///     fn run(&self, circuit: Circuit) -> Result<Circuit> {
///         Ok(circuit.inverse())
///     }
/// }
///
/// # fn main() -> Result<()> {
/// let d = qudit_core::Dimension::new(3)?;
/// let report = PassManager::new()
///     .with_pass(Invert)
///     .run(Circuit::new(d, 2))?;
/// assert_eq!(report.stats[0].pass, "invert");
/// # Ok(())
/// # }
/// ```
pub trait Pass: Send + Sync {
    /// A short, stable, kebab-case name used in statistics and diagnostics.
    fn name(&self) -> &str;

    /// Transforms the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the pass cannot handle the circuit (for
    /// example, lowering a gate with too many controls).
    fn run(&self, circuit: Circuit) -> Result<Circuit>;

    /// Transforms the circuit with access to the run's [`PassContext`]
    /// (lowering cache, per-run cache counters).
    ///
    /// The default implementation ignores the context and calls
    /// [`Pass::run`]; cache-aware passes override this.  [`PassManager`]
    /// always calls this entry point.
    ///
    /// # Errors
    ///
    /// See [`Pass::run`].
    fn run_with(&self, circuit: Circuit, ctx: &mut PassContext) -> Result<Circuit> {
        let _ = ctx;
        self.run(circuit)
    }
}

impl Pass for Box<dyn Pass> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        self.as_ref().run(circuit)
    }

    fn run_with(&self, circuit: Circuit, ctx: &mut PassContext) -> Result<Circuit> {
        self.as_ref().run_with(circuit, ctx)
    }
}

/// Per-pass-execution context handed to [`Pass::run_with`].
///
/// Carries the run's optional [`LoweringCache`] and collects the pass's
/// cache hit/miss tally, which the [`PassManager`] moves into
/// [`PassStats::cache`]; when the manager was configured with
/// [`PassManager::with_pool`], the context also carries the run's
/// [`WorkStealingPool`] so parallel-capable passes share one worker
/// configuration instead of sizing a fresh pool each.
#[derive(Debug, Default)]
pub struct PassContext {
    cache: Option<Arc<LoweringCache>>,
    counters: CacheCounters,
    pool: Option<WorkStealingPool>,
}

impl PassContext {
    /// A context without a cache (the default for plain [`Pass::run`]).
    pub fn new() -> Self {
        PassContext::default()
    }

    /// A context carrying a lowering cache.
    pub fn with_cache(cache: Arc<LoweringCache>) -> Self {
        PassContext {
            cache: Some(cache),
            counters: CacheCounters::default(),
            pool: None,
        }
    }

    /// Pins the worker pool parallel-capable passes should use (builder
    /// style).
    #[must_use]
    pub fn with_pool(mut self, pool: WorkStealingPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The run's pinned worker pool, if the manager configured one
    /// (cloned: persistent pools share their crew through the clone).
    pub fn pool(&self) -> Option<WorkStealingPool> {
        self.pool.clone()
    }

    /// The run's lowering cache, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<LoweringCache>> {
        self.cache.as_ref()
    }

    /// Adds a cache tally to the pass's counters.
    pub fn record(&mut self, counters: CacheCounters) {
        self.counters.merge(counters);
    }

    /// The cache tally recorded so far.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

/// How a [`PassManager`] provisions the lowering cache for its runs.
///
/// # Example
///
/// ```
/// use qudit_core::cache::LoweringCache;
/// use qudit_core::pipeline::{CacheMode, LowerToGGates, PassManager};
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 3);
/// for target in [1, 2] {
///     circuit.push(Gate::controlled(
///         SingleQuditOp::Add(1),
///         QuditId::new(target),
///         vec![Control::level(QuditId::new(0), 2)],
///     ))?;
/// }
/// let manager = PassManager::new()
///     .with_pass(LowerToGGates)
///     .with_cache(CacheMode::PerRun);
/// let report = manager.run(circuit)?;
/// let cache = report.stats[0].cache.expect("caching was enabled");
/// assert_eq!(cache.hits, 1);
/// assert_eq!(cache.misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub enum CacheMode {
    /// No caching; [`PassStats::cache`] stays `None`.
    #[default]
    Off,
    /// A fresh cache per [`PassManager::run`] call.  Per-pass counters are
    /// fully deterministic, and batch jobs do not share entries — the mode
    /// the experiment tables use.
    PerRun,
    /// One caller-provided cache shared by every run (and, in
    /// [`PassManager::run_batch`], across worker threads).  Maximises reuse;
    /// per-pass counters depend on which job reaches a key first.
    Shared(Arc<LoweringCache>),
}

/// A cheap structural snapshot of a circuit, recorded before and after every
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Total gate count.
    pub gates: usize,
    /// Number of gates that are elementary G-gates.
    pub g_gates: usize,
    /// Number of gates touching exactly two qudits.
    pub two_qudit_gates: usize,
    /// Circuit depth under greedy scheduling.
    pub depth: usize,
    /// The largest control count on any gate.
    pub max_controls: usize,
    /// Number of qudits touched by at least one gate (register activity —
    /// for the synthesis constructions the delta over the controls+target
    /// set is the ancilla usage).
    pub active_qudits: usize,
}

impl CircuitProfile {
    /// Profiles a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        CircuitProfile {
            gates: circuit.len(),
            g_gates: circuit.g_gate_count(),
            two_qudit_gates: circuit.two_qudit_gate_count(),
            depth: circuit_depth(circuit),
            max_controls: circuit.max_controls(),
            active_qudits: circuit.used_qudits().len(),
        }
    }
}

/// Statistics of one pass execution.
#[derive(Debug, Clone)]
pub struct PassStats {
    /// Name of the pass.
    pub pass: String,
    /// Profile of the input circuit.
    pub before: CircuitProfile,
    /// Profile of the output circuit.
    pub after: CircuitProfile,
    /// Wall-clock time the pass took.
    pub elapsed: Duration,
    /// Lowering-cache hit/miss tally of the pass — `Some` whenever the
    /// pipeline ran with a [`CacheMode`] other than [`CacheMode::Off`]
    /// (zero for passes that do not consult the cache), `None` otherwise.
    pub cache: Option<CacheCounters>,
}

impl PassStats {
    /// Signed change in gate count (negative when the pass removed gates).
    pub fn gate_delta(&self) -> i64 {
        self.after.gates as i64 - self.before.gates as i64
    }

    /// Signed change in depth.
    pub fn depth_delta(&self) -> i64 {
        self.after.depth as i64 - self.before.depth as i64
    }
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: gates {} -> {}, depth {} -> {}, {:.1} µs",
            self.pass,
            self.before.gates,
            self.after.gates,
            self.before.depth,
            self.after.depth,
            self.elapsed.as_secs_f64() * 1e6,
        )?;
        if let Some(cache) = self.cache.filter(|c| c.total() > 0) {
            write!(
                f,
                ", cache {}/{} hits ({:.0}%)",
                cache.hits,
                cache.total(),
                cache.hit_rate() * 100.0
            )?;
        }
        Ok(())
    }
}

/// The result of running a [`PassManager`]: the final circuit plus one
/// [`PassStats`] entry per pass, in execution order.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The circuit after every pass has run.
    pub circuit: Circuit,
    /// Per-pass statistics, in execution order.
    pub stats: Vec<PassStats>,
}

impl PipelineReport {
    /// Total wall-clock time across all passes.
    pub fn total_elapsed(&self) -> Duration {
        self.stats.iter().map(|s| s.elapsed).sum()
    }

    /// The statistics entry of the named pass, if it ran.
    pub fn stats_for(&self, pass: &str) -> Option<&PassStats> {
        self.stats.iter().find(|s| s.pass == pass)
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stats in &self.stats {
            writeln!(f, "{stats}")?;
        }
        write!(
            f,
            "final: {} gates, depth {}",
            self.circuit.len(),
            circuit_depth(&self.circuit)
        )
    }
}

/// The result of [`PassManager::run_batch`]: one [`PipelineReport`] per
/// input circuit, in input order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job reports, in input order.
    pub reports: Vec<PipelineReport>,
}

impl BatchReport {
    /// Number of compiled circuits.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Returns `true` when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The compiled circuits, in input order.
    pub fn circuits(&self) -> impl Iterator<Item = &Circuit> {
        self.reports.iter().map(|r| &r.circuit)
    }

    /// Merges the per-job statistics into one [`MergedPassStats`] entry per
    /// pipeline stage.
    ///
    /// Merging only sums per-job values, so the result is independent of the
    /// order in which jobs finished — sequential and parallel executions of
    /// the same batch report identical merged gate counts (see
    /// `merged_stats_are_order_independent` in the crate tests).
    pub fn merged_stats(&self) -> Vec<MergedPassStats> {
        merge_pass_stats(self.reports.iter().map(|report| report.stats.as_slice()))
    }

    /// Total wall-clock pass time summed over every job (CPU time, not
    /// elapsed time: concurrent jobs overlap).
    pub fn total_elapsed(&self) -> Duration {
        self.reports.iter().map(PipelineReport::total_elapsed).sum()
    }

    /// The cache tally summed over every job and pass.
    pub fn cache_counters(&self) -> CacheCounters {
        let mut total = CacheCounters::default();
        for merged in self.merged_stats() {
            if let Some(cache) = merged.cache {
                total.merge(cache);
            }
        }
        total
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "batch of {} circuits", self.len())?;
        for merged in self.merged_stats() {
            writeln!(f, "{merged}")?;
        }
        Ok(())
    }
}

/// Per-pass statistics summed over every job of a [`BatchReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedPassStats {
    /// Name of the pass.
    pub pass: String,
    /// Number of jobs the pass ran on.
    pub jobs: usize,
    /// Total input gates across jobs.
    pub gates_before: usize,
    /// Total output gates across jobs.
    pub gates_after: usize,
    /// Total input G-gates across jobs.
    pub g_gates_before: usize,
    /// Total output G-gates across jobs.
    pub g_gates_after: usize,
    /// Summed input depth across jobs (a batch-level depth trajectory; the
    /// depth-scheduling experiments report the per-pass reduction from the
    /// before/after sums).
    pub depth_before: usize,
    /// Summed output depth across jobs.
    pub depth_after: usize,
    /// Total gates removed by fusion across jobs (non-zero only for the
    /// `gate-fusion` stage and its verified wrapper).
    pub fused_gates: usize,
    /// Total wall-clock time across jobs.
    pub elapsed: Duration,
    /// Summed cache tally (`None` when the batch ran uncached).
    pub cache: Option<CacheCounters>,
}

impl fmt::Display for MergedPassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} jobs, gates {} -> {}, depth {} -> {}, {:.1} ms",
            self.pass,
            self.jobs,
            self.gates_before,
            self.gates_after,
            self.depth_before,
            self.depth_after,
            self.elapsed.as_secs_f64() * 1e3,
        )?;
        if let Some(cache) = self.cache.filter(|c| c.total() > 0) {
            write!(
                f,
                ", cache {}/{} hits ({:.0}%)",
                cache.hits,
                cache.total(),
                cache.hit_rate() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Merges the per-run statistics of many pipeline executions (one
/// `[PassStats]` slice per run, all from the same pipeline) into one
/// [`MergedPassStats`] entry per stage.
///
/// Merging only sums per-run values, so the result is independent of the
/// iteration order — this is the primitive behind
/// [`BatchReport::merged_stats`], shared with the facade report types in
/// `qudit-synthesis`.
pub fn merge_pass_stats<'a>(
    runs: impl IntoIterator<Item = &'a [PassStats]>,
) -> Vec<MergedPassStats> {
    let mut merged: Vec<MergedPassStats> = Vec::new();
    for stats_run in runs {
        for (position, stats) in stats_run.iter().enumerate() {
            if merged.len() == position {
                merged.push(MergedPassStats {
                    pass: stats.pass.clone(),
                    jobs: 0,
                    gates_before: 0,
                    gates_after: 0,
                    g_gates_before: 0,
                    g_gates_after: 0,
                    depth_before: 0,
                    depth_after: 0,
                    fused_gates: 0,
                    elapsed: Duration::ZERO,
                    cache: None,
                });
            }
            let entry = &mut merged[position];
            debug_assert_eq!(
                entry.pass, stats.pass,
                "merged runs must come from the same pipeline"
            );
            entry.jobs += 1;
            entry.gates_before += stats.before.gates;
            entry.gates_after += stats.after.gates;
            entry.g_gates_before += stats.before.g_gates;
            entry.g_gates_after += stats.after.g_gates;
            entry.depth_before += stats.before.depth;
            entry.depth_after += stats.after.depth;
            if matches!(stats.pass.as_str(), "gate-fusion" | "verify(gate-fusion)") {
                entry.fused_gates += stats.before.gates.saturating_sub(stats.after.gates);
            }
            entry.elapsed += stats.elapsed;
            if let Some(cache) = stats.cache {
                entry
                    .cache
                    .get_or_insert_with(CacheCounters::default)
                    .merge(cache);
            }
        }
    }
    merged
}

/// Composes [`Pass`]es into a pipeline and records per-pass statistics.
///
/// Optionally pins the register shape (dimension and width) the pipeline is
/// built for, rejecting mismatched circuits up front.
///
/// # Example
///
/// ```
/// use qudit_core::pipeline::{CancelInversePairs, LowerToGGates, PassManager};
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Add(2),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
/// let manager = PassManager::new()
///     .with_pass(LowerToGGates)
///     .with_pass(CancelInversePairs)
///     .with_shape(d, 2);
/// let report = manager.run(circuit)?;
/// assert_eq!(report.stats.len(), 2);
/// assert!(report.circuit.gates().iter().all(|g| g.is_g_gate()));
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    shape: Option<(crate::dimension::Dimension, usize)>,
    cache: CacheMode,
    pool: Option<WorkStealingPool>,
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Appends a pass (builder style).
    #[must_use]
    pub fn with_pass(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a boxed pass.
    pub fn push_pass(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Pins the register shape: [`PassManager::run`] will reject circuits
    /// whose dimension or width differs.
    #[must_use]
    pub fn with_shape(mut self, dimension: crate::dimension::Dimension, width: usize) -> Self {
        self.shape = Some((dimension, width));
        self
    }

    /// Selects how runs provision the lowering cache (see [`CacheMode`]).
    #[must_use]
    pub fn with_cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }

    /// The configured cache mode.
    pub fn cache_mode(&self) -> &CacheMode {
        &self.cache
    }

    /// Pins the worker pool the manager's runs use: [`PassManager::run_batch`]
    /// distributes jobs on it, and every parallel-capable pass receives it
    /// through [`PassContext::pool`] instead of sizing a fresh pool from the
    /// environment.
    #[must_use]
    pub fn with_pool(mut self, pool: WorkStealingPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The configured worker pool, if one was pinned (cloned: persistent
    /// pools share their crew through the clone).
    pub fn pool(&self) -> Option<WorkStealingPool> {
        self.pool.clone()
    }

    /// Rebuilds the pipeline with every pass transformed by `wrap` — the
    /// hook decorating wrappers (such as `qudit-sim`'s `VerifyEquivalence`)
    /// use to instrument an existing pipeline.
    #[must_use]
    pub fn map_passes(self, wrap: impl FnMut(Box<dyn Pass>) -> Box<dyn Pass>) -> Self {
        PassManager {
            passes: self.passes.into_iter().map(wrap).collect(),
            shape: self.shape,
            cache: self.cache,
            pool: self.pool,
        }
    }

    /// The names of the passes, in execution order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Number of passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Returns `true` when the pipeline has no passes.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs every pass in order, profiling the circuit before and after
    /// each one.
    ///
    /// # Errors
    ///
    /// Returns the first pass error, or [`QuditError::IncompatibleCircuits`]
    /// when the circuit does not match a pinned shape.
    pub fn run(&self, circuit: Circuit) -> Result<PipelineReport> {
        if let Some((dimension, width)) = self.shape {
            if circuit.dimension() != dimension || circuit.width() != width {
                return Err(QuditError::IncompatibleCircuits {
                    reason: format!(
                        "pipeline was built for d={dimension}, width={width} but got d={}, width={}",
                        circuit.dimension(),
                        circuit.width()
                    ),
                });
            }
        }
        let cache = match &self.cache {
            CacheMode::Off => None,
            CacheMode::PerRun => Some(Arc::new(LoweringCache::new())),
            CacheMode::Shared(cache) => Some(cache.clone()),
        };
        let mut current = circuit;
        let mut stats = Vec::with_capacity(self.passes.len());
        // Each pass's input profile is the previous pass's output profile;
        // profile each intermediate circuit only once.
        let mut before = CircuitProfile::of(&current);
        for pass in &self.passes {
            let mut ctx = match &cache {
                Some(cache) => PassContext::with_cache(cache.clone()),
                None => PassContext::new(),
            };
            if let Some(pool) = &self.pool {
                ctx = ctx.with_pool(pool.clone());
            }
            let start = Instant::now();
            current = pass.run_with(current, &mut ctx)?;
            let elapsed = start.elapsed();
            let after = CircuitProfile::of(&current);
            stats.push(PassStats {
                pass: pass.name().to_string(),
                before,
                after,
                elapsed,
                cache: cache.is_some().then(|| ctx.counters()),
            });
            before = after;
        }
        Ok(PipelineReport {
            circuit: current,
            stats,
        })
    }

    /// Compiles many circuits concurrently — on the pool pinned with
    /// [`PassManager::with_pool`], or a default-sized [`WorkStealingPool`]
    /// otherwise — returning one [`PipelineReport`] per circuit (in input
    /// order) inside a [`BatchReport`].
    ///
    /// Every job runs the same pipeline; with [`CacheMode::PerRun`] each job
    /// gets a private cache (deterministic statistics), while
    /// [`CacheMode::Shared`] lets concurrent jobs reuse each other's
    /// lowerings through the `RwLock`-protected shared cache.
    ///
    /// # Errors
    ///
    /// Returns the first job error in input order (later jobs still run).
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_core::pipeline::{CacheMode, LowerToGGates, PassManager};
    /// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let d = Dimension::new(3)?;
    /// let circuits: Vec<Circuit> = (1..=4)
    ///     .map(|level| {
    ///         let mut c = Circuit::new(d, 2);
    ///         c.push(Gate::controlled(
    ///             SingleQuditOp::Add(level % 2 + 1),
    ///             QuditId::new(1),
    ///             vec![Control::level(QuditId::new(0), 2)],
    ///         ))?;
    ///         Ok::<_, qudit_core::QuditError>(c)
    ///     })
    ///     .collect::<Result<_, _>>()?;
    ///
    /// let manager = PassManager::new()
    ///     .with_pass(LowerToGGates)
    ///     .with_cache(CacheMode::PerRun);
    /// let batch = manager.run_batch(circuits)?;
    /// assert_eq!(batch.len(), 4);
    /// let merged = batch.merged_stats();
    /// assert_eq!(merged[0].pass, "lower-to-g-gates");
    /// assert_eq!(merged[0].jobs, 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_batch(&self, circuits: Vec<Circuit>) -> Result<BatchReport> {
        self.run_batch_on(circuits, &self.pool.clone().unwrap_or_default())
    }

    /// [`PassManager::run_batch`] on a caller-provided pool.
    ///
    /// # Errors
    ///
    /// See [`PassManager::run_batch`].
    pub fn run_batch_on(
        &self,
        circuits: Vec<Circuit>,
        pool: &WorkStealingPool,
    ) -> Result<BatchReport> {
        let results = pool.map(circuits, |circuit| self.run(circuit));
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        Ok(BatchReport { reports })
    }

    /// [`PassManager::run_batch_on`] over borrowed circuits: each job is
    /// cloned by the worker that compiles it, so a borrowing caller (such
    /// as `Compiler::compile_batch` in `qudit-synthesis`) pays no up-front
    /// copy of the whole batch.
    ///
    /// # Errors
    ///
    /// See [`PassManager::run_batch`].
    pub fn run_batch_refs(
        &self,
        circuits: &[Circuit],
        pool: &WorkStealingPool,
    ) -> Result<BatchReport> {
        let results = pool.map(circuits.iter().collect(), |circuit: &Circuit| {
            self.run(circuit.clone())
        });
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        Ok(BatchReport { reports })
    }

    /// Runs the pipeline and returns only the final circuit.
    ///
    /// # Errors
    ///
    /// See [`PassManager::run`].
    pub fn run_circuit(&self, circuit: Circuit) -> Result<Circuit> {
        Ok(self.run(circuit)?.circuit)
    }
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("shape", &self.shape)
            .field("cache", &self.cache)
            .field("pool", &self.pool)
            .finish()
    }
}

/// The pool a parallel-capable pass should fan out on, or `None` when it
/// must stay sequential.
///
/// Sequential cases: the calling thread is already a pool worker (a nested
/// pool per pass would oversubscribe the machine quadratically), or the
/// effective pool has a single worker.  Otherwise the run's pinned pool
/// ([`PassManager::with_pool`]) wins, falling back to a fresh
/// environment-sized [`WorkStealingPool`] as before pooled managers existed.
fn parallel_pool(ctx: &PassContext) -> Option<WorkStealingPool> {
    if crate::pool::in_worker() {
        return None;
    }
    let pool = ctx.pool().unwrap_or_default();
    (pool.threads() > 1).then_some(pool)
}

/// A data-driven pipeline description: ordered stage names plus the
/// register shape and cache mode of the assembled [`PassManager`].
///
/// Specs carry *data only* — resolving a stage name to a concrete [`Pass`]
/// is the job of a [`PassRegistry`].  Configuration surfaces (such as
/// `qudit-synthesis`'s `CompileOptions`) translate their typed knobs into a
/// spec, so two option sets can be compared structurally (same stages ⇒
/// same pipeline) and a new pass only needs a registry entry.
///
/// # Example
///
/// ```
/// use qudit_core::pipeline::{PassRegistry, PipelineSpec};
///
/// let spec = PipelineSpec::new()
///     .with_stage("lower-to-g-gates")
///     .with_stage("cancel-inverse-pairs");
/// let manager = PassRegistry::core().assemble(&spec).unwrap();
/// assert_eq!(
///     manager.pass_names(),
///     vec!["lower-to-g-gates", "cancel-inverse-pairs"]
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineSpec {
    /// Stage names, in execution order (resolved by a [`PassRegistry`]).
    pub stages: Vec<String>,
    /// Register shape the manager is pinned to, if any
    /// (see [`PassManager::with_shape`]).
    pub shape: Option<(crate::dimension::Dimension, usize)>,
    /// Cache provisioning of the assembled manager.
    pub cache: CacheMode,
}

impl PipelineSpec {
    /// An empty spec.
    pub fn new() -> Self {
        PipelineSpec::default()
    }

    /// Appends a stage (builder style).
    #[must_use]
    pub fn with_stage(mut self, name: impl Into<String>) -> Self {
        self.stages.push(name.into());
        self
    }

    /// Pins the register shape of the assembled manager.
    #[must_use]
    pub fn with_shape(mut self, dimension: crate::dimension::Dimension, width: usize) -> Self {
        self.shape = Some((dimension, width));
        self
    }

    /// Selects the cache mode of the assembled manager.
    #[must_use]
    pub fn with_cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }
}

/// A factory producing a fresh boxed [`Pass`] per assembled pipeline.
pub type PassFactory = Box<dyn Fn() -> Box<dyn Pass> + Send + Sync>;

/// Maps stage names to pass factories, and assembles [`PassManager`]s from
/// [`PipelineSpec`]s.
///
/// [`PassRegistry::core`] registers the passes this crate owns; downstream
/// crates extend the registry with theirs (`qudit-synthesis` adds
/// `lower-to-elementary`).  Unknown stage names fail assembly with
/// [`QuditError::UnknownPass`] instead of silently dropping the stage.
pub struct PassRegistry {
    factories: BTreeMap<String, PassFactory>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PassRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// The registry of the core passes: `gate-fusion` ([`GateFusion`]),
    /// `lower-to-g-gates` ([`LowerToGGates`]), `cancel-inverse-pairs`
    /// ([`CancelInversePairs`]) and `schedule-depth` ([`ScheduleDepth`]).
    pub fn core() -> Self {
        let mut registry = PassRegistry::new();
        registry.register("gate-fusion", || Box::new(GateFusion));
        registry.register("lower-to-g-gates", || Box::new(LowerToGGates));
        registry.register("cancel-inverse-pairs", || Box::new(CancelInversePairs));
        registry.register("schedule-depth", || Box::new(ScheduleDepth));
        registry
    }

    /// Registers (or replaces) the factory for a stage name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Pass> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Returns `true` when a factory is registered for the stage name.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// The registered stage names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Assembles a [`PassManager`] from a spec: one factory-built pass per
    /// stage, plus the spec's shape pin and cache mode.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::UnknownPass`] naming the first stage with no
    /// registered factory.
    pub fn assemble(&self, spec: &PipelineSpec) -> Result<PassManager> {
        let mut manager = PassManager::new();
        for stage in &spec.stages {
            let factory = self
                .factories
                .get(stage)
                .ok_or_else(|| QuditError::UnknownPass {
                    stage: stage.clone(),
                })?;
            manager.push_pass(factory());
        }
        if let Some((dimension, width)) = spec.shape {
            manager = manager.with_shape(dimension, width);
        }
        Ok(manager.with_cache(spec.cache.clone()))
    }
}

impl Default for PassRegistry {
    fn default() -> Self {
        PassRegistry::new()
    }
}

impl fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassRegistry")
            .field("stages", &self.names())
            .finish()
    }
}

/// Pass composing runs of same-support classical single-qudit gates into
/// one permutation gate (wraps [`crate::fusion::fuse_circuit`]).
///
/// Runs are rewritten only when the composed permutation strictly lowers
/// the transposition count (or is the identity, where the run is dropped),
/// so the pass never increases the lowered G-gate cost.  It runs best on
/// macro-level circuits, before `lower-to-g-gates` breaks the runs apart.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateFusion;

impl Pass for GateFusion {
    fn name(&self) -> &str {
        "gate-fusion"
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        crate::fusion::fuse_circuit(&circuit)
    }
}

/// Pass removing adjacent gate/inverse pairs
/// (wraps [`crate::optimize::cancel_inverse_pairs`]).
///
/// The pass is parallel: circuits longer than
/// [`optimize::CANCEL_WINDOW_SIZE`] gates are reduced window-by-window on a
/// [`WorkStealingPool`] ([`optimize::cancel_inverse_pairs_on`]) — unless the
/// calling thread is already a pool worker, where the sequential reduction
/// avoids nested pools.  The windowed reduction is deterministic in the
/// circuit alone, so every execution mode produces the identical circuit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CancelInversePairs;

impl Pass for CancelInversePairs {
    fn name(&self) -> &str {
        "cancel-inverse-pairs"
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        self.run_with(circuit, &mut PassContext::new())
    }

    fn run_with(&self, circuit: Circuit, ctx: &mut PassContext) -> Result<Circuit> {
        if circuit.len() > optimize::CANCEL_WINDOW_SIZE {
            if let Some(pool) = parallel_pool(ctx) {
                return Ok(optimize::cancel_inverse_pairs_on(&circuit, &pool));
            }
        }
        Ok(optimize::cancel_inverse_pairs(&circuit))
    }
}

/// Pass lowering gates with at most one control to the elementary G-gate set
/// `{Xij} ∪ {|0⟩-X01}` (wraps [`crate::lowering::lower_circuit`]).
///
/// Gates with two or more controls make this pass fail; lower them first
/// with `qudit-synthesis`'s `LowerToElementary` pass.
///
/// The pass is cache-aware and parallel: when the run's [`PassContext`]
/// carries a [`LoweringCache`] each gate kind is expanded once per
/// `(kind, dimension, width-class)`, and circuits above
/// [`lowering::PARALLEL_GATE_THRESHOLD`] gates are lowered gate-parallel on
/// a [`WorkStealingPool`].  Both paths produce exactly the sequential
/// output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerToGGates;

impl Pass for LowerToGGates {
    fn name(&self) -> &str {
        "lower-to-g-gates"
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        lowering::lower_circuit(&circuit)
    }

    fn run_with(&self, circuit: Circuit, ctx: &mut PassContext) -> Result<Circuit> {
        dispatch_lowering_pass(
            circuit,
            ctx,
            lowering::lower_circuit,
            lowering::lower_circuit_cached,
            lowering::lower_circuit_parallel,
        )
    }
}

/// The cache/parallel dispatch shared by the lowering passes
/// (`LowerToGGates` here, `LowerToElementary` in `qudit-synthesis`).
///
/// Circuits above [`lowering::PARALLEL_GATE_THRESHOLD`] gates run through
/// `parallel` on a fresh pool — unless the calling thread is already a pool
/// worker ([`crate::pool::in_worker`]), where a nested pool per pass would
/// oversubscribe the machine quadratically.  Otherwise the pass runs
/// `cached` when the context carries a cache, and `plain` when it does not.
/// Cache tallies are recorded into the context either way.
pub fn dispatch_lowering_pass<Plain, Cached, Parallel>(
    circuit: Circuit,
    ctx: &mut PassContext,
    plain: Plain,
    cached: Cached,
    parallel: Parallel,
) -> Result<Circuit>
where
    Plain: FnOnce(&Circuit) -> Result<Circuit>,
    Cached: FnOnce(&Circuit, &LoweringCache, &mut CacheCounters) -> Result<Circuit>,
    Parallel: FnOnce(
        &Circuit,
        Option<&LoweringCache>,
        &WorkStealingPool,
    ) -> Result<(Circuit, CacheCounters)>,
{
    let cache = ctx.cache().cloned();
    if circuit.len() >= lowering::PARALLEL_GATE_THRESHOLD {
        if let Some(pool) = parallel_pool(ctx) {
            let (out, counters) = parallel(&circuit, cache.as_deref(), &pool)?;
            ctx.record(counters);
            return Ok(out);
        }
    }
    match cache {
        Some(cache) => {
            let mut counters = CacheCounters::default();
            let out = cached(&circuit, &cache, &mut counters)?;
            ctx.record(counters);
            Ok(out)
        }
        None => plain(&circuit),
    }
}

/// Pass reordering commuting gates to minimise circuit depth (wraps
/// [`crate::commute::schedule_depth`]).
///
/// Only gate pairs the commutation oracle ([`commute::gates_commute`])
/// proves commuting change relative order, so the output implements exactly
/// the input's operator; the output's depth never exceeds the input's, and
/// the pass is idempotent — a second run returns its input unchanged.
///
/// Circuits of at least [`commute::PARALLEL_SCHEDULE_THRESHOLD`] gates
/// build the dependency DAG gate-parallel on a [`WorkStealingPool`] —
/// unless the calling thread is already a pool worker, where the sequential
/// build avoids nested pools.  The DAG depends only on the circuit, so
/// every execution mode produces the identical schedule.
///
/// # Example
///
/// ```
/// use qudit_core::depth::circuit_depth;
/// use qudit_core::pipeline::{PassManager, ScheduleDepth};
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 3);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
/// circuit.push(Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(1)))?;
///
/// let report = PassManager::new().with_pass(ScheduleDepth).run(circuit)?;
/// let stats = &report.stats[0];
/// assert_eq!(stats.pass, "schedule-depth");
/// assert!(stats.after.depth < stats.before.depth);
/// assert_eq!(circuit_depth(&report.circuit), stats.after.depth);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleDepth;

impl Pass for ScheduleDepth {
    fn name(&self) -> &str {
        "schedule-depth"
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        self.run_with(circuit, &mut PassContext::new())
    }

    fn run_with(&self, circuit: Circuit, ctx: &mut PassContext) -> Result<Circuit> {
        if circuit.len() >= commute::PARALLEL_SCHEDULE_THRESHOLD {
            if let Some(pool) = parallel_pool(ctx) {
                return Ok(commute::schedule_depth_on(&circuit, &pool));
            }
        }
        Ok(commute::schedule_depth(&circuit))
    }
}

/// An ad-hoc pass built from a closure; see [`pass_fn`].
pub struct FnPass<F> {
    name: String,
    run: F,
}

impl<F: Fn(Circuit) -> Result<Circuit> + Send + Sync> Pass for FnPass<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, circuit: Circuit) -> Result<Circuit> {
        (self.run)(circuit)
    }
}

/// Wraps a closure as a [`Pass`], for one-off transformations and tests.
pub fn pass_fn<F: Fn(Circuit) -> Result<Circuit> + Send + Sync>(
    name: impl Into<String>,
    run: F,
) -> FnPass<F> {
    FnPass {
        name: name.into(),
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::dimension::Dimension;
    use crate::gate::Gate;
    use crate::ops::SingleQuditOp;
    use crate::qudit::QuditId;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn sample_circuit() -> Circuit {
        let mut circuit = Circuit::new(dim(3), 2);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Add(1),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 2)],
            ))
            .unwrap();
        circuit
    }

    #[test]
    fn empty_manager_is_identity() {
        let circuit = sample_circuit();
        let report = PassManager::new().run(circuit.clone()).unwrap();
        assert_eq!(report.circuit, circuit);
        assert!(report.stats.is_empty());
        assert!(PassManager::new().is_empty());
    }

    #[test]
    fn passes_run_in_order_and_record_stats() {
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs);
        assert_eq!(
            manager.pass_names(),
            vec!["lower-to-g-gates", "cancel-inverse-pairs"]
        );
        let report = manager.run(sample_circuit()).unwrap();
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        assert_eq!(report.stats.len(), 2);
        assert_eq!(report.stats[0].pass, "lower-to-g-gates");
        assert_eq!(report.stats[0].before.gates, 1);
        assert_eq!(report.stats[0].after.gates, report.stats[1].before.gates);
        assert_eq!(report.stats[1].after.gates, report.circuit.len());
        assert!(report.stats_for("lower-to-g-gates").is_some());
        assert!(report.stats_for("nonexistent").is_none());
        assert!(report.total_elapsed() >= Duration::ZERO);
    }

    #[test]
    fn g_gate_lowering_preserves_basis_action() {
        let circuit = sample_circuit();
        let lowered = PassManager::new()
            .with_pass(LowerToGGates)
            .run_circuit(circuit.clone())
            .unwrap();
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(
                    circuit.apply_to_basis(&[a, b]).unwrap(),
                    lowered.apply_to_basis(&[a, b]).unwrap()
                );
            }
        }
    }

    #[test]
    fn shape_pinning_rejects_mismatched_circuits() {
        let manager = PassManager::new()
            .with_pass(CancelInversePairs)
            .with_shape(dim(3), 3);
        assert!(matches!(
            manager.run(sample_circuit()),
            Err(QuditError::IncompatibleCircuits { .. })
        ));
        let ok = PassManager::new()
            .with_pass(CancelInversePairs)
            .with_shape(dim(3), 2);
        assert!(ok.run(sample_circuit()).is_ok());
    }

    #[test]
    fn fn_pass_and_map_passes_compose() {
        let reverse = pass_fn("reverse", |c: Circuit| Ok(c.inverse()));
        let manager = PassManager::new().with_pass(reverse);
        let report = manager.run(sample_circuit()).unwrap();
        assert_eq!(report.stats[0].pass, "reverse");

        // Decorate every pass with a renaming wrapper.
        struct Renamed {
            name: String,
            inner: Box<dyn Pass>,
        }
        impl Pass for Renamed {
            fn name(&self) -> &str {
                &self.name
            }
            fn run(&self, circuit: Circuit) -> Result<Circuit> {
                self.inner.run(circuit)
            }
        }
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .map_passes(|inner| {
                Box::new(Renamed {
                    name: format!("wrapped({})", inner.name()),
                    inner,
                })
            });
        assert_eq!(manager.pass_names(), vec!["wrapped(lower-to-g-gates)"]);
        assert!(manager.run(sample_circuit()).is_ok());
    }

    #[test]
    fn pass_errors_propagate() {
        let failing = pass_fn("fail", |_| {
            Err(QuditError::PassFailed {
                pass: "fail".into(),
                reason: "boom".into(),
            })
        });
        let manager = PassManager::new().with_pass(failing);
        assert!(matches!(
            manager.run(sample_circuit()),
            Err(QuditError::PassFailed { .. })
        ));
    }

    #[test]
    fn profile_counts_are_consistent() {
        let circuit = sample_circuit();
        let profile = CircuitProfile::of(&circuit);
        assert_eq!(profile.gates, 1);
        assert_eq!(profile.two_qudit_gates, 1);
        assert_eq!(profile.depth, 1);
        assert_eq!(profile.max_controls, 1);
        assert_eq!(profile.active_qudits, 2);
        assert_eq!(profile.g_gates, 0);
    }

    #[test]
    fn uncached_runs_report_no_cache_stats() {
        let report = PassManager::new()
            .with_pass(LowerToGGates)
            .run(sample_circuit())
            .unwrap();
        assert!(report.stats[0].cache.is_none());
    }

    #[test]
    fn per_run_cache_reports_deterministic_counters() {
        let mut circuit = Circuit::new(dim(3), 3);
        for target in [1, 2] {
            circuit
                .push(Gate::controlled(
                    SingleQuditOp::Add(1),
                    QuditId::new(target),
                    vec![Control::level(QuditId::new(0), 2)],
                ))
                .unwrap();
        }
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_cache(CacheMode::PerRun);
        let first = manager.run(circuit.clone()).unwrap();
        let second = manager.run(circuit).unwrap();
        let counters = first.stats[0].cache.expect("caching enabled");
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
        // A fresh cache per run: the second run repeats the same tally.
        assert_eq!(second.stats[0].cache, first.stats[0].cache);
    }

    #[test]
    fn shared_cache_carries_entries_across_runs() {
        let cache = crate::cache::LoweringCache::shared();
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_cache(CacheMode::Shared(cache.clone()));
        manager.run(sample_circuit()).unwrap();
        let second = manager.run(sample_circuit()).unwrap();
        let counters = second.stats[0].cache.expect("caching enabled");
        assert_eq!(counters.misses, 0, "second run must reuse the shared cache");
        assert!(counters.hits > 0);
        assert!(cache.counters().hits > 0);
    }

    #[test]
    fn cached_runs_produce_the_uncached_circuit() {
        let plain = PassManager::new()
            .with_pass(LowerToGGates)
            .run(sample_circuit())
            .unwrap();
        let cached = PassManager::new()
            .with_pass(LowerToGGates)
            .with_cache(CacheMode::PerRun)
            .run(sample_circuit())
            .unwrap();
        assert_eq!(plain.circuit, cached.circuit);
    }

    #[test]
    fn run_batch_matches_sequential_runs() {
        let circuits: Vec<Circuit> = (0..6).map(|_| sample_circuit()).collect();
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs)
            .with_cache(CacheMode::PerRun);
        let sequential: Vec<PipelineReport> = circuits
            .iter()
            .map(|c| manager.run(c.clone()).unwrap())
            .collect();
        let batch = manager
            .run_batch_on(circuits, &crate::pool::WorkStealingPool::with_threads(4))
            .unwrap();
        assert_eq!(batch.len(), sequential.len());
        for (batch_report, reference) in batch.reports.iter().zip(&sequential) {
            assert_eq!(batch_report.circuit, reference.circuit);
            for (a, b) in batch_report.stats.iter().zip(&reference.stats) {
                assert_eq!(a.pass, b.pass);
                assert_eq!(a.before, b.before);
                assert_eq!(a.after, b.after);
                assert_eq!(a.cache, b.cache);
            }
        }
    }

    #[test]
    fn merged_stats_are_order_independent() {
        let circuits: Vec<Circuit> = (0..5).map(|_| sample_circuit()).collect();
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs)
            .with_cache(CacheMode::PerRun);
        let batch = manager.run_batch(circuits).unwrap();
        let merged = batch.merged_stats();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].jobs, 5);

        // Any permutation of the job reports merges to the same statistics.
        let mut rotated = batch.clone();
        rotated.reports.rotate_left(2);
        let mut reversed = batch.clone();
        reversed.reports.reverse();
        assert_eq!(rotated.merged_stats(), merged);
        assert_eq!(reversed.merged_stats(), merged);
        assert!(batch.cache_counters().total() > 0);
    }

    #[test]
    fn run_batch_returns_the_first_error_in_input_order() {
        let manager = PassManager::new()
            .with_pass(CancelInversePairs)
            .with_shape(dim(3), 2);
        let good = sample_circuit();
        let bad = Circuit::new(dim(3), 5);
        let result = manager.run_batch(vec![good, bad]);
        assert!(matches!(
            result,
            Err(QuditError::IncompatibleCircuits { .. })
        ));
    }

    #[test]
    fn registry_assembles_managers_from_specs() {
        let spec = PipelineSpec::new()
            .with_stage("lower-to-g-gates")
            .with_stage("cancel-inverse-pairs")
            .with_stage("schedule-depth")
            .with_shape(dim(3), 2)
            .with_cache(CacheMode::PerRun);
        let manager = PassRegistry::core().assemble(&spec).unwrap();
        assert_eq!(
            manager.pass_names(),
            vec!["lower-to-g-gates", "cancel-inverse-pairs", "schedule-depth"]
        );
        assert!(matches!(manager.cache_mode(), CacheMode::PerRun));
        let report = manager.run(sample_circuit()).unwrap();
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        // The shape pin made it through assembly.
        assert!(manager.run(Circuit::new(dim(3), 4)).is_err());
    }

    #[test]
    fn unknown_stages_fail_assembly() {
        let spec = PipelineSpec::new().with_stage("route-qudits");
        match PassRegistry::core().assemble(&spec) {
            Err(QuditError::UnknownPass { stage }) => assert_eq!(stage, "route-qudits"),
            other => panic!("expected UnknownPass, got {other:?}"),
        }
        assert!(!PassRegistry::core().contains("route-qudits"));
        assert!(PassRegistry::core().contains("schedule-depth"));
    }

    #[test]
    fn registered_stages_extend_the_core_set() {
        let mut registry = PassRegistry::core();
        registry.register("reverse", || {
            Box::new(pass_fn("reverse", |c: Circuit| Ok(c.inverse())))
        });
        let spec = PipelineSpec::new()
            .with_stage("reverse")
            .with_stage("lower-to-g-gates");
        let manager = registry.assemble(&spec).unwrap();
        assert_eq!(manager.pass_names(), vec!["reverse", "lower-to-g-gates"]);
        assert!(manager.run(sample_circuit()).is_ok());
    }

    #[test]
    fn pinned_pools_reach_passes_and_batches() {
        // A pinned single-worker pool forces the sequential paths; a
        // multi-worker one the parallel paths.  Outputs are identical either
        // way (pinned by the determinism suites); here we check the pool
        // plumbing itself.
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs)
            .with_pool(WorkStealingPool::with_threads(2));
        assert_eq!(manager.pool().map(|p| p.threads()), Some(2));
        let report = manager.run(sample_circuit()).unwrap();
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        // `map_passes` keeps the pool.
        let wrapped = manager.map_passes(|p| p);
        assert_eq!(wrapped.pool().map(|p| p.threads()), Some(2));
        // `run_batch` uses the pinned pool (smoke: results still correct).
        let batch = wrapped
            .run_batch((0..4).map(|_| sample_circuit()).collect())
            .unwrap();
        assert_eq!(batch.len(), 4);

        // The context hands the pinned pool to passes.
        let ctx = PassContext::new().with_pool(WorkStealingPool::with_threads(3));
        assert_eq!(ctx.pool().map(|p| p.threads()), Some(3));
        assert!(PassContext::new().pool().is_none());
    }

    #[test]
    fn merge_pass_stats_matches_batch_merging() {
        let circuits: Vec<Circuit> = (0..4).map(|_| sample_circuit()).collect();
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs)
            .with_cache(CacheMode::PerRun);
        let reports: Vec<PipelineReport> = circuits
            .iter()
            .map(|c| manager.run(c.clone()).unwrap())
            .collect();
        let direct = merge_pass_stats(reports.iter().map(|r| r.stats.as_slice()));
        let via_batch = BatchReport { reports }.merged_stats();
        assert_eq!(direct, via_batch);
        assert_eq!(direct.len(), 2);
        assert_eq!(direct[0].jobs, 4);
    }

    #[test]
    fn stats_display_and_deltas() {
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs);
        let report = manager.run(sample_circuit()).unwrap();
        let lowering = &report.stats[0];
        assert!(lowering.gate_delta() > 0);
        assert!(lowering.to_string().contains("lower-to-g-gates"));
        assert!(report.to_string().contains("final:"));
    }
}
