//! Commutation analysis: the structural commutation oracle, the gate
//! dependency DAG, and the commutation-aware ASAP depth scheduler.
//!
//! Gate count is the paper's primary cost metric, but *depth* — the number
//! of layers when gates on disjoint qudits run in parallel — is the
//! wall-clock proxy on real hardware.  The greedy layering of
//! [`crate::depth::circuit_depth`] respects the emission order of the
//! gates; the synthesis constructions, however, interleave conjugation
//! sandwiches on different wires in whatever order the recursion emits
//! them, so the emitted order is rarely the depth-minimal one.  Reordering
//! *commuting* gates changes nothing about the circuit's semantics while
//! potentially packing its layers much tighter.
//!
//! This module provides the three pieces of that optimisation:
//!
//! * [`gates_commute`] — a cheap, **sound** structural commutation oracle:
//!   when it returns `true` the two gates provably commute as operators;
//!   when it returns `false` they may or may not (completeness is partial,
//!   see the rule table below);
//! * [`DependencyDag`] — the dependency DAG of a circuit under the oracle:
//!   an edge `i → j` (for `i < j`) records that gate `j` must stay after
//!   gate `i` because the oracle could not prove them commuting.  Building
//!   the DAG is embarrassingly parallel per gate and fans out over a
//!   [`WorkStealingPool`] for large circuits ([`DependencyDag::build_on`]);
//! * [`schedule_depth`] / [`schedule_depth_on`] — an as-soon-as-possible
//!   list scheduler: each gate is placed in the earliest layer that
//!   respects its dependencies *and* has all of its wires free (first-fit,
//!   so a late gate may slide into an idle-wire hole that the emission
//!   order left behind).  The scheduled circuit is a permutation of the
//!   input in which only oracle-commuting gates changed relative order,
//!   its [`circuit_depth`](crate::depth::circuit_depth) never exceeds the
//!   input's, and scheduling is idempotent.  The scheduler fuses the DAG
//!   scan into layer assignment (only the *maximum* predecessor layer
//!   matters, so most pair checks are pruned before the oracle runs);
//!   [`schedule_over`] is the unfused reference over an explicit DAG, and
//!   the two are pinned equal by the test suite.
//!
//! # Oracle rules
//!
//! A gate *writes* its target and *reads* its controls and (for the
//! value-controlled shift `X±⋆`) its source.  For every qudit shared by
//! the two gates, one of the following must hold — otherwise the oracle
//! conservatively answers `false`:
//!
//! | shared qudit is…           | commutes when…                                        |
//! |----------------------------|-------------------------------------------------------|
//! | read by both gates         | always (both act block-diagonally in its basis)       |
//! | written by both (same target) | the two target operations commute (additive ops always; diagonal ops always; classical ops by permutation check; unitaries by `d × d` commutator) |
//! | written by one, a control of the other | the writer's operation is diagonal in the computational basis, **or** a fixed classical permutation under which the control predicate is invariant |
//! | written by one, the `X±⋆` source of the other | the writer's operation is diagonal (a diagonal write never changes the source value feeding the shift) |
//!
//! Gates sharing no qudit always commute.
//!
//! # Example
//!
//! ```
//! use qudit_core::commute::{gates_commute, schedule_depth};
//! use qudit_core::depth::circuit_depth;
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! // Two gates sharing only a control: they commute…
//! let a = Gate::controlled(
//!     SingleQuditOp::Swap(0, 1),
//!     QuditId::new(1),
//!     vec![Control::zero(QuditId::new(0))],
//! );
//! let b = Gate::controlled(
//!     SingleQuditOp::Swap(0, 1),
//!     QuditId::new(2),
//!     vec![Control::zero(QuditId::new(0))],
//! );
//! assert!(gates_commute(d, &a, &b));
//! // …but writing a qudit the other reads does not commute structurally.
//! let c = Gate::single(SingleQuditOp::Add(1), QuditId::new(0));
//! assert!(!gates_commute(d, &a, &c));
//!
//! // Scheduling never increases the measured depth.
//! let mut circuit = Circuit::new(d, 3);
//! circuit.push(a)?;
//! circuit.push(b)?;
//! let scheduled = schedule_depth(&circuit);
//! assert!(circuit_depth(&scheduled) <= circuit_depth(&circuit));
//! # Ok(())
//! # }
//! ```

use crate::circuit::Circuit;
use crate::control::ControlPredicate;
use crate::dimension::Dimension;
use crate::gate::{Gate, GateOp};
use crate::math::MATRIX_TOLERANCE;
use crate::ops::{Permutation, SingleQuditOp};
use crate::pool::WorkStealingPool;
use crate::qudit::QuditId;

/// Gate count at and above which the
/// [`ScheduleDepth`](crate::pipeline::ScheduleDepth) pass runs its
/// dependency scans on a [`WorkStealingPool`] instead of sequentially.
pub const PARALLEL_SCHEDULE_THRESHOLD: usize = 256;

/// How a gate uses one of its qudits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// The qudit is the gate's target: the only qudit the gate writes.
    Target,
    /// The qudit is the source of a value-controlled shift `X±⋆`: read, and
    /// its *value* selects the shift applied to the target.
    Source,
    /// The qudit is a control: read through a basis-diagonal predicate.
    Control(ControlPredicate),
}

/// The role a gate assigns to `q`, or `None` when the gate does not touch it.
fn role_of(gate: &Gate, q: QuditId) -> Option<Role> {
    if gate.target() == q {
        return Some(Role::Target);
    }
    if let GateOp::AddFrom { source, .. } = gate.op() {
        if *source == q {
            return Some(Role::Source);
        }
    }
    gate.controls()
        .iter()
        .find(|c| c.qudit == q)
        .map(|c| Role::Control(c.predicate))
}

/// Returns `true` when the operation is a translation `|t⟩ ↦ |t + y mod d⟩`
/// for some (possibly value-dependent) `y` — the abelian subgroup in which
/// any two target operations commute.
fn is_additive(op: &GateOp) -> bool {
    matches!(
        op,
        GateOp::AddFrom { .. } | GateOp::Single(SingleQuditOp::Add(_))
    )
}

/// The fixed level permutation a gate applies to its target, if it has one
/// (`X±⋆` has none: its shift depends on the source value; non-classical
/// unitaries have none either).
fn target_permutation(gate: &Gate, dimension: Dimension) -> Option<Permutation> {
    match gate.op() {
        GateOp::Single(op) => op.to_permutation(dimension).ok(),
        GateOp::AddFrom { .. } => None,
    }
}

/// Returns `true` when the gate's target operation is diagonal in the
/// computational basis.  Controls are basis projectors, so the *whole gate*
/// is then a diagonal operator: it commutes with anything that only reads
/// its target, whatever the control predicate.
fn target_is_diagonal(gate: &Gate, dimension: Dimension) -> bool {
    match gate.op() {
        GateOp::Single(op) => {
            let matrix = op.to_matrix(dimension);
            let size = matrix.size();
            (0..size)
                .all(|r| (0..size).all(|c| r == c || matrix[(r, c)].norm() <= MATRIX_TOLERANCE))
        }
        GateOp::AddFrom { .. } => false,
    }
}

/// Returns `true` when the predicate fires on exactly the same levels before
/// and after the permutation — the condition under which a controlled gate
/// commutes with a classical gate writing its control qudit.
fn predicate_invariant_under(
    predicate: ControlPredicate,
    permutation: &Permutation,
    dimension: Dimension,
) -> bool {
    dimension
        .levels()
        .all(|l| predicate.matches(permutation.apply(l)) == predicate.matches(l))
}

/// Precomputed per-gate facts the oracle consults for every pair.  The DAG
/// builder computes these once per gate instead of once per pair, which is
/// what keeps the oracle cheap on multi-thousand-gate circuits.
struct GateInfo {
    /// The gate's qudits (controls, `X±⋆` source, target), as emitted by
    /// [`Gate::qudits`].
    support: Vec<QuditId>,
    /// The fixed level permutation the gate applies to its target, when it
    /// has one (`None` for `X±⋆`, whose shift depends on the source value,
    /// and for non-permutation unitaries).
    permutation: Option<Permutation>,
    /// Whether the target operation is a translation `|t⟩ ↦ |t + y mod d⟩`.
    additive: bool,
    /// Whether the target operation is diagonal in the computational basis
    /// (the whole gate is then a diagonal operator — controls are basis
    /// projectors).
    diagonal: bool,
}

impl GateInfo {
    fn of(gate: &Gate, dimension: Dimension) -> Self {
        GateInfo {
            support: gate.qudits(),
            permutation: target_permutation(gate, dimension),
            additive: is_additive(gate.op()),
            diagonal: target_is_diagonal(gate, dimension),
        }
    }
}

/// Returns `true` when the two target operations provably commute as
/// `d × d` operators (sound; partial like the gate-level oracle).
fn ops_commute(dimension: Dimension, a: &Gate, ia: &GateInfo, b: &Gate, ib: &GateInfo) -> bool {
    if ia.additive && ib.additive {
        // Translations mod d form an abelian group; this covers `X±⋆`
        // against `X±⋆` and `X+y` in either order.
        return true;
    }
    if ia.diagonal && ib.diagonal {
        // Diagonal matrices always commute — the diagonal-vs-diagonal rule.
        return true;
    }
    match (&ia.permutation, &ib.permutation) {
        // Composition equality checked pointwise — no allocation.
        (Some(pa), Some(pb)) => dimension
            .levels()
            .all(|l| pa.apply(pb.apply(l)) == pb.apply(pa.apply(l))),
        // An `X±⋆` against a non-additive operation: no structural rule.
        _ if !matches!(a.op(), GateOp::Single(_)) || !matches!(b.op(), GateOp::Single(_)) => false,
        // At least one side is a genuine (non-permutation) unitary: fall
        // back to the d × d matrix commutator — still cheap, d is small.
        _ => {
            let (GateOp::Single(a), GateOp::Single(b)) = (a.op(), b.op()) else {
                unreachable!("the arm above filtered non-single operations");
            };
            let ma = a.to_matrix(dimension);
            let mb = b.to_matrix(dimension);
            (&ma * &mb).approx_eq(&(&mb * &ma), MATRIX_TOLERANCE)
        }
    }
}

/// The oracle on precomputed [`GateInfo`] — the allocation-free hot path
/// behind [`gates_commute`].
fn commute_with_info(
    dimension: Dimension,
    a: &Gate,
    ia: &GateInfo,
    b: &Gate,
    ib: &GateInfo,
) -> bool {
    for &q in &ia.support {
        if !ib.support.contains(&q) {
            continue;
        }
        let role_a = role_of(a, q).expect("q comes from a's qudit list");
        let role_b = role_of(b, q).expect("q was found in b's qudit list");
        let compatible = match (role_a, role_b) {
            // Read-read: both gates are block-diagonal in q's basis.
            (Role::Source | Role::Control(_), Role::Source | Role::Control(_)) => true,
            // Write-write: same target; the target operations must commute
            // (the controls only ever substitute the identity, which
            // commutes with everything).
            (Role::Target, Role::Target) => ops_commute(dimension, a, ia, b, ib),
            // Write-read through a control: a diagonal writer is invisible
            // to any basis-diagonal reader; otherwise the writer must apply
            // a fixed classical permutation that the reader's predicate
            // cannot observe.
            (Role::Target, Role::Control(predicate)) => {
                ia.diagonal
                    || ia
                        .permutation
                        .as_ref()
                        .is_some_and(|p| predicate_invariant_under(predicate, p, dimension))
            }
            (Role::Control(predicate), Role::Target) => {
                ib.diagonal
                    || ib
                        .permutation
                        .as_ref()
                        .is_some_and(|p| predicate_invariant_under(predicate, p, dimension))
            }
            // Write-read through an `X±⋆` source: the source *value* feeds
            // the shift, so only a diagonal write (which never changes the
            // value) is compatible.
            (Role::Target, Role::Source) => ia.diagonal,
            (Role::Source, Role::Target) => ib.diagonal,
        };
        if !compatible {
            return false;
        }
    }
    true
}

/// The structural commutation oracle: returns `true` only when `a` and `b`
/// provably commute as operators on the full register.
///
/// The oracle is **sound** (a `true` answer is a proof, checked against the
/// brute-force matrix commutator by the `commutation` property suite) but
/// only partially complete: a `false` answer means "no structural rule
/// applies", not "they do not commute".  See the module docs for the rule
/// table.
///
/// # Example
///
/// ```
/// use qudit_core::commute::gates_commute;
/// use qudit_core::{Control, Dimension, Gate, QuditId, SingleQuditOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(4)?;
/// // Same target, both additive: X+1 and X+2 always commute.
/// let a = Gate::single(SingleQuditOp::Add(1), QuditId::new(0));
/// let b = Gate::single(SingleQuditOp::Add(2), QuditId::new(0));
/// assert!(gates_commute(d, &a, &b));
/// // X+2 preserves parity in d = 4, so it commutes with an |o⟩-control.
/// let odd_controlled = Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::odd(QuditId::new(0))],
/// );
/// assert!(gates_commute(d, &b, &odd_controlled));
/// let plus_one = Gate::single(SingleQuditOp::Add(1), QuditId::new(0));
/// assert!(!gates_commute(d, &plus_one, &odd_controlled));
/// # Ok(())
/// # }
/// ```
pub fn gates_commute(dimension: Dimension, a: &Gate, b: &Gate) -> bool {
    commute_with_info(
        dimension,
        a,
        &GateInfo::of(a, dimension),
        b,
        &GateInfo::of(b, dimension),
    )
}

/// The dependency DAG of a circuit under the commutation oracle.
///
/// Nodes are gate indices (in circuit order); an edge `i → j` (always with
/// `i < j`) records that gates `i` and `j` share a qudit and the oracle
/// could not prove them commuting, so any semantics-preserving reordering
/// must keep `i` before `j`.  Gate pairs *without* an edge (in either
/// direction, including transitively incomparable pairs) provably commute:
/// disjoint-support pairs trivially, wire-sharing pairs by the oracle.
///
/// # Example
///
/// ```
/// use qudit_core::commute::DependencyDag;
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
/// let dag = DependencyDag::build(&circuit);
/// // The X+1 writes the control of the second gate: a real dependency.
/// assert_eq!(dag.predecessors(1), &[0]);
/// assert_eq!(dag.critical_path_len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyDag {
    /// `preds[j]` lists every `i < j` with an edge `i → j`, ascending.
    preds: Vec<Vec<usize>>,
}

impl DependencyDag {
    /// Builds the DAG sequentially.
    pub fn build(circuit: &Circuit) -> Self {
        Self::build_inner(circuit, None)
    }

    /// Builds the DAG with the per-gate dependency scans fanned out over a
    /// [`WorkStealingPool`].
    ///
    /// Each gate's predecessor list depends only on the (read-only) circuit,
    /// so the parallel build returns exactly the sequential DAG for every
    /// pool size.
    pub fn build_on(circuit: &Circuit, pool: &WorkStealingPool) -> Self {
        Self::build_inner(circuit, Some(pool))
    }

    fn build_inner(circuit: &Circuit, pool: Option<&WorkStealingPool>) -> Self {
        let gates = circuit.gates();
        let dimension = circuit.dimension();
        let infos: Vec<GateInfo> = gates.iter().map(|g| GateInfo::of(g, dimension)).collect();
        // Per-wire gate index lists (ascending): only wire-sharing pairs can
        // fail to commute, so each gate scans just the gates on its wires.
        let mut wire_gates: Vec<Vec<usize>> = vec![Vec::new(); circuit.width()];
        for (j, info) in infos.iter().enumerate() {
            for q in &info.support {
                wire_gates[q.index()].push(j);
            }
        }
        // Every earlier wire-sharing gate is tested individually: pairwise
        // commutation is not transitive, so stopping a wire scan at the
        // first blocker would drop dependencies hidden behind it.  Each
        // wire's blockers come out ascending; the (at most arity-many)
        // per-wire lists are then merged, which both sorts and dedups
        // without any per-candidate membership scan.
        let predecessors_of = |j: usize| -> Vec<usize> {
            let mut per_wire: Vec<Vec<usize>> = Vec::with_capacity(infos[j].support.len());
            for q in &infos[j].support {
                let blockers: Vec<usize> = wire_gates[q.index()]
                    .iter()
                    .take_while(|&&i| i < j)
                    .filter(|&&i| {
                        !commute_with_info(dimension, &gates[i], &infos[i], &gates[j], &infos[j])
                    })
                    .copied()
                    .collect();
                if !blockers.is_empty() {
                    per_wire.push(blockers);
                }
            }
            match per_wire.len() {
                0 => Vec::new(),
                1 => per_wire.pop().expect("one list"),
                _ => {
                    let mut merged: Vec<usize> = per_wire.concat();
                    merged.sort_unstable();
                    merged.dedup();
                    merged
                }
            }
        };
        let preds = match pool.filter(|pool| pool.threads() > 1 && gates.len() > 1) {
            Some(pool) => pool.map((0..gates.len()).collect(), predecessors_of),
            None => (0..gates.len()).map(predecessors_of).collect(),
        };
        DependencyDag { preds }
    }

    /// Number of gates (nodes).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Returns `true` when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The dependency predecessors of gate `j`, ascending.
    pub fn predecessors(&self, j: usize) -> &[usize] {
        &self.preds[j]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// Length of the longest dependency chain — the depth the circuit could
    /// reach on hardware with unlimited wires, a lower bound witness for the
    /// scheduler.
    pub fn critical_path_len(&self) -> usize {
        // `height[j]` is the length of the longest chain ending at j,
        // counting j itself.
        let mut height = vec![0usize; self.preds.len()];
        let mut longest = 0;
        for j in 0..self.preds.len() {
            height[j] = 1 + self.preds[j].iter().map(|&i| height[i]).max().unwrap_or(0);
            longest = longest.max(height[j]);
        }
        longest
    }
}

/// The result of scheduling a circuit: the reordered circuit plus the layer
/// assignment that witnesses its depth.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The reordered circuit (gates sorted by layer, ties in input order).
    pub circuit: Circuit,
    /// `layers[i]` is the 1-based layer of the i-th gate **of the scheduled
    /// circuit**.
    pub layers: Vec<usize>,
}

impl Schedule {
    /// The number of layers — an upper bound on (and in practice equal to)
    /// the scheduled circuit's [`circuit_depth`](crate::depth::circuit_depth).
    pub fn depth(&self) -> usize {
        self.layers.last().copied().unwrap_or(0)
    }
}

/// Per-wire layer occupancy used by the first-fit placement.
struct Occupancy {
    wires: Vec<Vec<bool>>,
}

impl Occupancy {
    fn new(width: usize) -> Self {
        Occupancy {
            wires: vec![Vec::new(); width],
        }
    }

    /// The smallest layer `≥ earliest` in which every wire of `support` is
    /// free; marks it occupied.
    fn place(&mut self, support: &[QuditId], earliest: usize) -> usize {
        let mut slot = earliest;
        'fit: loop {
            for q in support {
                if self.wires[q.index()].get(slot).copied().unwrap_or(false) {
                    slot += 1;
                    continue 'fit;
                }
            }
            break;
        }
        for q in support {
            let wire = &mut self.wires[q.index()];
            if wire.len() <= slot {
                wire.resize(slot + 1, false);
            }
            wire[slot] = true;
        }
        slot
    }
}

/// Reorders a circuit's gates by the given 1-based layer assignment (stable:
/// ties keep the input order).
fn assemble_schedule(circuit: &Circuit, layer: Vec<usize>) -> Schedule {
    let gates = circuit.gates();
    let mut order: Vec<usize> = (0..gates.len()).collect();
    order.sort_by_key(|&j| layer[j]); // stable: ties keep input order
    let mut scheduled = Circuit::new(circuit.dimension(), circuit.width());
    let mut layers = Vec::with_capacity(order.len());
    for &j in &order {
        scheduled
            .push(gates[j].clone())
            .expect("gates were valid in the input circuit");
        layers.push(layer[j]);
    }
    Schedule {
        circuit: scheduled,
        layers,
    }
}

/// Schedules a circuit over a prebuilt [`DependencyDag`].
///
/// Gates are processed in circuit order; each is placed in the earliest
/// layer after all of its dependency predecessors whose wires are all still
/// free in that layer (first-fit).  The scheduled order is the layer order
/// with ties broken by the input order, which makes the scheduler:
///
/// * **sound** — two gates only swap relative order when the DAG has no
///   edge between them, i.e. when they provably commute;
/// * **monotone** — each gate's layer never exceeds its greedy layer in the
///   input order, so the scheduled circuit's measured depth never exceeds
///   the input's;
/// * **idempotent** — rescheduling the output reproduces it exactly (the
///   depth-regression suite pins this).
///
/// [`schedule_depth`] computes the identical schedule without materialising
/// the DAG; use this entry point when a DAG is already at hand.
///
/// # Panics
///
/// Panics when the DAG was built from a different circuit (node count
/// mismatch).
pub fn schedule_over(circuit: &Circuit, dag: &DependencyDag) -> Schedule {
    assert_eq!(
        dag.len(),
        circuit.len(),
        "the DAG must come from the scheduled circuit"
    );
    let gates = circuit.gates();
    let mut layer = vec![0usize; gates.len()];
    let mut occupied = Occupancy::new(circuit.width());
    for (j, gate) in gates.iter().enumerate() {
        let earliest = 1 + dag
            .predecessors(j)
            .iter()
            .map(|&i| layer[i])
            .max()
            .unwrap_or(0);
        layer[j] = occupied.place(&gate.qudits(), earliest);
    }
    assemble_schedule(circuit, layer)
}

/// Gate-count granularity of the scheduler's parallel prefix scans: each
/// block's dependency bounds against the already-layered prefix are
/// computed gate-parallel, then the block is placed sequentially.
const SCHEDULE_BLOCK: usize = 512;

/// The fused scheduler: computes exactly the layers of
/// [`schedule_over`]`(circuit, DependencyDag::build(circuit))` without
/// materialising the DAG.
///
/// Only the *maximum* layer over a gate's non-commuting predecessors
/// matters, so candidates whose layer cannot raise the running maximum are
/// skipped before the oracle is consulted — on the lowered synthesis
/// circuits that prunes the vast majority of pair checks (the dependency
/// lists are dense, but dominated by low layers).  Scans run backward so
/// the maximum rises as early as possible.
fn schedule_layers(circuit: &Circuit, pool: Option<&WorkStealingPool>) -> Vec<usize> {
    let gates = circuit.gates();
    let n = gates.len();
    let dimension = circuit.dimension();
    let infos: Vec<GateInfo> = gates.iter().map(|g| GateInfo::of(g, dimension)).collect();
    let mut wire_gates: Vec<Vec<usize>> = vec![Vec::new(); circuit.width()];
    for (j, info) in infos.iter().enumerate() {
        for q in &info.support {
            wire_gates[q.index()].push(j);
        }
    }

    let mut layer = vec![0usize; n];
    let mut occupied = Occupancy::new(circuit.width());
    let mut block_start = 0;
    while block_start < n {
        let block_end = (block_start + SCHEDULE_BLOCK).min(n);
        // Phase A — for each gate of the block, the largest layer among its
        // non-commuting dependencies in the already-layered prefix.  The
        // prefix layers are frozen, so the bounds are independent per gate
        // and fan out over the pool.
        let bound_of = |j: usize| -> usize {
            let mut best = 0usize;
            for q in &infos[j].support {
                let wire = &wire_gates[q.index()];
                let end = wire.partition_point(|&i| i < block_start);
                for &i in wire[..end].iter().rev() {
                    if layer[i] > best
                        && !commute_with_info(dimension, &gates[i], &infos[i], &gates[j], &infos[j])
                    {
                        best = layer[i];
                    }
                }
            }
            best
        };
        let bounds: Vec<usize> = match pool.filter(|p| p.threads() > 1 && block_start > 0) {
            Some(pool) => pool.map((block_start..block_end).collect(), bound_of),
            None => (block_start..block_end).map(bound_of).collect(),
        };
        // Phase B — finish each bound against the block's own earlier gates
        // (whose layers were just assigned) and place first-fit, in order.
        for j in block_start..block_end {
            let mut best = bounds[j - block_start];
            for q in &infos[j].support {
                let wire = &wire_gates[q.index()];
                let start = wire.partition_point(|&i| i < block_start);
                let end = wire.partition_point(|&i| i < j);
                for &i in wire[start..end].iter().rev() {
                    if layer[i] > best
                        && !commute_with_info(dimension, &gates[i], &infos[i], &gates[j], &infos[j])
                    {
                        best = layer[i];
                    }
                }
            }
            layer[j] = occupied.place(&infos[j].support, best + 1);
        }
        block_start = block_end;
    }
    layer
}

/// Reorders commuting gates to minimise depth (sequential DAG build).
///
/// The returned circuit implements exactly the same operator as the input —
/// only gate pairs the oracle proves commuting change relative order — and
/// its [`circuit_depth`](crate::depth::circuit_depth) never exceeds the
/// input's.
///
/// # Example
///
/// ```
/// use qudit_core::commute::schedule_depth;
/// use qudit_core::depth::circuit_depth;
/// use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 3);
/// // q0 busy in layer 1; the |0⟩@q0-gate must wait for it…
/// circuit.push(Gate::single(SingleQuditOp::Add(1), QuditId::new(0)))?;
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
/// // …but this X01 on q1 commutes with both and fits into q1's idle
/// // layer-1 hole, which the emission order wasted.
/// circuit.push(Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(1)))?;
/// assert_eq!(circuit_depth(&circuit), 3);
/// let scheduled = schedule_depth(&circuit);
/// assert_eq!(circuit_depth(&scheduled), 2);
/// # Ok(())
/// # }
/// ```
pub fn schedule_depth(circuit: &Circuit) -> Circuit {
    assemble_schedule(circuit, schedule_layers(circuit, None)).circuit
}

/// [`schedule_depth`] with the dependency scans fanned out over a
/// [`WorkStealingPool`] (block by block; see the module docs).
///
/// The dependency bounds depend only on the circuit, never on the worker
/// count, so the parallel path returns byte-identical schedules for every
/// pool size — callers may switch between the two freely.
pub fn schedule_depth_on(circuit: &Circuit, pool: &WorkStealingPool) -> Circuit {
    assemble_schedule(circuit, schedule_layers(circuit, Some(pool))).circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::Control;
    use crate::depth::circuit_depth;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn q(i: usize) -> QuditId {
        QuditId::new(i)
    }

    /// Brute-force ground truth on the full register: apply both orders to
    /// every basis state of a classical pair.
    fn classically_commute(d: Dimension, width: usize, a: &Gate, b: &Gate) -> bool {
        let size = d.register_size(width);
        let dd = d.as_usize();
        (0..size).all(|mut index| {
            let mut digits = vec![0u32; width];
            for slot in digits.iter_mut().rev() {
                *slot = (index % dd) as u32;
                index /= dd;
            }
            let mut ab = digits.clone();
            a.apply_to_basis(&mut ab, d).unwrap();
            b.apply_to_basis(&mut ab, d).unwrap();
            let mut ba = digits;
            b.apply_to_basis(&mut ba, d).unwrap();
            a.apply_to_basis(&mut ba, d).unwrap();
            ab == ba
        })
    }

    #[test]
    fn disjoint_gates_commute() {
        let d = dim(3);
        let a = Gate::single(SingleQuditOp::Add(1), q(0));
        let b = Gate::controlled(SingleQuditOp::Swap(0, 1), q(2), vec![Control::zero(q(1))]);
        assert!(gates_commute(d, &a, &b));
    }

    #[test]
    fn shared_controls_commute() {
        let d = dim(3);
        let a = Gate::controlled(SingleQuditOp::Swap(0, 1), q(1), vec![Control::zero(q(0))]);
        let b = Gate::controlled(SingleQuditOp::Add(1), q(2), vec![Control::level(q(0), 2)]);
        assert!(gates_commute(d, &a, &b));
        assert!(classically_commute(d, 3, &a, &b));
    }

    #[test]
    fn shared_source_and_control_commute() {
        let d = dim(5);
        let a = Gate::add_from(q(0), false, q(1), vec![]);
        let b = Gate::controlled(SingleQuditOp::Add(2), q(2), vec![Control::odd(q(0))]);
        assert!(gates_commute(d, &a, &b));
        assert!(classically_commute(d, 3, &a, &b));
        // Two shifts reading the same source also commute.
        let c = Gate::add_from(q(0), true, q(2), vec![]);
        assert!(gates_commute(d, &a, &c));
        assert!(classically_commute(d, 3, &a, &c));
    }

    #[test]
    fn same_target_additive_ops_commute() {
        let d = dim(5);
        let a = Gate::single(SingleQuditOp::Add(2), q(0));
        let b = Gate::add_from(q(1), true, q(0), vec![Control::zero(q(2))]);
        assert!(gates_commute(d, &a, &b));
        assert!(classically_commute(d, 3, &a, &b));
    }

    #[test]
    fn same_target_classical_ops_checked_by_permutation() {
        let d = dim(4);
        // Disjoint transpositions commute…
        let a = Gate::single(SingleQuditOp::Swap(0, 1), q(0));
        let b = Gate::single(SingleQuditOp::Swap(2, 3), q(0));
        assert!(gates_commute(d, &a, &b));
        assert!(classically_commute(d, 1, &a, &b));
        // …overlapping ones do not.
        let c = Gate::single(SingleQuditOp::Swap(1, 2), q(0));
        assert!(!gates_commute(d, &a, &c));
        assert!(!classically_commute(d, 1, &a, &c));
    }

    #[test]
    fn write_into_control_requires_predicate_invariance() {
        let d = dim(4);
        let odd_controlled =
            Gate::controlled(SingleQuditOp::Swap(0, 1), q(1), vec![Control::odd(q(0))]);
        // X+2 preserves parity for d = 4.
        let add_two = Gate::single(SingleQuditOp::Add(2), q(0));
        assert!(gates_commute(d, &add_two, &odd_controlled));
        assert!(gates_commute(d, &odd_controlled, &add_two));
        assert!(classically_commute(d, 2, &add_two, &odd_controlled));
        // X+1 does not.
        let add_one = Gate::single(SingleQuditOp::Add(1), q(0));
        assert!(!gates_commute(d, &add_one, &odd_controlled));
        assert!(!classically_commute(d, 2, &add_one, &odd_controlled));
        // Swapping two levels on the same predicate side is invariant: X13
        // maps odd levels to odd levels.
        let swap_odd = Gate::single(SingleQuditOp::Swap(1, 3), q(0));
        assert!(gates_commute(d, &swap_odd, &odd_controlled));
        assert!(classically_commute(d, 2, &swap_odd, &odd_controlled));
    }

    #[test]
    fn write_into_add_from_source_never_claimed() {
        let d = dim(3);
        let shift = Gate::add_from(q(0), false, q(1), vec![]);
        let bump = Gate::single(SingleQuditOp::Add(1), q(0));
        assert!(!gates_commute(d, &shift, &bump));
        assert!(!classically_commute(d, 2, &shift, &bump));
    }

    #[test]
    fn unitary_target_ops_use_matrix_commutator() {
        use crate::math::SquareMatrix;
        let d = dim(3);
        let x01 = SingleQuditOp::Swap(0, 1).to_matrix(d);
        let as_unitary = Gate::single(SingleQuditOp::Unitary(x01), q(0));
        let same = Gate::single(SingleQuditOp::Swap(0, 1), q(0));
        assert!(gates_commute(d, &as_unitary, &same));
        let clash = Gate::single(SingleQuditOp::Swap(1, 2), q(0));
        assert!(!gates_commute(d, &as_unitary, &clash));
        let identity = Gate::single(SingleQuditOp::Unitary(SquareMatrix::identity(3)), q(0));
        assert!(gates_commute(d, &identity, &clash));
    }

    #[test]
    fn diagonal_writes_commute_with_readers_and_each_other() {
        let d = dim(3);
        // The Clifford phase gate is diagonal but not a permutation, so the
        // permutation-based rules cannot see it.
        let phase = Gate::single(SingleQuditOp::clifford_phase(d), q(0));
        // Diagonal write vs a control reading the same qudit.
        let controlled =
            Gate::controlled(SingleQuditOp::Swap(0, 1), q(1), vec![Control::odd(q(0))]);
        assert!(gates_commute(d, &phase, &controlled));
        assert!(gates_commute(d, &controlled, &phase));
        // Diagonal write vs an `X±⋆` reading the same qudit as its source.
        let shift = Gate::add_from(q(0), false, q(1), vec![]);
        assert!(gates_commute(d, &phase, &shift));
        assert!(gates_commute(d, &shift, &phase));
        // Diagonal vs diagonal on the same target, even under controls.
        let controlled_phase = Gate::controlled(
            SingleQuditOp::clifford_phase(d),
            q(0),
            vec![Control::zero(q(2))],
        );
        assert!(gates_commute(d, &phase, &controlled_phase));
        // A non-diagonal write into the source is still refused.
        let bump = Gate::single(SingleQuditOp::Add(1), q(0));
        assert!(!gates_commute(d, &bump, &shift));
    }

    fn sample_circuit() -> Circuit {
        let d = dim(3);
        let mut c = Circuit::new(d, 3);
        c.push(Gate::single(SingleQuditOp::Add(1), q(0))).unwrap();
        c.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            q(1),
            vec![Control::zero(q(0))],
        ))
        .unwrap();
        c.push(Gate::single(SingleQuditOp::Swap(0, 1), q(1)))
            .unwrap();
        c
    }

    #[test]
    fn dag_records_real_dependencies_only() {
        let c = sample_circuit();
        let dag = DependencyDag::build(&c);
        assert_eq!(dag.len(), 3);
        // Gate 1 reads q0, written by gate 0.
        assert_eq!(dag.predecessors(1), &[0]);
        // Gate 2 (X01 on q1) commutes with gate 1 (|0⟩-X01 onto q1): same
        // target, same operation; and never touches q0.
        assert_eq!(dag.predecessors(2), &[] as &[usize]);
        assert_eq!(dag.edge_count(), 1);
        assert_eq!(dag.critical_path_len(), 2);
    }

    /// A deterministic pseudo-random circuit over `width ≥ 3` qudits of
    /// dimension 3, mixing single-qudit ops, zero-/odd-controlled gates and
    /// value-controlled shifts — the shared workload of the randomized
    /// DAG/scheduler tests (extend the grammar here, in one place).
    fn random_circuit(seed: u64, width: usize, gates: usize) -> Circuit {
        let d = dim(3);
        let mut c = Circuit::new(d, width);
        // xorshift needs a nonzero state; nonzero seeds are used as-is.
        let mut state = if seed == 0 {
            0x2545_F491_4F6C_DD1D
        } else {
            seed
        };
        for _ in 0..gates {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let roll = (state >> 32) as usize;
            let target = q(roll % width);
            let gate = match roll % 5 {
                0 => Gate::single(SingleQuditOp::Add(1 + (roll as u32) % 2), target),
                1 => Gate::single(SingleQuditOp::Swap(0, 1 + (roll as u32 / 7) % 2), target),
                2 => Gate::controlled(
                    SingleQuditOp::Add(2),
                    target,
                    vec![Control::zero(q((target.index() + 1) % width))],
                ),
                3 => Gate::controlled(
                    SingleQuditOp::Swap(0, 2),
                    target,
                    vec![Control::odd(q((target.index() + 2) % width))],
                ),
                _ => Gate::add_from(
                    q((target.index() + 1) % width),
                    roll.is_multiple_of(2),
                    target,
                    vec![],
                ),
            };
            c.push(gate).unwrap();
        }
        c
    }

    #[test]
    fn parallel_dag_build_matches_sequential() {
        let c = random_circuit(0x9E37_79B9, 4, 600);
        let sequential = DependencyDag::build(&c);
        for threads in [1, 2, 4] {
            let pool = WorkStealingPool::with_threads(threads);
            assert_eq!(
                DependencyDag::build_on(&c, &pool),
                sequential,
                "threads = {threads}"
            );
            assert_eq!(schedule_depth_on(&c, &pool), schedule_depth(&c));
        }
    }

    #[test]
    fn scheduling_fills_idle_wire_holes() {
        let c = sample_circuit();
        assert_eq!(circuit_depth(&c), 3);
        let scheduled = schedule_depth(&c);
        // The trailing X01 slides into q1's idle layer-1 slot.
        assert_eq!(circuit_depth(&scheduled), 2);
        // Semantics preserved on every basis state.
        for a in 0..3 {
            for b in 0..3 {
                for t in 0..3 {
                    assert_eq!(
                        c.apply_to_basis(&[a, b, t]).unwrap(),
                        scheduled.apply_to_basis(&[a, b, t]).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn scheduling_never_increases_depth_and_is_idempotent() {
        let c = random_circuit(0x1234_5678_9ABC_DEF0, 5, 200);
        let once = schedule_depth(&c);
        assert!(circuit_depth(&once) <= circuit_depth(&c));
        assert_eq!(once.len(), c.len());
        let twice = schedule_depth(&once);
        assert_eq!(once, twice, "scheduling must be idempotent");
    }

    #[test]
    fn fused_scheduler_matches_dag_scheduler() {
        // The fused (layer-pruned) path must reproduce the explicit
        // DAG-based schedule exactly, including across block boundaries.
        let c = random_circuit(0xFEED_FACE_CAFE_BEEF, 4, 2 * super::SCHEDULE_BLOCK + 37);
        let via_dag = schedule_over(&c, &DependencyDag::build(&c));
        let fused = schedule_depth(&c);
        assert_eq!(via_dag.circuit, fused);
        let pool = WorkStealingPool::with_threads(4);
        assert_eq!(schedule_depth_on(&c, &pool), fused);
    }

    #[test]
    fn schedule_witness_layers_match_measured_depth() {
        let c = sample_circuit();
        let schedule = schedule_over(&c, &DependencyDag::build(&c));
        assert_eq!(schedule.depth(), circuit_depth(&schedule.circuit));
        assert!(schedule.layers.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_circuit_schedules_to_itself() {
        let c = Circuit::new(dim(3), 2);
        assert_eq!(schedule_depth(&c), c);
        let schedule = schedule_over(&c, &DependencyDag::build(&c));
        assert_eq!(schedule.depth(), 0);
        assert!(DependencyDag::build(&c).is_empty());
    }
}
