//! Gates: a target operation plus a (possibly empty) list of controls.

use std::fmt;

use crate::control::{Control, ControlPredicate};
use crate::dimension::Dimension;
use crate::error::{QuditError, Result};
use crate::ops::SingleQuditOp;
use crate::qudit::QuditId;

/// The operation a gate applies to its target qudit when all controls fire.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOp {
    /// A fixed single-qudit operation.
    Single(SingleQuditOp),
    /// The value-controlled shift `X±⋆` of the paper (Fig. 6): the target is
    /// shifted by the *value* of the `source` qudit, i.e.
    /// `|y⟩_source |t⟩ ↦ |y⟩_source |t ± y mod d⟩` (subject to the gate's
    /// ordinary controls).
    AddFrom {
        /// The qudit whose value is added to (or subtracted from) the target.
        source: QuditId,
        /// When `true` the value is subtracted (`X−⋆`), otherwise added (`X+⋆`).
        negate: bool,
    },
}

impl GateOp {
    /// Returns `true` when the operation permutes the computational basis.
    pub fn is_classical(&self) -> bool {
        match self {
            GateOp::Single(op) => op.is_classical(),
            GateOp::AddFrom { .. } => true,
        }
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateOp::Single(op) => write!(f, "{op}"),
            GateOp::AddFrom { source, negate } => {
                if *negate {
                    write!(f, "X-⋆({source})")
                } else {
                    write!(f, "X+⋆({source})")
                }
            }
        }
    }
}

/// A gate: an operation applied to a target qudit when every control fires.
///
/// # Example
///
/// ```
/// # use qudit_core::{Control, Gate, QuditId, SingleQuditOp};
/// // The elementary |0⟩-X01 gate with control q0 and target q1.
/// let gate = Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// );
/// assert_eq!(gate.controls().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    op: GateOp,
    target: QuditId,
    controls: Vec<Control>,
}

impl Gate {
    /// Creates an uncontrolled single-qudit gate.
    pub fn single(op: SingleQuditOp, target: QuditId) -> Self {
        Gate {
            op: GateOp::Single(op),
            target,
            controls: Vec::new(),
        }
    }

    /// Creates a controlled single-qudit gate.
    pub fn controlled(op: SingleQuditOp, target: QuditId, controls: Vec<Control>) -> Self {
        Gate {
            op: GateOp::Single(op),
            target,
            controls,
        }
    }

    /// Creates a gate from an arbitrary [`GateOp`].
    pub fn new(op: GateOp, target: QuditId, controls: Vec<Control>) -> Self {
        Gate {
            op,
            target,
            controls,
        }
    }

    /// Creates the value-controlled shift `|⋆⟩-X±⋆` (optionally with further
    /// controls).
    pub fn add_from(
        source: QuditId,
        negate: bool,
        target: QuditId,
        controls: Vec<Control>,
    ) -> Self {
        Gate {
            op: GateOp::AddFrom { source, negate },
            target,
            controls,
        }
    }

    /// The operation applied to the target.
    pub fn op(&self) -> &GateOp {
        &self.op
    }

    /// The target qudit.
    pub fn target(&self) -> QuditId {
        self.target
    }

    /// The controls of the gate.
    pub fn controls(&self) -> &[Control] {
        &self.controls
    }

    /// All qudits the gate touches (controls, the `AddFrom` source, and the
    /// target), in that order.
    pub fn qudits(&self) -> Vec<QuditId> {
        let mut out: Vec<QuditId> = self.controls.iter().map(|c| c.qudit).collect();
        if let GateOp::AddFrom { source, .. } = &self.op {
            out.push(*source);
        }
        out.push(self.target);
        out
    }

    /// Number of qudits the gate touches.
    pub fn arity(&self) -> usize {
        self.qudits().len()
    }

    /// Returns `true` when the gate permutes the computational basis.
    pub fn is_classical(&self) -> bool {
        self.op.is_classical()
    }

    /// Returns `true` when the gate is one of the elementary G-gates of the
    /// paper: an uncontrolled `Xij`, or `|0⟩-X01`.
    pub fn is_g_gate(&self) -> bool {
        match (&self.op, self.controls.len()) {
            (GateOp::Single(SingleQuditOp::Swap(_, _)), 0) => true,
            (GateOp::Single(SingleQuditOp::Swap(i, j)), 1) => {
                let ordered = (*i == 0 && *j == 1) || (*i == 1 && *j == 0);
                ordered && self.controls[0].predicate == ControlPredicate::Level(0)
            }
            _ => false,
        }
    }

    /// Validates the gate against a circuit of the given dimension and width.
    ///
    /// # Errors
    ///
    /// Returns an error when qudit indices are out of range or duplicated,
    /// control levels do not exist, or the operation itself is invalid for
    /// the dimension.
    pub fn validate(&self, dimension: Dimension, width: usize) -> Result<()> {
        let qudits = self.qudits();
        for q in &qudits {
            if q.index() >= width {
                return Err(QuditError::QuditOutOfRange {
                    qudit: q.index(),
                    width,
                });
            }
        }
        for (i, a) in qudits.iter().enumerate() {
            for b in qudits.iter().skip(i + 1) {
                if a == b {
                    return Err(QuditError::DuplicateQudit { qudit: a.index() });
                }
            }
        }
        for c in &self.controls {
            c.predicate.validate(dimension)?;
        }
        match &self.op {
            GateOp::Single(op) => op.validate(dimension),
            GateOp::AddFrom { .. } => Ok(()),
        }
    }

    /// Returns the inverse gate.
    pub fn inverse(&self, dimension: Dimension) -> Gate {
        let op = match &self.op {
            GateOp::Single(op) => GateOp::Single(op.inverse(dimension)),
            GateOp::AddFrom { source, negate } => GateOp::AddFrom {
                source: *source,
                negate: !negate,
            },
        };
        Gate {
            op,
            target: self.target,
            controls: self.controls.clone(),
        }
    }

    /// Returns the gate with every qudit id (controls, `AddFrom` source and
    /// target) replaced through `map`.
    ///
    /// Used by the lowering cache to rename a canonical expansion onto the
    /// actual wires of a lowering site; `map` must be injective over the
    /// gate's qudits or the result will fail validation when pushed.
    ///
    /// # Example
    ///
    /// ```
    /// # use qudit_core::{Control, Gate, QuditId, SingleQuditOp};
    /// let gate = Gate::controlled(
    ///     SingleQuditOp::Swap(0, 1),
    ///     QuditId::new(1),
    ///     vec![Control::zero(QuditId::new(0))],
    /// );
    /// let shifted = gate.map_qudits(|q| QuditId::new(q.index() + 3));
    /// assert_eq!(shifted.target(), QuditId::new(4));
    /// assert_eq!(shifted.controls()[0].qudit, QuditId::new(3));
    /// ```
    pub fn map_qudits(&self, map: impl Fn(QuditId) -> QuditId) -> Gate {
        let op = match &self.op {
            GateOp::Single(op) => GateOp::Single(op.clone()),
            GateOp::AddFrom { source, negate } => GateOp::AddFrom {
                source: map(*source),
                negate: *negate,
            },
        };
        Gate {
            op,
            target: map(self.target),
            controls: self
                .controls
                .iter()
                .map(|c| Control::new(map(c.qudit), c.predicate))
                .collect(),
        }
    }

    /// Returns `true` when all controls fire for the given basis state.
    ///
    /// `digits[q]` is the level of qudit `q`.
    pub fn fires(&self, digits: &[u32]) -> bool {
        self.controls
            .iter()
            .all(|c| c.predicate.matches(digits[c.qudit.index()]))
    }

    /// Applies a classical gate to a computational basis state in place.
    ///
    /// # Errors
    ///
    /// Returns [`QuditError::NotClassical`] for non-permutation unitaries.
    ///
    /// # Panics
    ///
    /// Panics if `digits` is shorter than the largest qudit index used by the
    /// gate.
    pub fn apply_to_basis(&self, digits: &mut [u32], dimension: Dimension) -> Result<()> {
        if !self.fires(digits) {
            return Ok(());
        }
        let t = self.target.index();
        match &self.op {
            GateOp::Single(op) => {
                digits[t] = op.apply_level(digits[t], dimension)?;
                Ok(())
            }
            GateOp::AddFrom { source, negate } => {
                let d = dimension.get();
                let y = digits[source.index()] % d;
                let shift = if *negate { (d - y) % d } else { y };
                digits[t] = (digits[t] + shift) % d;
                Ok(())
            }
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.controls.is_empty() {
            write!(f, "{} -> {}", self.op, self.target)
        } else {
            let controls: Vec<String> = self.controls.iter().map(|c| c.to_string()).collect();
            write!(
                f,
                "[{}] {} -> {}",
                controls.join(", "),
                self.op,
                self.target
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn g_gate_recognition() {
        let x01 = Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(0));
        assert!(x01.is_g_gate());
        let x12 = Gate::single(SingleQuditOp::Swap(1, 2), QuditId::new(0));
        assert!(x12.is_g_gate());
        let c_x01 = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        assert!(c_x01.is_g_gate());
        let c1_x01 = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 1)],
        );
        assert!(!c1_x01.is_g_gate());
        let c_x02 = Gate::controlled(
            SingleQuditOp::Swap(0, 2),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        assert!(!c_x02.is_g_gate());
        let cc = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(2),
            vec![
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
            ],
        );
        assert!(!cc.is_g_gate());
    }

    #[test]
    fn validation_catches_bad_gates() {
        let d = dim(3);
        let out_of_range = Gate::single(SingleQuditOp::Swap(0, 1), QuditId::new(5));
        assert!(out_of_range.validate(d, 3).is_err());
        let duplicate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(0),
            vec![Control::zero(QuditId::new(0))],
        );
        assert!(matches!(
            duplicate.validate(d, 3),
            Err(QuditError::DuplicateQudit { .. })
        ));
        let bad_level = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 7)],
        );
        assert!(bad_level.validate(d, 3).is_err());
        let good = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        assert!(good.validate(d, 3).is_ok());
    }

    #[test]
    fn classical_application_respects_controls() {
        let d = dim(3);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        let mut fired = vec![0, 0];
        gate.apply_to_basis(&mut fired, d).unwrap();
        assert_eq!(fired, vec![0, 1]);
        let mut silent = vec![2, 0];
        gate.apply_to_basis(&mut silent, d).unwrap();
        assert_eq!(silent, vec![2, 0]);
    }

    #[test]
    fn add_from_semantics() {
        let d = dim(5);
        let gate = Gate::add_from(QuditId::new(0), false, QuditId::new(1), vec![]);
        let mut state = vec![3, 4];
        gate.apply_to_basis(&mut state, d).unwrap();
        assert_eq!(state, vec![3, 2]); // 4 + 3 mod 5
        let inverse = gate.inverse(d);
        inverse.apply_to_basis(&mut state, d).unwrap();
        assert_eq!(state, vec![3, 4]);
    }

    #[test]
    fn inverse_of_controlled_add() {
        let d = dim(4);
        let gate = Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(1),
            vec![Control::odd(QuditId::new(0))],
        );
        let inv = gate.inverse(d);
        let mut state = vec![1, 2];
        gate.apply_to_basis(&mut state, d).unwrap();
        inv.apply_to_basis(&mut state, d).unwrap();
        assert_eq!(state, vec![1, 2]);
    }

    #[test]
    fn qudits_lists_controls_sources_and_target() {
        let gate = Gate::add_from(
            QuditId::new(2),
            true,
            QuditId::new(3),
            vec![Control::zero(QuditId::new(1))],
        );
        assert_eq!(
            gate.qudits(),
            vec![QuditId::new(1), QuditId::new(2), QuditId::new(3)]
        );
        assert_eq!(gate.arity(), 3);
    }

    #[test]
    fn display_is_readable() {
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        assert_eq!(gate.to_string(), "[|0⟩@q0] X01 -> q1");
    }
}
