//! Property-based tests for the core data structures: permutations, gates,
//! circuits, lowering, the peephole optimiser and the depth metric.

use proptest::prelude::*;
use qudit_core::depth::circuit_depth;
use qudit_core::lowering::lower_circuit;
use qudit_core::pipeline::{CancelInversePairs, LowerToGGates, PassManager};
use qudit_core::{
    Circuit, Control, ControlPredicate, Dimension, Gate, Permutation, QuditId, SingleQuditOp,
};

/// A strategy for dimensions 3..=8.
fn any_dimension() -> impl Strategy<Value = Dimension> {
    (3u32..=8).prop_map(|d| Dimension::new(d).unwrap())
}

/// A strategy producing a valid singly-controlled classical gate description
/// for a register of `width` qudits of dimension `d`.
#[derive(Debug, Clone)]
struct GateSpec {
    target: usize,
    control: usize,
    kind: u8,
    level_a: u32,
    level_b: u32,
    shift: u32,
}

fn gate_spec(width: usize, d: u32) -> impl Strategy<Value = GateSpec> {
    (0..width, 0..width, 0u8..4, 0..d, 0..d, 1..d).prop_map(
        |(target, control, kind, level_a, level_b, shift)| GateSpec {
            target,
            control,
            kind,
            level_a,
            level_b,
            shift,
        },
    )
}

fn build_gate(spec: &GateSpec, dimension: Dimension) -> Option<Gate> {
    if spec.target == spec.control {
        return None;
    }
    let op = match spec.kind {
        0 => {
            if spec.level_a == spec.level_b {
                return None;
            }
            SingleQuditOp::Swap(spec.level_a, spec.level_b)
        }
        1 => SingleQuditOp::Add(spec.shift),
        2 => {
            if dimension.is_even() {
                SingleQuditOp::ParityFlipEven
            } else {
                SingleQuditOp::ParityFlipOdd
            }
        }
        _ => SingleQuditOp::Add(dimension.get() - spec.shift),
    };
    let predicate = match spec.kind {
        0 => ControlPredicate::Level(spec.level_a),
        1 => ControlPredicate::Odd,
        2 => ControlPredicate::EvenNonzero,
        _ => ControlPredicate::NonZero,
    };
    Some(Gate::controlled(
        op,
        QuditId::new(spec.target),
        vec![Control::new(QuditId::new(spec.control), predicate)],
    ))
}

fn build_circuit(specs: &[GateSpec], dimension: Dimension, width: usize) -> Circuit {
    let mut circuit = Circuit::new(dimension, width);
    for spec in specs {
        if let Some(gate) = build_gate(spec, dimension) {
            circuit.push(gate).unwrap();
        }
    }
    circuit
}

fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
    let d = dimension.as_usize();
    (0..dimension.register_size(width))
        .map(|mut index| {
            let mut digits = vec![0u32; width];
            for slot in digits.iter_mut().rev() {
                *slot = (index % d) as u32;
                index /= d;
            }
            digits
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Permutation composition is associative and respects inverses.
    #[test]
    fn permutation_algebra(
        a in Just((0u32..7).collect::<Vec<u32>>()).prop_shuffle(),
        b in Just((0u32..7).collect::<Vec<u32>>()).prop_shuffle(),
        c in Just((0u32..7).collect::<Vec<u32>>()).prop_shuffle(),
    ) {
        let pa = Permutation::from_map(a).unwrap();
        let pb = Permutation::from_map(b).unwrap();
        let pc = Permutation::from_map(c).unwrap();
        prop_assert_eq!(pa.compose(&pb).compose(&pc), pa.compose(&pb.compose(&pc)));
        prop_assert!(pa.compose(&pa.inverse()).is_identity());
        prop_assert_eq!(pa.compose(&pb).inverse(), pb.inverse().compose(&pa.inverse()));
    }

    /// Permutation parity is multiplicative under composition.
    #[test]
    fn permutation_parity_is_multiplicative(
        a in Just((0u32..6).collect::<Vec<u32>>()).prop_shuffle(),
        b in Just((0u32..6).collect::<Vec<u32>>()).prop_shuffle(),
    ) {
        let pa = Permutation::from_map(a).unwrap();
        let pb = Permutation::from_map(b).unwrap();
        let product = pa.compose(&pb);
        prop_assert_eq!(product.is_even(), pa.is_even() == pb.is_even());
    }

    /// Classical single-qudit operations invert correctly on every level.
    #[test]
    fn single_qudit_ops_invert(dimension in any_dimension(), level_seed in 0u32..100, shift in 1u32..8) {
        let d = dimension.get();
        let level = level_seed % d;
        let ops = vec![
            SingleQuditOp::Add(shift % d),
            SingleQuditOp::Swap(0, d - 1),
            if dimension.is_even() { SingleQuditOp::ParityFlipEven } else { SingleQuditOp::ParityFlipOdd },
        ];
        for op in ops {
            let forward = op.apply_level(level, dimension).unwrap();
            let back = op.inverse(dimension).apply_level(forward, dimension).unwrap();
            prop_assert_eq!(back, level, "op {} level {}", op, level);
        }
    }

    /// Lowering, inversion and optimisation all preserve the circuit's action
    /// on the computational basis.
    #[test]
    fn circuit_transformations_preserve_semantics(
        dimension in any_dimension(),
        specs in prop::collection::vec(gate_spec(3, 8), 0..10),
    ) {
        // Clamp levels to the chosen dimension.
        let specs: Vec<GateSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.level_a %= dimension.get();
                s.level_b %= dimension.get();
                s.shift = 1 + (s.shift % (dimension.get() - 1));
                s
            })
            .collect();
        let circuit = build_circuit(&specs, dimension, 3);
        // Route the lower-then-cancel chain through the pass pipeline.
        let manager = PassManager::new()
            .with_pass(LowerToGGates)
            .with_pass(CancelInversePairs);
        let report = manager.run(circuit.clone()).unwrap();
        let lowered = lower_circuit(&circuit).unwrap();
        prop_assert_eq!(&report.stats[0].after.gates, &lowered.len());
        let optimized = report.circuit;
        let mut round_trip = circuit.clone();
        round_trip.append(&circuit.inverse()).unwrap();
        for state in all_states(dimension, 3) {
            let expected = circuit.apply_to_basis(&state).unwrap();
            prop_assert_eq!(lowered.apply_to_basis(&state).unwrap(), expected.clone());
            prop_assert_eq!(optimized.apply_to_basis(&state).unwrap(), expected);
            prop_assert_eq!(round_trip.apply_to_basis(&state).unwrap(), state);
        }
        prop_assert!(optimized.len() <= lowered.len());
        prop_assert!(circuit_depth(&optimized) <= circuit_depth(&lowered).max(1));
    }

    /// Depth is bounded by the gate count and monotone under concatenation.
    #[test]
    fn depth_bounds(
        dimension in any_dimension(),
        specs in prop::collection::vec(gate_spec(4, 8), 1..12),
    ) {
        let specs: Vec<GateSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.level_a %= dimension.get();
                s.level_b %= dimension.get();
                s.shift = 1 + (s.shift % (dimension.get() - 1));
                s
            })
            .collect();
        let circuit = build_circuit(&specs, dimension, 4);
        let depth = circuit_depth(&circuit);
        prop_assert!(depth <= circuit.len());
        let mut doubled = circuit.clone();
        doubled.append(&circuit).unwrap();
        prop_assert!(circuit_depth(&doubled) >= depth);
        prop_assert!(circuit_depth(&doubled) <= 2 * depth.max(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache correctness: cached lowering output is gate-for-gate identical
    /// to uncached lowering across random dimensions and widths, and the
    /// parallel path (with and without a cache) matches both.  The
    /// order-independent parallel counters equal the sequential ones.
    #[test]
    fn cached_and_parallel_lowering_match_uncached(
        dimension in any_dimension(),
        width in 2usize..=6,
        specs in prop::collection::vec(gate_spec(6, 8), 1..16),
        threads in 1usize..=4,
    ) {
        use qudit_core::cache::{CacheCounters, LoweringCache};
        use qudit_core::lowering::{lower_circuit_cached, lower_circuit_parallel};
        use qudit_core::pool::WorkStealingPool;

        // Clamp the specs to the chosen dimension and width.
        let specs: Vec<GateSpec> = specs
            .into_iter()
            .map(|mut s| {
                s.target %= width;
                s.control %= width;
                s.level_a %= dimension.get();
                s.level_b %= dimension.get();
                s.shift = 1 + (s.shift % (dimension.get() - 1));
                s
            })
            .collect();
        let circuit = build_circuit(&specs, dimension, width);
        let reference = lower_circuit(&circuit).unwrap();

        let cache = LoweringCache::new();
        let mut counters = CacheCounters::default();
        let cached = lower_circuit_cached(&circuit, &cache, &mut counters).unwrap();
        prop_assert_eq!(&cached, &reference);
        // Every non-G-gate consults the cache exactly once.
        let lookups = circuit.gates().iter().filter(|g| !g.is_g_gate()).count() as u64;
        prop_assert_eq!(counters.total(), lookups);
        prop_assert_eq!(counters.misses, cache.len() as u64);

        let pool = WorkStealingPool::with_threads(threads);
        let (parallel, no_cache_counters) = lower_circuit_parallel(&circuit, None, &pool).unwrap();
        prop_assert_eq!(&parallel, &reference);
        prop_assert_eq!(no_cache_counters, CacheCounters::default());

        let fresh = LoweringCache::new();
        let (parallel_cached, parallel_counters) =
            lower_circuit_parallel(&circuit, Some(&fresh), &pool).unwrap();
        prop_assert_eq!(&parallel_cached, &reference);
        prop_assert_eq!(parallel_counters, counters);
    }
}
