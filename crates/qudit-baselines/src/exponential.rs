//! The ancilla-free but exponential-size baseline (standing in for Moraga
//! ref. 25 in the paper's comparison).
//!
//! The construction recursively applies the paper's own Fig. 5 identity,
//! replacing the single control `x1` with the conjunction of the first
//! `k − 1` controls:
//!
//! ```text
//! |0^k⟩-Xij = (|0^{k−1}⟩-Xij → t) (|0^{k−1}⟩-X+1 → x_k) (|e⟩(x_k)-Xij → t)
//!             (|0^{k−1}⟩-X−1 → x_k) (|e⟩(x_k)-Xij → t)
//! ```
//!
//! Every level of the recursion multiplies the gate count by `Θ(d)`, giving
//! the exponential `Θ((2d − 1)^k)` scaling that the paper's linear
//! construction replaces.  Only odd dimensions are supported (for even `d`
//! an ancilla-free construction does not exist at all, by the parity
//! argument after Theorem III.2).

use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_synthesis::SynthesisError;

/// Maximum number of controls for which the exponential baseline will build
/// an explicit circuit (the gate count grows as `(2d − 1)^k`).
pub const MAX_EXPLICIT_CONTROLS: usize = 9;

/// Builds the exponential ancilla-free baseline circuit for `|0^k⟩-Xij`.
///
/// The register layout is `controls (0 … k−1), target (k)`; no ancilla is
/// used.
///
/// # Errors
///
/// Returns an error when `d` is even (no ancilla-free construction exists),
/// `d < 3`, or `k` exceeds [`MAX_EXPLICIT_CONTROLS`].
pub fn exponential_mct(
    dimension: Dimension,
    controls: usize,
    i: u32,
    j: u32,
) -> Result<Circuit, SynthesisError> {
    if dimension.get() < 3 {
        return Err(SynthesisError::DimensionTooSmall {
            dimension: dimension.get(),
            minimum: 3,
        });
    }
    if dimension.is_even() {
        return Err(SynthesisError::Lowering {
            reason: "an ancilla-free multi-controlled gate does not exist for even dimensions"
                .to_string(),
        });
    }
    if controls > MAX_EXPLICIT_CONTROLS {
        return Err(SynthesisError::Lowering {
            reason: format!(
                "the exponential baseline only builds explicit circuits for k ≤ {MAX_EXPLICIT_CONTROLS}; \
                 use exponential_gate_count for larger k"
            ),
        });
    }
    let control_ids: Vec<QuditId> = (0..controls).map(QuditId::new).collect();
    let target = QuditId::new(controls);
    let swap = SingleQuditOp::swap(dimension, i, j)?;
    let mut circuit = Circuit::new(dimension, controls + 1);
    let gates = controlled_swap_recursive(dimension, &control_ids, target, &swap);
    circuit.extend_gates(gates)?;
    Ok(circuit)
}

/// Recursively expands `|0^k⟩-swap` into singly-controlled gates using the
/// Fig. 5 identity.
fn controlled_swap_recursive(
    dimension: Dimension,
    controls: &[QuditId],
    target: QuditId,
    swap: &SingleQuditOp,
) -> Vec<Gate> {
    match controls.len() {
        0 => vec![Gate::single(swap.clone(), target)],
        1 => vec![Gate::controlled(
            swap.clone(),
            target,
            vec![Control::zero(controls[0])],
        )],
        k => {
            let last = controls[k - 1];
            let rest = &controls[..k - 1];
            let mut gates = controlled_swap_recursive(dimension, rest, target, swap);
            gates.extend(controlled_shift_recursive(dimension, rest, last, false));
            gates.push(Gate::controlled(
                swap.clone(),
                target,
                vec![Control::even_nonzero(last)],
            ));
            gates.extend(controlled_shift_recursive(dimension, rest, last, true));
            gates.push(Gate::controlled(
                swap.clone(),
                target,
                vec![Control::even_nonzero(last)],
            ));
            gates
        }
    }
}

/// Expands `|0^k⟩-X±1` into multi-controlled swaps (transposition product)
/// and recurses.
fn controlled_shift_recursive(
    dimension: Dimension,
    controls: &[QuditId],
    target: QuditId,
    negate: bool,
) -> Vec<Gate> {
    let op = if negate {
        SingleQuditOp::Add(dimension.get() - 1)
    } else {
        SingleQuditOp::Add(1)
    };
    match controls.len() {
        0 => vec![Gate::single(op, target)],
        1 => vec![Gate::controlled(
            op,
            target,
            vec![Control::zero(controls[0])],
        )],
        _ => {
            let transpositions = op
                .transpositions(dimension)
                .expect("Add is always classical");
            let mut gates = Vec::new();
            for (a, b) in transpositions {
                let swap = SingleQuditOp::Swap(a, b);
                gates.extend(controlled_swap_recursive(
                    dimension, controls, target, &swap,
                ));
            }
            gates
        }
    }
}

/// The number of singly-controlled gates the exponential baseline uses for
/// `k` controls, computed from the recurrence without building the circuit.
pub fn exponential_gate_count(dimension: Dimension, controls: usize) -> u128 {
    let d = dimension.get() as u128;
    // S(k): cost of |0^k⟩-swap; A(k): cost of |0^k⟩-X±1.
    // S(0) = 1, S(1) = 1, A(0) = 1, A(1) = 1.
    // S(k) = S(k−1) + 2·A(k−1) + 2;  A(k) = (d−1)·S(k) for k ≥ 2.
    let mut swap_cost: u128 = 1;
    let mut shift_cost: u128 = 1;
    for k in 2..=controls.max(1) {
        if k < 2 {
            continue;
        }
        let new_swap = swap_cost + 2 * shift_cost + 2;
        let new_shift = (d - 1) * new_swap;
        swap_cost = new_swap;
        shift_cost = new_shift;
    }
    if controls <= 1 {
        1
    } else {
        swap_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    #[test]
    fn exponential_baseline_is_functionally_correct() {
        for k in 1..=4usize {
            let dimension = dim(3);
            let circuit = exponential_mct(dimension, k, 0, 1).unwrap();
            for state in all_states(dimension, k + 1) {
                let mut expected = state.clone();
                if state[..k].iter().all(|&x| x == 0) {
                    expected[k] = match expected[k] {
                        0 => 1,
                        1 => 0,
                        other => other,
                    };
                }
                assert_eq!(
                    circuit.apply_to_basis(&state).unwrap(),
                    expected,
                    "k={k}, {state:?}"
                );
            }
        }
    }

    #[test]
    fn exponential_baseline_is_correct_for_d5() {
        let dimension = dim(5);
        let circuit = exponential_mct(dimension, 2, 0, 1).unwrap();
        for state in all_states(dimension, 3) {
            let mut expected = state.clone();
            if state[0] == 0 && state[1] == 0 {
                expected[2] = match expected[2] {
                    0 => 1,
                    1 => 0,
                    other => other,
                };
            }
            assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
        }
    }

    #[test]
    fn gate_count_grows_exponentially() {
        let dimension = dim(3);
        let counts: Vec<u128> = (1..=10)
            .map(|k| exponential_gate_count(dimension, k))
            .collect();
        // Ratio between consecutive counts approaches 2d − 1 = 5.
        for window in counts.windows(2).skip(2) {
            let ratio = window[1] as f64 / window[0] as f64;
            assert!(
                ratio > 3.0,
                "expected exponential growth, got ratio {ratio}"
            );
        }
        // The explicit circuit matches the recurrence.
        for k in 1..=4usize {
            let circuit = exponential_mct(dimension, k, 0, 1).unwrap();
            assert_eq!(
                circuit.len() as u128,
                exponential_gate_count(dimension, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn even_dimensions_and_large_k_are_rejected() {
        assert!(exponential_mct(dim(4), 3, 0, 1).is_err());
        assert!(exponential_mct(dim(3), MAX_EXPLICIT_CONTROLS + 1, 0, 1).is_err());
        assert!(exponential_mct(dim(2), 3, 0, 1).is_err());
    }

    #[test]
    fn no_ancilla_is_used() {
        let dimension = dim(3);
        let circuit = exponential_mct(dimension, 3, 0, 1).unwrap();
        assert_eq!(circuit.width(), 4);
    }
}
