//! Analytical cost models for prior work that cannot be reproduced as
//! circuits from the citations alone, plus the qutrit Clifford+T cost model
//! used for the fault-tolerance comparison (Section IV / ref.&nbsp;24).
//!
//! These models only appear in the comparison tables (experiments E1 and
//! E8); correctness baselines are the explicit circuits in
//! [`crate::clean_ancilla`] and [`crate::exponential`].

use qudit_core::{Circuit, Dimension, Gate, GateOp, SingleQuditOp};

/// Gate-count model for the Di & Wei ancilla-free synthesis (ref. 20 in the
/// paper): `Θ(k³)` two-qudit gates.
///
/// The constant is normalised so that the model agrees with the paper's
/// construction at `k = 2` (a single two-controlled gadget of `O(d)` gates).
pub fn di_wei_cubic_count(dimension: Dimension, controls: usize) -> f64 {
    let d = dimension.get() as f64;
    let k = controls as f64;
    // One two-controlled gadget costs ~5 singly-controlled gates (Fig. 5);
    // the cubic construction applies Θ(k³) of them.
    (5.0 * d / 3.0) * k.powi(3)
}

/// Clifford+T count model for the Yeh & van de Wetering qutrit construction
/// (ref. 24 in the paper): `Θ(k^{log₂ 12}) ≈ Θ(k^{3.585})`.
pub fn yeh_wetering_clifford_t_count(controls: usize) -> f64 {
    let k = controls as f64;
    let exponent = 12f64.log2(); // ≈ 3.585
                                 // Normalised so that k = 2 costs one controlled-X01 worth of Clifford+T.
    CliffordTCostModel::default().controlled_x01 as f64 / 2f64.powf(exponent) * k.powf(exponent)
}

/// Clifford+T cost assigned to each qutrit G-gate, following the exact
/// syntheses of ref. 24 (every qutrit G-gate has a constant-size Clifford+T
/// circuit).  The constants are model parameters: the asymptotic comparison
/// (linear vs. `k^{3.585}`) does not depend on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliffordTCostModel {
    /// Clifford+T count of an uncontrolled qutrit transposition `Xij`
    /// (a Clifford gate — no T gates, a handful of Cliffords).
    pub single_swap: u64,
    /// Clifford+T count of the controlled `|0⟩-X01` qutrit gate.
    pub controlled_x01: u64,
}

impl Default for CliffordTCostModel {
    fn default() -> Self {
        // A qutrit transposition is Clifford (cost 1 gate); the controlled
        // X01 requires a constant number of Clifford+T gates in the exact
        // synthesis of [24] — 39 is used as a representative constant.
        CliffordTCostModel {
            single_swap: 1,
            controlled_x01: 39,
        }
    }
}

impl CliffordTCostModel {
    /// Clifford+T count of a G-gate circuit (qutrits only).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a gate that is not a G-gate; lower the
    /// circuit with `qudit_synthesis::lower::lower_to_g_gates` first.
    pub fn circuit_cost(&self, circuit: &Circuit) -> u64 {
        circuit.gates().iter().map(|g| self.gate_cost(g)).sum()
    }

    /// Clifford+T count of a single G-gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not a G-gate.
    pub fn gate_cost(&self, gate: &Gate) -> u64 {
        assert!(
            gate.is_g_gate(),
            "Clifford+T costs are defined for G-gates only"
        );
        match (gate.controls().len(), gate.op()) {
            (0, GateOp::Single(SingleQuditOp::Swap(_, _))) => self.single_swap,
            (1, _) => self.controlled_x01,
            _ => unreachable!("G-gates have at most one control"),
        }
    }
}

/// Finds the smallest `k` at which a linear cost curve beats a super-linear
/// model curve, scanning `k = 1 … max_k`.
///
/// Returns `None` when the linear curve never wins in the scanned range.
pub fn crossover_point(
    linear: impl Fn(usize) -> f64,
    model: impl Fn(usize) -> f64,
    max_k: usize,
) -> Option<usize> {
    (1..=max_k).find(|&k| linear(k) < model(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::{Control, QuditId};

    #[test]
    fn cubic_model_grows_cubically() {
        let d = Dimension::new(3).unwrap();
        let a = di_wei_cubic_count(d, 10);
        let b = di_wei_cubic_count(d, 20);
        let ratio = b / a;
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn yeh_wetering_model_grows_super_cubically() {
        let a = yeh_wetering_clifford_t_count(10);
        let b = yeh_wetering_clifford_t_count(20);
        let ratio = b / a;
        assert!(
            ratio > 8.0 && ratio < 16.0,
            "ratio {ratio} should be ≈ 2^3.585 ≈ 12"
        );
    }

    #[test]
    fn clifford_t_cost_of_g_gates() {
        let d = Dimension::new(3).unwrap();
        let model = CliffordTCostModel::default();
        let mut circuit = Circuit::new(d, 2);
        circuit
            .push(Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(0)))
            .unwrap();
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                QuditId::new(1),
                vec![Control::zero(QuditId::new(0))],
            ))
            .unwrap();
        assert_eq!(
            model.circuit_cost(&circuit),
            model.single_swap + model.controlled_x01
        );
    }

    #[test]
    #[should_panic(expected = "G-gates only")]
    fn non_g_gates_are_rejected_by_the_cost_model() {
        let model = CliffordTCostModel::default();
        let gate = Gate::single(SingleQuditOp::Add(1), QuditId::new(0));
        let _ = model.gate_cost(&gate);
    }

    #[test]
    fn crossover_is_found_for_growing_models() {
        // Linear 100·k beats k³ starting at k = 11.
        let crossover = crossover_point(|k| 100.0 * k as f64, |k| (k as f64).powi(3), 100);
        assert_eq!(crossover, Some(11));
        // A linear curve never beats a constant-zero model.
        assert_eq!(crossover_point(|k| k as f64, |_| 0.0, 50), None);
    }
}
