//! Prior-work baselines and cost models for multi-controlled qudit gate
//! synthesis.
//!
//! The paper (Section I) compares its construction against three families of
//! prior work; this crate provides the comparators used by the experiment
//! harness:
//!
//! * [`CleanAncillaMct`] — the standard linear-size synthesis with
//!   `Θ(k/(d−2))` **clean** ancillas (Bullock et al. / Khan & Perkowski),
//!   implemented as an explicit circuit.
//! * [`exponential`] — an ancilla-free synthesis with exponential gate count
//!   (standing in for Moraga), implemented as an explicit circuit for small
//!   `k` and as a closed-form count for large `k`.
//! * [`cost_models`] — analytical gate-count models for Di & Wei (`Θ(k³)`)
//!   and Yeh & van de Wetering (`Θ(k^{3.585})` Clifford+T), plus the qutrit
//!   Clifford+T cost model used by experiment E8.
//!
//! # Example
//!
//! ```
//! use qudit_core::{Dimension, SingleQuditOp};
//! use qudit_baselines::{clean_ancilla_count, CleanAncillaMct};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let baseline = CleanAncillaMct::new(d, 10, SingleQuditOp::Swap(0, 1))?.synthesize()?;
//! assert_eq!(baseline.resources().clean_ancillas(), clean_ancilla_count(d, 10));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clean_ancilla;
pub mod cost_models;
pub mod exponential;

pub use clean_ancilla::{
    clean_ancilla_count, CleanAncillaLayout, CleanAncillaMct, CleanAncillaSynthesis,
};
pub use cost_models::{
    crossover_point, di_wei_cubic_count, yeh_wetering_clifford_t_count, CliffordTCostModel,
};
pub use exponential::{exponential_gate_count, exponential_mct, MAX_EXPLICIT_CONTROLS};
