//! The standard linear-size multi-controlled gate synthesis with
//! `⌈(k−2)/(d−2)⌉`-style **clean** ancillas, the prior-work baseline the
//! paper compares its ancilla counts against ([5, 23] in the paper).
//!
//! The construction chains counters: each clean ancilla accumulates (mod `d`)
//! the number of non-zero qudits in its group of at most `d − 1` inputs, so
//! the ancilla is `|0⟩` exactly when the whole group is zero.  The last
//! ancilla therefore witnesses the conjunction of all controls; a single
//! controlled gate fires on it, and the counter chain is uncomputed.

use qudit_core::{
    AncillaKind, AncillaUsage, Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp,
};
use qudit_synthesis::{Resources, SynthesisError};

/// Register layout of a [`CleanAncillaMct`] synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CleanAncillaLayout {
    /// The control qudits.
    pub controls: Vec<QuditId>,
    /// The target qudit.
    pub target: QuditId,
    /// The clean ancillas (all must start in `|0⟩` and are returned to `|0⟩`).
    pub clean_ancillas: Vec<QuditId>,
    /// Total register width.
    pub width: usize,
}

/// The result of a clean-ancilla baseline synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanAncillaSynthesis {
    circuit: Circuit,
    layout: CleanAncillaLayout,
    resources: Resources,
}

impl CleanAncillaSynthesis {
    /// The synthesised circuit (gates with at most one control).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The register layout.
    pub fn layout(&self) -> &CleanAncillaLayout {
        &self.layout
    }

    /// Gate and ancilla counts.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }
}

/// Builder for the clean-ancilla baseline synthesis of `|0^k⟩-op`.
///
/// # Example
///
/// ```
/// # use qudit_core::{Dimension, SingleQuditOp};
/// # use qudit_baselines::CleanAncillaMct;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let synthesis = CleanAncillaMct::new(d, 8, SingleQuditOp::Swap(0, 1))?.synthesize()?;
/// // The baseline needs Θ(k / (d−2)) clean ancillas, the paper needs at most one.
/// assert!(synthesis.resources().clean_ancillas() >= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CleanAncillaMct {
    dimension: Dimension,
    controls: usize,
    op: SingleQuditOp,
}

/// Number of clean ancillas the baseline uses for `k` controls on `d`-level
/// qudits.
///
/// The first counter absorbs up to `d − 1` controls and every further counter
/// absorbs `d − 2` new controls (its predecessor occupies one slot), which
/// matches the `⌈(k−2)/(d−2)⌉` count quoted in the paper up to rounding.
pub fn clean_ancilla_count(dimension: Dimension, controls: usize) -> usize {
    let d = dimension.as_usize();
    if controls <= 1 {
        return 0;
    }
    if controls < d {
        return 1;
    }
    let remaining = controls - (d - 1);
    1 + remaining.div_ceil(d - 2)
}

impl CleanAncillaMct {
    /// Creates a builder for the baseline synthesis of `|0^k⟩-op`.
    ///
    /// # Errors
    ///
    /// Returns an error when `d < 3` or the operation is not classical.
    pub fn new(
        dimension: Dimension,
        controls: usize,
        op: SingleQuditOp,
    ) -> Result<Self, SynthesisError> {
        if dimension.get() < 3 {
            return Err(SynthesisError::DimensionTooSmall {
                dimension: dimension.get(),
                minimum: 3,
            });
        }
        op.validate(dimension)?;
        if !op.is_classical() {
            return Err(SynthesisError::NotClassicalTarget);
        }
        Ok(CleanAncillaMct {
            dimension,
            controls,
            op,
        })
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of controls `k`.
    pub fn controls(&self) -> usize {
        self.controls
    }

    /// Synthesises the baseline circuit.
    ///
    /// The register layout is `controls (0 … k−1), target (k), clean ancillas
    /// (k+1 …)`.
    ///
    /// # Errors
    ///
    /// Returns an error when circuit construction fails (indicates a bug).
    pub fn synthesize(&self) -> Result<CleanAncillaSynthesis, SynthesisError> {
        let dimension = self.dimension;
        let k = self.controls;
        let controls: Vec<QuditId> = (0..k).map(QuditId::new).collect();
        let target = QuditId::new(k);
        let ancilla_count = clean_ancilla_count(dimension, k);
        let clean_ancillas: Vec<QuditId> = (0..ancilla_count)
            .map(|i| QuditId::new(k + 1 + i))
            .collect();
        let width = k + 1 + ancilla_count;
        let mut circuit = Circuit::new(dimension, width);

        if k == 0 {
            circuit.push(Gate::single(self.op.clone(), target))?;
        } else if k == 1 {
            circuit.push(Gate::controlled(
                self.op.clone(),
                target,
                vec![Control::zero(controls[0])],
            ))?;
        } else {
            // Compute phase: each ancilla counts the non-zero qudits of its
            // group (previous ancilla + new controls).
            let compute = self.counter_chain(&controls, &clean_ancillas);
            circuit.extend_gates(compute.iter().cloned())?;
            // The last counter is |0⟩ exactly when all controls are |0⟩.
            let witness = *clean_ancillas
                .last()
                .expect("k >= 2 implies at least one ancilla");
            circuit.push(Gate::controlled(
                self.op.clone(),
                target,
                vec![Control::zero(witness)],
            ))?;
            // Uncompute phase: the counter chain in reverse, each gate inverted.
            circuit.extend_gates(compute.iter().rev().map(|g| g.inverse(dimension)))?;
        }

        let ancillas = AncillaUsage::of_kind(AncillaKind::Clean, ancilla_count);
        let resources = Resources::for_circuit(&circuit, ancillas)?;
        Ok(CleanAncillaSynthesis {
            circuit,
            layout: CleanAncillaLayout {
                controls,
                target,
                clean_ancillas,
                width,
            },
            resources,
        })
    }

    /// Builds the counter chain: gates that make each ancilla count the
    /// non-zero qudits in its group.
    fn counter_chain(&self, controls: &[QuditId], ancillas: &[QuditId]) -> Vec<Gate> {
        let d = self.dimension.as_usize();
        let mut gates = Vec::new();
        let mut group_inputs: Vec<QuditId> = Vec::new();
        let mut next_control = 0usize;
        for (index, &ancilla) in ancillas.iter().enumerate() {
            group_inputs.clear();
            if index > 0 {
                group_inputs.push(ancillas[index - 1]);
            }
            let capacity = if index == 0 { d - 1 } else { d - 2 };
            for _ in 0..capacity {
                if next_control < controls.len() {
                    group_inputs.push(controls[next_control]);
                    next_control += 1;
                }
            }
            for &input in &group_inputs {
                gates.push(Gate::controlled(
                    SingleQuditOp::Add(1),
                    ancilla,
                    vec![Control::nonzero(input)],
                ));
            }
        }
        debug_assert_eq!(
            next_control,
            controls.len(),
            "every control must be counted"
        );
        gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    #[test]
    fn ancilla_count_formula() {
        let d3 = dim(3);
        assert_eq!(clean_ancilla_count(d3, 0), 0);
        assert_eq!(clean_ancilla_count(d3, 1), 0);
        assert_eq!(clean_ancilla_count(d3, 2), 1);
        assert_eq!(clean_ancilla_count(d3, 3), 2);
        assert_eq!(clean_ancilla_count(d3, 8), 7);
        let d5 = dim(5);
        assert_eq!(clean_ancilla_count(d5, 4), 1);
        assert_eq!(clean_ancilla_count(d5, 10), 3);
    }

    #[test]
    fn baseline_is_functionally_correct_with_clean_ancillas() {
        for d in [3u32, 4, 5] {
            let dimension = dim(d);
            let k = 3;
            let synthesis = CleanAncillaMct::new(dimension, k, SingleQuditOp::Swap(0, 1))
                .unwrap()
                .synthesize()
                .unwrap();
            let circuit = synthesis.circuit();
            let layout = synthesis.layout();
            for state in all_states(dimension, layout.width) {
                // The clean-ancilla contract: ancillas start in |0⟩.
                if layout.clean_ancillas.iter().any(|a| state[a.index()] != 0) {
                    continue;
                }
                let mut expected = state.clone();
                if state[..k].iter().all(|&x| x == 0) {
                    expected[k] = match expected[k] {
                        0 => 1,
                        1 => 0,
                        other => other,
                    };
                }
                let actual = circuit.apply_to_basis(&state).unwrap();
                assert_eq!(actual, expected, "d={d}, input {state:?}");
                for a in &layout.clean_ancillas {
                    assert_eq!(actual[a.index()], 0, "ancilla {a} not restored");
                }
            }
        }
    }

    #[test]
    fn two_qudit_gate_count_is_linear() {
        let dimension = dim(3);
        let mut previous = 0;
        for k in [2usize, 4, 8, 16, 32] {
            let synthesis = CleanAncillaMct::new(dimension, k, SingleQuditOp::Swap(0, 1))
                .unwrap()
                .synthesize()
                .unwrap();
            let count = synthesis.circuit().len();
            assert_eq!(count, 2 * (k + clean_ancilla_count(dimension, k) - 1) + 1);
            assert!(count > previous);
            previous = count;
        }
    }

    #[test]
    fn degenerate_cases() {
        let dimension = dim(3);
        for k in [0usize, 1] {
            let synthesis = CleanAncillaMct::new(dimension, k, SingleQuditOp::Add(1))
                .unwrap()
                .synthesize()
                .unwrap();
            assert_eq!(synthesis.resources().clean_ancillas(), 0);
            assert_eq!(synthesis.circuit().len(), 1);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(CleanAncillaMct::new(dim(2), 3, SingleQuditOp::Swap(0, 1)).is_err());
    }
}
