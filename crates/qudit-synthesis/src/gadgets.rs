//! The 2-controlled Toffoli gadgets of the paper.
//!
//! * [`two_controlled_swap_odd`] — Lemma III.3 / Fig. 5: for odd `d`, the
//!   `|00⟩-Xij` gate from five singly-controlled gates, ancilla-free.
//! * [`two_controlled_swap_even`] — Lemma III.1 / Fig. 2: for even `d ≥ 4`,
//!   the `|00⟩-Xij` gate from twenty singly-controlled gates and one borrowed
//!   ancilla.
//!
//! Both gadgets produce gates with **at most one control**, so the result can
//! be lowered to G-gates by `qudit_core::lowering`.

use qudit_core::{Control, Dimension, Gate, QuditId, SingleQuditOp};

use crate::error::{Result, SynthesisError};

/// Emits the Fig. 5 gadget: `|0⟩(c1)|0⟩(c2)-Xij` on `target` for **odd** `d`,
/// using five singly-controlled gates and no ancilla.
///
/// The correctness argument (Lemma III.3) relies on `d` being odd: for even
/// `d` the level `d − 1` would wrap to `0` under `X+1` and break the parity
/// bookkeeping.
///
/// # Errors
///
/// Returns an error when `d` is even or smaller than 3.
pub fn two_controlled_swap_odd(
    dimension: Dimension,
    c1: QuditId,
    c2: QuditId,
    target: QuditId,
    i: u32,
    j: u32,
) -> Result<Vec<Gate>> {
    if dimension.get() < 3 {
        return Err(SynthesisError::DimensionTooSmall {
            dimension: dimension.get(),
            minimum: 3,
        });
    }
    if dimension.is_even() {
        return Err(SynthesisError::Lowering {
            reason: format!(
                "Fig. 5 gadget requires odd dimension, got d = {}",
                dimension
            ),
        });
    }
    let d = dimension.get();
    let swap = SingleQuditOp::swap(dimension, i, j)?;
    Ok(vec![
        Gate::controlled(swap.clone(), target, vec![Control::zero(c1)]),
        Gate::controlled(SingleQuditOp::Add(1), c2, vec![Control::zero(c1)]),
        Gate::controlled(swap.clone(), target, vec![Control::even_nonzero(c2)]),
        Gate::controlled(SingleQuditOp::Add(d - 1), c2, vec![Control::zero(c1)]),
        Gate::controlled(swap, target, vec![Control::even_nonzero(c2)]),
    ])
}

/// Emits the Fig. 2 gadget: `|0⟩(c1)|0⟩(c2)-Xij` on `target` for **even**
/// `d ≥ 4`, using twenty singly-controlled gates and the qudit `borrowed` as
/// a borrowed ancilla (returned to its initial state).
///
/// The gate order is reconstructed from the activation conditions listed in
/// the proof of Lemma III.1; see DESIGN.md for the substitution note.
///
/// # Errors
///
/// Returns an error when `d` is odd or smaller than 4, or when the borrowed
/// qudit coincides with one of the other three qudits.
pub fn two_controlled_swap_even(
    dimension: Dimension,
    c1: QuditId,
    c2: QuditId,
    target: QuditId,
    i: u32,
    j: u32,
    borrowed: QuditId,
) -> Result<Vec<Gate>> {
    if dimension.is_odd() {
        return Err(SynthesisError::Lowering {
            reason: format!(
                "Fig. 2 gadget requires even dimension, got d = {}",
                dimension
            ),
        });
    }
    if dimension.get() < 4 {
        return Err(SynthesisError::DimensionTooSmall {
            dimension: dimension.get(),
            minimum: 4,
        });
    }
    if borrowed == c1 || borrowed == c2 || borrowed == target {
        return Err(SynthesisError::Lowering {
            reason: "borrowed ancilla must be distinct from the gadget's controls and target"
                .to_string(),
        });
    }
    let swap = SingleQuditOp::swap(dimension, i, j)?;
    let block = |gates: &mut Vec<Gate>| {
        // 1–3: conditionally move |0⟩ of c1 out of the way based on c2 and the
        // parity of the borrowed ancilla.
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            c1,
            vec![Control::level(c2, 1)],
        ));
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            c2,
            vec![Control::odd(borrowed)],
        ));
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            c1,
            vec![Control::level(c2, 1)],
        ));
        // 4: the conditional application to the target.
        gates.push(Gate::controlled(
            swap.clone(),
            target,
            vec![Control::zero(c1)],
        ));
        // 5–7: undo steps 1–3.
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            c1,
            vec![Control::level(c2, 1)],
        ));
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            c2,
            vec![Control::odd(borrowed)],
        ));
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            c1,
            vec![Control::level(c2, 1)],
        ));
        // 8–10: flip the parity of the borrowed ancilla exactly when
        // (c2 = 0 ∧ c1 = 0) or (c2 ≠ 0 ∧ c1 = 2).
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 2),
            c1,
            vec![Control::zero(c2)],
        ));
        gates.push(Gate::controlled(
            SingleQuditOp::ParityFlipEven,
            borrowed,
            vec![Control::level(c1, 2)],
        ));
        gates.push(Gate::controlled(
            SingleQuditOp::Swap(0, 2),
            c1,
            vec![Control::zero(c2)],
        ));
    };
    let mut gates = Vec::with_capacity(20);
    block(&mut gates);
    block(&mut gates);
    Ok(gates)
}

/// Emits a `|0⟩(c1)|0⟩(c2)-Xij` gadget for either parity of `d`.
///
/// For odd `d` the ancilla-free Fig. 5 gadget is used and `borrowed` is
/// ignored; for even `d` the Fig. 2 gadget is used and `borrowed` must name a
/// distinct fourth qudit.
///
/// # Errors
///
/// Returns an error when `d < 3`, or when `d` is even and no borrowed qudit
/// is supplied.
pub fn two_controlled_swap(
    dimension: Dimension,
    c1: QuditId,
    c2: QuditId,
    target: QuditId,
    i: u32,
    j: u32,
    borrowed: Option<QuditId>,
) -> Result<Vec<Gate>> {
    if dimension.is_odd() {
        two_controlled_swap_odd(dimension, c1, c2, target, i, j)
    } else {
        let borrowed = borrowed.ok_or(SynthesisError::BorrowedAncillaRequired {
            dimension: dimension.get(),
        })?;
        two_controlled_swap_even(dimension, c1, c2, target, i, j, borrowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Circuit;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    /// Exhaustively checks that `gates` implements |00⟩-Xij with every other
    /// qudit (in a register of `width`) acting as a borrowed ancilla.
    fn check_gadget(dimension: Dimension, width: usize, gates: Vec<Gate>, i: u32, j: u32) {
        let mut circuit = Circuit::new(dimension, width);
        circuit.extend_gates(gates).unwrap();
        let d = dimension.as_usize();
        let size = dimension.register_size(width);
        for index in 0..size {
            let mut digits = vec![0u32; width];
            let mut rest = index;
            for slot in digits.iter_mut().rev() {
                *slot = (rest % d) as u32;
                rest /= d;
            }
            let mut expected = digits.clone();
            if digits[0] == 0 && digits[1] == 0 {
                let t = expected[2];
                expected[2] = if t == i {
                    j
                } else if t == j {
                    i
                } else {
                    t
                };
            }
            let actual = circuit.apply_to_basis(&digits).unwrap();
            assert_eq!(actual, expected, "input {digits:?}");
        }
    }

    #[test]
    fn odd_gadget_implements_two_controlled_swap() {
        for d in [3u32, 5, 7] {
            let dimension = dim(d);
            let gates = two_controlled_swap_odd(
                dimension,
                QuditId::new(0),
                QuditId::new(1),
                QuditId::new(2),
                0,
                1,
            )
            .unwrap();
            assert_eq!(gates.len(), 5);
            check_gadget(dimension, 3, gates, 0, 1);
        }
    }

    #[test]
    fn odd_gadget_supports_arbitrary_target_levels() {
        let dimension = dim(5);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i == j {
                    continue;
                }
                let gates = two_controlled_swap_odd(
                    dimension,
                    QuditId::new(0),
                    QuditId::new(1),
                    QuditId::new(2),
                    i,
                    j,
                )
                .unwrap();
                check_gadget(dimension, 3, gates, i, j);
            }
        }
    }

    #[test]
    fn even_gadget_implements_two_controlled_swap_with_borrowed_ancilla() {
        for d in [4u32, 6] {
            let dimension = dim(d);
            let gates = two_controlled_swap_even(
                dimension,
                QuditId::new(0),
                QuditId::new(1),
                QuditId::new(2),
                0,
                1,
                QuditId::new(3),
            )
            .unwrap();
            assert_eq!(gates.len(), 20);
            check_gadget(dimension, 4, gates, 0, 1);
        }
    }

    #[test]
    fn even_gadget_supports_arbitrary_target_levels() {
        let dimension = dim(4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i == j {
                    continue;
                }
                let gates = two_controlled_swap_even(
                    dimension,
                    QuditId::new(0),
                    QuditId::new(1),
                    QuditId::new(2),
                    i,
                    j,
                    QuditId::new(3),
                )
                .unwrap();
                check_gadget(dimension, 4, gates, i, j);
            }
        }
    }

    #[test]
    fn gadget_gate_count_is_linear_in_d() {
        // O(d) claim of Lemmas III.1 and III.3: the number of singly
        // controlled gates is constant, and each lowers to O(d) G-gates.
        for d in [3u32, 5, 7, 9, 11] {
            let gates = two_controlled_swap_odd(
                dim(d),
                QuditId::new(0),
                QuditId::new(1),
                QuditId::new(2),
                0,
                1,
            )
            .unwrap();
            assert_eq!(gates.len(), 5);
        }
    }

    #[test]
    fn parity_mismatches_are_rejected() {
        assert!(two_controlled_swap_odd(
            dim(4),
            QuditId::new(0),
            QuditId::new(1),
            QuditId::new(2),
            0,
            1
        )
        .is_err());
        assert!(two_controlled_swap_even(
            dim(5),
            QuditId::new(0),
            QuditId::new(1),
            QuditId::new(2),
            0,
            1,
            QuditId::new(3)
        )
        .is_err());
        assert!(two_controlled_swap_even(
            dim(4),
            QuditId::new(0),
            QuditId::new(1),
            QuditId::new(2),
            0,
            1,
            QuditId::new(2)
        )
        .is_err());
        assert!(two_controlled_swap(
            dim(4),
            QuditId::new(0),
            QuditId::new(1),
            QuditId::new(2),
            0,
            1,
            None
        )
        .is_err());
        assert!(two_controlled_swap(
            dim(3),
            QuditId::new(0),
            QuditId::new(1),
            QuditId::new(2),
            0,
            1,
            None
        )
        .is_ok());
    }
}
