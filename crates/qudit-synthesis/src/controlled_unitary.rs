//! Fig. 1(b): the multi-controlled gate `|0^k⟩-U` for an arbitrary
//! single-qudit unitary `U`, using one clean ancilla and `O(k)` two-qudit
//! gates.
//!
//! The clean ancilla starts in `|0⟩`; a k-Toffoli flips it to `|1⟩` exactly
//! when every control is `|0⟩`, a singly-controlled `U` fires on the ancilla,
//! and a second k-Toffoli restores the ancilla to `|0⟩`.

use qudit_core::{
    AncillaKind, AncillaUsage, Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp,
};

use crate::error::{Result, SynthesisError};
use crate::mct::{emit_multi_controlled, MctLayout, MctSynthesis};
use crate::resources::Resources;

/// Register layout of a [`ControlledUnitary`] synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlledUnitaryLayout {
    /// The control qudits.
    pub controls: Vec<QuditId>,
    /// The target qudit.
    pub target: QuditId,
    /// The clean ancilla qudit (must start in `|0⟩`, is returned to `|0⟩`).
    pub clean_ancilla: QuditId,
    /// Total register width.
    pub width: usize,
}

/// The result of a controlled-unitary synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlledUnitarySynthesis {
    circuit: Circuit,
    layout: ControlledUnitaryLayout,
    resources: Resources,
}

impl ControlledUnitarySynthesis {
    /// The synthesised circuit (macro-gate level).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The register layout.
    pub fn layout(&self) -> &ControlledUnitaryLayout {
        &self.layout
    }

    /// Gate and ancilla counts.  For a non-classical `U` the elementary and
    /// G-gate counts refer to the classical part of the circuit only (the two
    /// k-Toffolis); the singly-controlled `U` is counted as one two-qudit
    /// gate, matching the cost model of the paper.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }
}

/// Builder for `|0^k⟩-U` with one clean ancilla (Fig. 1b).
///
/// # Example
///
/// ```
/// # use qudit_core::{Dimension, SingleQuditOp};
/// # use qudit_synthesis::ControlledUnitary;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let synthesis = ControlledUnitary::new(d, 4, SingleQuditOp::Add(1))?.synthesize()?;
/// assert_eq!(synthesis.resources().clean_ancillas(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ControlledUnitary {
    dimension: Dimension,
    controls: usize,
    op: SingleQuditOp,
}

impl ControlledUnitary {
    /// Creates a builder for `|0^k⟩-op` on `d`-level qudits.
    ///
    /// The operation may be any single-qudit unitary (including classical
    /// permutations).
    ///
    /// # Errors
    ///
    /// Returns an error when `d < 3` or the operation is invalid for the
    /// dimension.
    pub fn new(dimension: Dimension, controls: usize, op: SingleQuditOp) -> Result<Self> {
        if dimension.get() < 3 {
            return Err(SynthesisError::DimensionTooSmall {
                dimension: dimension.get(),
                minimum: 3,
            });
        }
        op.validate(dimension)?;
        Ok(ControlledUnitary {
            dimension,
            controls,
            op,
        })
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of controls `k`.
    pub fn controls(&self) -> usize {
        self.controls
    }

    /// The target operation.
    pub fn op(&self) -> &SingleQuditOp {
        &self.op
    }

    /// Synthesises the gate.
    ///
    /// The register layout is `controls (0 … k−1), target (k), clean ancilla
    /// (k+1)`.  For even dimensions the internal k-Toffolis borrow the target
    /// qudit, so no additional ancilla is required beyond the clean one.
    ///
    /// # Errors
    ///
    /// Returns an error when the construction fails (which indicates a bug;
    /// all valid parameters succeed).
    pub fn synthesize(&self) -> Result<ControlledUnitarySynthesis> {
        let k = self.controls;
        let dimension = self.dimension;
        let controls: Vec<QuditId> = (0..k).map(QuditId::new).collect();
        let target = QuditId::new(k);
        let clean = QuditId::new(k + 1);
        let width = k + 2;
        let mut circuit = Circuit::new(dimension, width);
        emit_controlled_unitary(&mut circuit, &controls, target, &self.op, clean)?;

        let ancillas = AncillaUsage::of_kind(AncillaKind::Clean, 1);
        let resources = if self.op.is_classical() {
            Resources::for_circuit(&circuit, ancillas)?
        } else {
            // The controlled-U gate itself cannot be lowered to G-gates;
            // count the classical scaffolding separately.
            let mut classical = Circuit::new(dimension, width);
            for gate in circuit.gates() {
                if gate.is_classical() {
                    classical.push(gate.clone())?;
                }
            }
            let mut resources = Resources::for_circuit(&classical, ancillas)?;
            resources.macro_gates = circuit.len();
            resources.two_qudit_gates += 1; // the |1⟩-U gate
            resources.elementary_gates += 1;
            resources
        };
        Ok(ControlledUnitarySynthesis {
            circuit,
            layout: ControlledUnitaryLayout {
                controls,
                target,
                clean_ancilla: clean,
                width,
            },
            resources,
        })
    }
}

/// Appends `|0^k⟩-op` (with `op` an arbitrary single-qudit unitary) to an
/// existing circuit, using `clean_ancilla` as the clean ancilla (Fig. 1b).
///
/// For zero or one control the gate is emitted directly and the ancilla is
/// not touched.
///
/// # Errors
///
/// Returns an error when the ancilla collides with a control or the target,
/// or when the underlying Toffoli synthesis fails.
pub fn emit_controlled_unitary(
    circuit: &mut Circuit,
    controls: &[QuditId],
    target: QuditId,
    op: &SingleQuditOp,
    clean_ancilla: QuditId,
) -> Result<()> {
    let k = controls.len();
    if k <= 1 {
        let zero_controls: Vec<Control> = controls.iter().map(|&q| Control::zero(q)).collect();
        circuit.push(Gate::new(
            qudit_core::GateOp::Single(op.clone()),
            target,
            zero_controls,
        ))?;
        return Ok(());
    }
    if controls.contains(&clean_ancilla) || clean_ancilla == target {
        return Err(SynthesisError::Lowering {
            reason: "the clean ancilla must be distinct from the controls and target".to_string(),
        });
    }
    let control_levels: Vec<(QuditId, u32)> = controls.iter().map(|&q| (q, 0)).collect();
    // Flip the clean ancilla 0 ↔ 1 when every control is |0⟩.  For even
    // dimensions the Toffoli borrows the (currently idle) target qudit.
    let borrowed_pool = [target];
    emit_multi_controlled(
        circuit,
        &control_levels,
        clean_ancilla,
        &SingleQuditOp::Swap(0, 1),
        &borrowed_pool,
    )?;
    // Apply U to the target when the ancilla is |1⟩.
    circuit.push(Gate::new(
        qudit_core::GateOp::Single(op.clone()),
        target,
        vec![Control::level(clean_ancilla, 1)],
    ))?;
    // Restore the ancilla.
    emit_multi_controlled(
        circuit,
        &control_levels,
        clean_ancilla,
        &SingleQuditOp::Swap(0, 1),
        &borrowed_pool,
    )?;
    Ok(())
}

/// Convenience re-export of the Toffoli layout type for documentation links.
#[doc(hidden)]
pub type _MctTypes = (MctLayout, MctSynthesis);

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::math::{Complex, SquareMatrix};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    #[test]
    fn classical_controlled_unitary_behaves_like_mct_with_clean_ancilla() {
        for d in [3u32, 4] {
            let dimension = dim(d);
            let k = 3;
            let synthesis = ControlledUnitary::new(dimension, k, SingleQuditOp::Add(1))
                .unwrap()
                .synthesize()
                .unwrap();
            let circuit = synthesis.circuit();
            let clean = synthesis.layout().clean_ancilla.index();
            for state in all_states(dimension, synthesis.layout().width) {
                if state[clean] != 0 {
                    continue; // outside the clean-ancilla contract
                }
                let mut expected = state.clone();
                if state[..k].iter().all(|&x| x == 0) {
                    expected[k] = (expected[k] + 1) % d;
                }
                assert_eq!(
                    circuit.apply_to_basis(&state).unwrap(),
                    expected,
                    "d={d}, {state:?}"
                );
            }
        }
    }

    #[test]
    fn ancilla_is_always_restored_to_zero() {
        let dimension = dim(3);
        let k = 2;
        let synthesis = ControlledUnitary::new(dimension, k, SingleQuditOp::Swap(0, 2))
            .unwrap()
            .synthesize()
            .unwrap();
        let circuit = synthesis.circuit();
        let clean = synthesis.layout().clean_ancilla.index();
        for state in all_states(dimension, synthesis.layout().width) {
            if state[clean] != 0 {
                continue;
            }
            let output = circuit.apply_to_basis(&state).unwrap();
            assert_eq!(output[clean], 0, "ancilla not restored for {state:?}");
        }
    }

    #[test]
    fn resources_report_one_clean_ancilla_and_linear_gate_count() {
        let dimension = dim(3);
        let mut previous = 0usize;
        for k in [2usize, 4, 8, 16] {
            let synthesis = ControlledUnitary::new(dimension, k, SingleQuditOp::Add(1))
                .unwrap()
                .synthesize()
                .unwrap();
            let resources = synthesis.resources();
            assert_eq!(resources.clean_ancillas(), 1);
            assert!(resources.g_gates > 0);
            assert!(resources.g_gates >= previous);
            // Linear in k with a constant depending only on d.
            assert!(resources.g_gates <= 6000 * k.max(1));
            previous = resources.g_gates;
        }
    }

    #[test]
    fn truly_quantum_target_operations_are_supported() {
        // A non-classical single-qutrit unitary controlled on two qudits.
        let dimension = dim(3);
        let s = 1.0 / 2.0f64.sqrt();
        let mut m = SquareMatrix::identity(3);
        m[(0, 0)] = Complex::from_real(s);
        m[(0, 1)] = Complex::from_real(s);
        m[(1, 0)] = Complex::from_real(s);
        m[(1, 1)] = Complex::from_real(-s);
        let op = SingleQuditOp::unitary(dimension, m).unwrap();
        let synthesis = ControlledUnitary::new(dimension, 2, op)
            .unwrap()
            .synthesize()
            .unwrap();
        assert_eq!(synthesis.layout().width, 4);
        assert!(!synthesis.circuit().is_classical());
        assert_eq!(synthesis.resources().clean_ancillas(), 1);
    }

    #[test]
    fn degenerate_control_counts_skip_the_ancilla() {
        let dimension = dim(3);
        let synthesis = ControlledUnitary::new(dimension, 1, SingleQuditOp::Add(2))
            .unwrap()
            .synthesize()
            .unwrap();
        assert_eq!(synthesis.circuit().len(), 1);
    }

    #[test]
    fn ancilla_collisions_are_rejected() {
        let dimension = dim(3);
        let mut circuit = Circuit::new(dimension, 3);
        let result = emit_controlled_unitary(
            &mut circuit,
            &[QuditId::new(0), QuditId::new(1)],
            QuditId::new(2),
            &SingleQuditOp::Add(1),
            QuditId::new(2),
        );
        assert!(result.is_err());
    }
}
