//! Linear-size synthesis of multi-controlled qudit gates with at most one
//! ancilla — reproduction of *Optimal Synthesis of Multi-Controlled Qudit
//! Gates* (Zi, Li, Sun; DAC 2023).
//!
//! The crate implements every construction of Section III of the paper plus
//! the multi-controlled-unitary synthesis of Fig. 1(b):
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Lemma III.1 / Fig. 2 (even-d 2-Toffoli gadget) | [`gadgets::two_controlled_swap_even`] |
//! | Lemma III.3 / Fig. 5 (odd-d 2-Toffoli gadget) | [`gadgets::two_controlled_swap_odd`] |
//! | Fig. 3 (parity ladder, even d) | [`ladders::parity_ladder_even`] |
//! | Lemma III.4 / Fig. 7 (increment ladder, odd d) | [`ladders::add_one_ladder_odd`] |
//! | Lemma III.5 / Figs. 8–9 (`P_k`) | [`pk`] |
//! | Theorem III.2 / Fig. 4 (even-d k-Toffoli, one borrowed ancilla) | [`mct_even`] |
//! | Theorem III.6 / Fig. 10 (odd-d k-Toffoli, ancilla-free) | [`mct_odd`] |
//! | Fig. 1(b) (`\|0^k⟩-U`, one clean ancilla) | [`ControlledUnitary`] |
//!
//! The public entry points are [`KToffoli`], [`MultiControlledGate`],
//! [`ControlledUnitary`] and the in-place emitters
//! [`emit_multi_controlled`] / [`emit_controlled_unitary`]; compilation of
//! the synthesised circuits goes through the [`Compiler`] facade configured
//! by [`CompileOptions`] (see [`compiler`]).
//!
//! # Example
//!
//! ```
//! use qudit_core::Dimension;
//! use qudit_synthesis::KToffoli;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Ancilla-free 6-controlled Toffoli on 3-level qudits (Theorem III.6).
//! let synthesis = KToffoli::new(Dimension::new(3)?, 6)?.synthesize()?;
//! assert_eq!(synthesis.resources().total_ancillas(), 0);
//!
//! // The G-gate count grows linearly with the number of controls.
//! let g_gates = synthesis.resources().g_gates;
//! assert!(g_gates > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
mod controlled_unitary;
mod error;
pub mod gadgets;
pub mod ladders;
pub mod lower;
mod mct;
pub mod mct_even;
pub mod mct_odd;
pub mod pipeline;
pub mod pk;
mod resources;
pub mod service;

pub use compiler::{
    BatchResult, CompileOptions, CompileResult, Compiler, OptLevel, Threads, Verify, VerifyOutcome,
};
pub use controlled_unitary::{
    emit_controlled_unitary, ControlledUnitary, ControlledUnitaryLayout, ControlledUnitarySynthesis,
};
pub use error::{Result, SynthesisError};
pub use mct::{emit_multi_controlled, KToffoli, MctLayout, MctSynthesis, MultiControlledGate};
pub use pipeline::{LowerToElementary, Pipeline};
pub use resources::Resources;
pub use service::{
    CompileService, JobReply, JobRequest, JobStatus, ServiceClient, ServiceConfig, ServiceStats,
};
