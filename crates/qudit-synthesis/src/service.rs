//! The compile service: a blocking TCP/newline-JSON front door over the
//! [`Compiler`] facade.
//!
//! The ROADMAP's north star is compilation-as-a-service: a long-running
//! server absorbing heavy concurrent traffic.  This module is the first cut
//! of that server, built from what is already in-tree — no async runtime
//! exists offline, so the front door is a hand-rolled blocking design:
//!
//! * **Transport** — one listener thread accepts TCP connections; each
//!   connection gets a reader thread.  Requests and replies are one JSON
//!   object per line (see [Protocol](#protocol)).
//! * **Scheduling** — jobs enter per-tenant FIFO queues.  At most one job
//!   per tenant is in flight at a time, so a tenant's replies always come
//!   back in submission order, and no tenant can monopolise the workers.
//! * **Admission control** — a tenant whose queue is at
//!   [`ServiceConfig::max_queue_depth`] gets a typed `rejected` reply
//!   instead of unbounded buffering.
//! * **Backpressure** — when the total of queued plus in-flight jobs
//!   reaches [`ServiceConfig::max_pending`], readers stop draining their
//!   sockets until a worker finishes, so saturation propagates to clients
//!   through TCP flow control instead of through memory growth.
//! * **Shared substrates** — every job compiles through one
//!   [`Compiler`] pinned to a persistent
//!   [`WorkStealingPool`] (long-lived workers, no
//!   thread-spawn per job) and one bounded, shared
//!   [`LoweringCache`] ([`ServiceConfig::cache_capacity`]), optionally
//!   warm-started from a snapshot ([`ServiceConfig::warm_start`]) and
//!   exportable at any time ([`CompileService::cache_snapshot`]).
//!
//! # Protocol
//!
//! Requests are flat JSON objects, one per line:
//!
//! ```text
//! {"tenant":"alice","id":"job-1","source":"OPENQASM 3.0;\nqudit[3] q[2];\nctrl @ swap(0, 1) q[0], q[1];"}
//! ```
//!
//! Replies are flat JSON objects, one per line, echoing `tenant` and `id`:
//!
//! * `"status":"ok"` with `gates`, `depth`, `verified` and the compiled
//!   `qasm` text;
//! * `"status":"rejected"` with `error` when admission control turned the
//!   job away (the job was **not** compiled);
//! * `"status":"error"` with `error` when the job was malformed or the
//!   compilation failed.
//!
//! Every submitted line gets exactly one reply.
//!
//! # Example
//!
//! ```
//! use qudit_synthesis::service::{CompileService, JobRequest, ServiceClient, ServiceConfig};
//!
//! # fn main() -> std::io::Result<()> {
//! let service = CompileService::start(ServiceConfig::new().workers(1))?;
//! let mut client = ServiceClient::connect(service.local_addr())?;
//! let reply = client.roundtrip(&JobRequest {
//!     tenant: "doc".into(),
//!     id: "1".into(),
//!     source: "OPENQASM 3.0;\nqudit[3] q[2];\nctrl @ swap(0, 1) q[0], q[1];".into(),
//! })?;
//! assert!(reply.is_ok(), "{}", reply.message);
//! assert!(reply.gates > 0);
//! drop(client);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qudit_core::cache::{CacheMetrics, LoweringCache};
use qudit_core::pipeline::CacheMode;
use qudit_core::pool::WorkStealingPool;

use crate::compiler::{CompileOptions, Compiler};

/// How long blocked socket reads and the accept loop sleep between checks
/// of the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Configuration of a [`CompileService`].
///
/// The defaults bind an ephemeral loopback port, run two compile workers
/// over a persistent pool of the same width, bound the shared cache at 1024
/// entries, and apply the standard [`CompileOptions`] flow to every job.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    bind: String,
    workers: usize,
    max_queue_depth: usize,
    max_pending: usize,
    cache_capacity: usize,
    warm_start: Option<String>,
    options: CompileOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 2,
            max_queue_depth: 16,
            max_pending: 64,
            cache_capacity: 1024,
            warm_start: None,
            options: CompileOptions::new(),
        }
    }
}

impl ServiceConfig {
    /// The default configuration (see the type-level docs).
    pub fn new() -> Self {
        ServiceConfig::default()
    }

    /// The address to bind (default `127.0.0.1:0`, an ephemeral loopback
    /// port — read the resolved port from [`CompileService::local_addr`]).
    #[must_use]
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.bind = addr.into();
        self
    }

    /// Number of compile workers — concurrent jobs in flight — and the
    /// width of the persistent pool they share (default 2; values below 1
    /// are treated as 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Per-tenant queue bound: a job arriving while its tenant already has
    /// this many queued is rejected with a typed reply (default 16; values
    /// below 1 are treated as 1).
    #[must_use]
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth.max(1);
        self
    }

    /// Global backpressure bound: while queued plus in-flight jobs total
    /// this many, connection readers stop draining their sockets (default
    /// 64; values below 1 are treated as 1).
    #[must_use]
    pub fn max_pending(mut self, pending: usize) -> Self {
        self.max_pending = pending.max(1);
        self
    }

    /// Entry bound of the shared lowering cache (default 1024; values below
    /// 1 are treated as 1).
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Warm-starts the cache from a snapshot produced by
    /// [`CompileService::cache_snapshot`] (or
    /// [`LoweringCache::snapshot`]).  Corrupt snapshots fail
    /// [`CompileService::start`] with a typed error instead of booting
    /// cold.
    #[must_use]
    pub fn warm_start(mut self, snapshot: impl Into<String>) -> Self {
        self.warm_start = Some(snapshot.into());
        self
    }

    /// The compile options applied to every job (default
    /// [`CompileOptions::new`]).  The cache and pool knobs are overridden
    /// by the service's own shared cache and persistent pool.
    #[must_use]
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }
}

/// One compile job as submitted over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// The tenant whose FIFO queue the job joins.
    pub tenant: String,
    /// Caller-chosen job identifier, echoed in the reply.
    pub id: String,
    /// The qasm program to compile (see [`qudit_core::qasm`]).
    pub source: String,
}

/// Reply status of a job (see the module-level protocol docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job compiled; the reply carries the result summary.
    Ok,
    /// Admission control turned the job away without compiling it.
    Rejected,
    /// The job was malformed or the compilation failed.
    Error,
}

/// One reply line, parsed (see [`ServiceClient::recv`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReply {
    /// The tenant echoed from the request (empty for unparsable requests).
    pub tenant: String,
    /// The job id echoed from the request (empty for unparsable requests).
    pub id: String,
    /// Outcome of the job.
    pub status: JobStatus,
    /// Gate count of the compiled circuit (`Ok` replies only).
    pub gates: usize,
    /// Depth of the compiled circuit (`Ok` replies only).
    pub depth: usize,
    /// Whether the compilation was verified (`Ok` replies only).
    pub verified: bool,
    /// The compiled circuit as canonical qasm (`Ok` replies only).
    pub qasm: String,
    /// The rejection or error description (non-`Ok` replies only).
    pub message: String,
}

impl JobReply {
    /// Returns `true` when the job compiled successfully.
    pub fn is_ok(&self) -> bool {
        self.status == JobStatus::Ok
    }
}

/// Lifetime counters of a [`CompileService`], read with
/// [`CompileService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted into a tenant queue.
    pub accepted: u64,
    /// Jobs compiled and replied to with `status: ok`.
    pub completed: u64,
    /// Jobs turned away by admission control.
    pub rejected: u64,
    /// Lines that did not parse as job requests.
    pub protocol_errors: u64,
    /// Admitted jobs whose compilation failed.
    pub compile_errors: u64,
    /// Metrics of the shared lowering cache.
    pub cache: CacheMetrics,
}

/// A queued job plus the connection its reply goes back to.
struct Job {
    request: JobRequest,
    reply_to: Arc<Mutex<TcpStream>>,
}

/// One tenant's FIFO queue; `busy` pins the one-in-flight-per-tenant
/// invariant that keeps a tenant's replies in submission order.
#[derive(Default)]
struct TenantQueue {
    jobs: VecDeque<Job>,
    busy: bool,
}

/// Scheduler state shared by readers (producers) and workers (consumers).
struct SchedulerState {
    tenants: HashMap<String, TenantQueue>,
    /// Queued plus in-flight jobs — the quantity backpressure bounds.
    pending: usize,
    shutdown: bool,
}

/// Everything the service threads share.
struct Shared {
    state: Mutex<SchedulerState>,
    /// Signals workers that a job may have become runnable.
    job_ready: Condvar,
    /// Signals readers that `pending` dropped below the backpressure bound.
    space: Condvar,
    compiler: Compiler,
    cache: Arc<LoweringCache>,
    max_queue_depth: usize,
    max_pending: usize,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    protocol_errors: AtomicU64,
    compile_errors: AtomicU64,
}

/// A running compile service; dropping (or calling
/// [`CompileService::shutdown`]) stops accepting, drains queued jobs and
/// joins every thread.
pub struct CompileService {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl CompileService {
    /// Boots the service: binds the listener, restores the warm-start
    /// snapshot if one was configured, and spawns the acceptor and worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; a corrupt warm-start snapshot fails with
    /// [`io::ErrorKind::InvalidData`] wrapping the typed
    /// [`qudit_core::QuditError::SnapshotInvalid`] message.
    pub fn start(config: ServiceConfig) -> io::Result<Self> {
        let cache = LoweringCache::shared_with_capacity(config.cache_capacity);
        if let Some(snapshot) = &config.warm_start {
            cache
                .restore_snapshot(snapshot)
                .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))?;
        }
        let pool = WorkStealingPool::persistent(config.workers);
        let compiler = config
            .options
            .clone()
            .cache(CacheMode::Shared(cache.clone()))
            .pool(pool)
            .compiler();
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedulerState {
                tenants: HashMap::new(),
                pending: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            space: Condvar::new(),
            compiler,
            cache,
            max_queue_depth: config.max_queue_depth,
            max_pending: config.max_pending,
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            compile_errors: AtomicU64::new(0),
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = shared.clone();
            let readers = readers.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared, &readers))
        };
        let workers = (0..config.workers)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(CompileService {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            readers,
        })
    }

    /// The address the service is listening on (with the resolved port when
    /// the configuration asked for an ephemeral one).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service's lifetime counters plus the shared cache's metrics.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
            compile_errors: self.shared.compile_errors.load(Ordering::Relaxed),
            cache: self.shared.cache.metrics(),
        }
    }

    /// Serialises the shared cache for a warm start of a later service (see
    /// [`ServiceConfig::warm_start`]).
    pub fn cache_snapshot(&self) -> String {
        self.shared.cache.snapshot()
    }

    /// Stops the service: no new connections are accepted, queued jobs are
    /// drained and replied to, and every thread is joined.  Returns the
    /// final [`ServiceStats`].
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        self.shared.space.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *lock_unpoisoned(&self.readers));
        for reader in readers {
            let _ = reader.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Locks a mutex, recovering the guard if a peer panicked while holding it.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The listener thread: accepts connections until shutdown, spawning one
/// reader thread per connection.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, readers: &Mutex<Vec<JoinHandle<()>>>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                let handle = std::thread::spawn(move || reader_loop(stream, &shared));
                lock_unpoisoned(readers).push(handle);
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// One connection's reader: parses request lines, applies admission control
/// and backpressure, and enqueues accepted jobs.
fn reader_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let reply_to = Arc::new(Mutex::new(write_half));
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_line(trimmed, shared, &reply_to);
                }
                line.clear();
            }
            Err(error)
                if matches!(
                    error.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Partial reads stay accumulated in `line`; just check for
                // shutdown and keep waiting.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Parses one request line and either replies immediately (malformed /
/// rejected) or enqueues the job.
fn handle_line(line: &str, shared: &Arc<Shared>, reply_to: &Arc<Mutex<TcpStream>>) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(error) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            send_reply(
                reply_to,
                &error_reply(&error.tenant, &error.id, &error.reason),
            );
            return;
        }
    };
    let mut state = lock_unpoisoned(&shared.state);
    // Backpressure: stop draining this socket while the service is full.
    while state.pending >= shared.max_pending && !state.shutdown {
        state = shared
            .space
            .wait(state)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    if state.shutdown {
        drop(state);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        send_reply(
            reply_to,
            &rejected_reply(&request.tenant, &request.id, "service is shutting down"),
        );
        return;
    }
    let queue = state.tenants.entry(request.tenant.clone()).or_default();
    if queue.jobs.len() >= shared.max_queue_depth {
        drop(state);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        send_reply(
            reply_to,
            &rejected_reply(&request.tenant, &request.id, "tenant queue is full"),
        );
        return;
    }
    queue.jobs.push_back(Job {
        request,
        reply_to: reply_to.clone(),
    });
    state.pending += 1;
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    drop(state);
    shared.job_ready.notify_all();
}

/// One compile worker: claims runnable jobs (front of a non-busy tenant's
/// queue), compiles them and writes the reply.  Exits when shutdown is set
/// and nothing is runnable — queued jobs are drained first.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let mut state = lock_unpoisoned(&shared.state);
        let job = loop {
            let runnable = state
                .tenants
                .iter()
                .find(|(_, queue)| !queue.busy && !queue.jobs.is_empty())
                .map(|(tenant, _)| tenant.clone());
            if let Some(tenant) = runnable {
                let queue = state.tenants.get_mut(&tenant).expect("tenant exists");
                queue.busy = true;
                break queue.jobs.pop_front().expect("queue is non-empty");
            }
            if state.shutdown {
                return;
            }
            state = shared
                .job_ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        };
        drop(state);
        let reply = compile_job(shared, &job.request);
        send_reply(&job.reply_to, &reply);
        let mut state = lock_unpoisoned(&shared.state);
        if let Some(queue) = state.tenants.get_mut(&job.request.tenant) {
            queue.busy = false;
        }
        state.pending -= 1;
        drop(state);
        // Completing a job can unblock both a reader (space) and a peer
        // worker (the tenant's next job became runnable).
        shared.space.notify_all();
        shared.job_ready.notify_all();
    }
}

/// Compiles one job and renders its reply line.
fn compile_job(shared: &Shared, request: &JobRequest) -> String {
    match shared.compiler.compile_source(&request.source) {
        Ok(result) => {
            shared.completed.fetch_add(1, Ordering::Relaxed);
            format!(
                "{{\"tenant\":\"{}\",\"id\":\"{}\",\"status\":\"ok\",\"gates\":{},\"depth\":{},\"verified\":{},\"qasm\":\"{}\"}}",
                json_escape(&request.tenant),
                json_escape(&request.id),
                result.circuit.len(),
                result.depth,
                result.verification.is_verified(),
                json_escape(&result.to_qasm()),
            )
        }
        Err(error) => {
            shared.compile_errors.fetch_add(1, Ordering::Relaxed);
            error_reply(&request.tenant, &request.id, &error.to_string())
        }
    }
}

/// Renders a `status: error` reply line.
fn error_reply(tenant: &str, id: &str, message: &str) -> String {
    format!(
        "{{\"tenant\":\"{}\",\"id\":\"{}\",\"status\":\"error\",\"error\":\"{}\"}}",
        json_escape(tenant),
        json_escape(id),
        json_escape(message),
    )
}

/// Renders a `status: rejected` reply line.
fn rejected_reply(tenant: &str, id: &str, message: &str) -> String {
    format!(
        "{{\"tenant\":\"{}\",\"id\":\"{}\",\"status\":\"rejected\",\"error\":\"{}\"}}",
        json_escape(tenant),
        json_escape(id),
        json_escape(message),
    )
}

/// Writes one reply line to a connection, ignoring write failures (the
/// client may already have disconnected).
fn send_reply(reply_to: &Mutex<TcpStream>, reply: &str) {
    let mut stream = lock_unpoisoned(reply_to);
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// A minimal blocking client for the newline-JSON protocol — what the
/// integration tests, the smoke example and the throughput bench drive the
/// service with.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServiceClient {
    /// Connects to a running service.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(ServiceClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Submits one job without waiting for its reply.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, request: &JobRequest) -> io::Result<()> {
        let line = format!(
            "{{\"tenant\":\"{}\",\"id\":\"{}\",\"source\":\"{}\"}}\n",
            json_escape(&request.tenant),
            json_escape(&request.id),
            json_escape(&request.source),
        );
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Sends a raw request line verbatim (for driving the protocol's error
    /// paths).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next reply line.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] when the server closed the
    /// connection and [`io::ErrorKind::InvalidData`] for unparsable reply
    /// lines.
    pub fn recv(&mut self) -> io::Result<JobReply> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_reply(line.trim())
            .map_err(|reason| io::Error::new(io::ErrorKind::InvalidData, reason))
    }

    /// Submits one job and waits for its reply.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceClient::send`] and [`ServiceClient::recv`]
    /// failures.
    pub fn roundtrip(&mut self, request: &JobRequest) -> io::Result<JobReply> {
        self.send(request)?;
        self.recv()
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object (string, number, boolean and null values
/// only — the whole protocol is flat) into key/value pairs.  String values
/// are unescaped; other values are kept as their raw token text.
fn parse_flat_json(line: &str) -> Result<HashMap<String, String>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = HashMap::new();
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("request is not a JSON object".to_string());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("missing ':' after key '{key}'"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => parse_string(&mut chars)?,
            Some(c) if c.is_ascii_digit() || *c == '-' || c.is_ascii_alphabetic() => {
                let mut token = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || *c == '-' || *c == '+' || *c == '.' {
                        token.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                token
            }
            _ => return Err(format!("unsupported value for key '{key}'")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finish(chars, fields),
            _ => return Err("expected ',' or '}' after a value".to_string()),
        }
    }
}

/// Requires only whitespace to remain after the closing brace.
fn finish(
    mut chars: std::iter::Peekable<std::str::Chars<'_>>,
    fields: HashMap<String, String>,
) -> Result<HashMap<String, String>, String> {
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content after the JSON object".to_string());
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\r' | '\n')) {
        chars.next();
    }
}

/// Parses a JSON string literal (the cursor must be on the opening quote).
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected a string".to_string());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let digit = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| "invalid \\u escape".to_string())?;
                        code = code * 16 + digit;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return Err("unknown escape sequence".to_string()),
            },
            Some(c) => out.push(c),
        }
    }
}

/// Why a request line was refused, echoing whatever identity fields did
/// parse so the error reply can still be correlated by the client.
#[derive(Debug)]
struct RequestError {
    tenant: String,
    id: String,
    reason: String,
}

/// Parses one request line into a [`JobRequest`].
fn parse_request(line: &str) -> Result<JobRequest, RequestError> {
    let fields = parse_flat_json(line).map_err(|reason| RequestError {
        tenant: String::new(),
        id: String::new(),
        reason,
    })?;
    let text = |name: &str| fields.get(name).cloned().unwrap_or_default();
    let require = |name: &str| {
        fields.get(name).cloned().ok_or_else(|| RequestError {
            tenant: text("tenant"),
            id: text("id"),
            reason: format!("missing field '{name}'"),
        })
    };
    Ok(JobRequest {
        tenant: require("tenant")?,
        id: require("id")?,
        source: require("source")?,
    })
}

/// Parses one reply line into a [`JobReply`].
fn parse_reply(line: &str) -> Result<JobReply, String> {
    let fields = parse_flat_json(line)?;
    let text = |name: &str| fields.get(name).cloned().unwrap_or_default();
    let number = |name: &str| {
        fields
            .get(name)
            .and_then(|raw| raw.parse::<usize>().ok())
            .unwrap_or(0)
    };
    let status = match text("status").as_str() {
        "ok" => JobStatus::Ok,
        "rejected" => JobStatus::Rejected,
        "error" => JobStatus::Error,
        other => return Err(format!("unknown reply status '{other}'")),
    };
    Ok(JobReply {
        tenant: text("tenant"),
        id: text("id"),
        status,
        gates: number("gates"),
        depth: number("depth"),
        verified: fields.get("verified").map(|v| v == "true").unwrap_or(false),
        qasm: text("qasm"),
        message: text("error"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_escapes() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let line = format!("{{\"k\":\"{}\"}}", json_escape(nasty));
        let fields = parse_flat_json(&line).unwrap();
        assert_eq!(fields["k"], nasty);
    }

    #[test]
    fn flat_json_accepts_numbers_and_booleans() {
        let fields =
            parse_flat_json("{\"gates\": 12, \"verified\": true, \"name\": \"x\"}").unwrap();
        assert_eq!(fields["gates"], "12");
        assert_eq!(fields["verified"], "true");
        assert_eq!(fields["name"], "x");
        assert!(parse_flat_json("{}").unwrap().is_empty());
    }

    #[test]
    fn malformed_json_is_rejected_with_a_reason() {
        for bad in [
            "",
            "[]",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":\"b\"",
            "{\"a\":\"b\"} trailing",
            "{\"a\":\"\\q\"}",
        ] {
            assert!(parse_flat_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn request_parsing_requires_every_field() {
        let full = "{\"tenant\":\"t\",\"id\":\"1\",\"source\":\"OPENQASM 3.0;\"}";
        let request = parse_request(full).unwrap();
        assert_eq!(request.tenant, "t");
        assert_eq!(request.id, "1");
        assert_eq!(request.source, "OPENQASM 3.0;");
        let error = parse_request("{\"tenant\":\"t\",\"id\":\"1\"}").unwrap_err();
        assert!(error.reason.contains("source"));
        assert_eq!((error.tenant.as_str(), error.id.as_str()), ("t", "1"));
        let garbage = parse_request("not json").unwrap_err();
        assert!(garbage.tenant.is_empty() && garbage.id.is_empty());
    }

    #[test]
    fn reply_parsing_reads_every_status() {
        let ok = parse_reply(
            "{\"tenant\":\"t\",\"id\":\"1\",\"status\":\"ok\",\"gates\":3,\"depth\":2,\
             \"verified\":true,\"qasm\":\"OPENQASM 3.0;\\n\"}",
        )
        .unwrap();
        assert!(ok.is_ok());
        assert_eq!((ok.gates, ok.depth), (3, 2));
        assert!(ok.verified);
        assert_eq!(ok.qasm, "OPENQASM 3.0;\n");
        let rejected = parse_reply(&rejected_reply("t", "2", "tenant queue is full")).unwrap();
        assert_eq!(rejected.status, JobStatus::Rejected);
        assert_eq!(rejected.message, "tenant queue is full");
        let error = parse_reply(&error_reply("t", "3", "boom")).unwrap();
        assert_eq!(error.status, JobStatus::Error);
        assert!(parse_reply("{\"status\":\"odd\"}").is_err());
    }
}
