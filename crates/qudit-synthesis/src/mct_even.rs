//! Theorem III.2 / Fig. 4: the k-Toffoli with one borrowed ancilla for even
//! dimensions.

use qudit_core::{Control, Dimension, Gate, QuditId, SingleQuditOp};

use crate::error::{Result, SynthesisError};
use crate::ladders::parity_ladder_even;

/// Emits the Fig. 4 circuit: `|0^k⟩-Xij` on `target` with controls
/// `controls`, for **even** `d ≥ 4`, using exactly one borrowed ancilla.
///
/// The construction splits the controls into two halves: the first half
/// conditionally flips the parity of the borrowed ancilla (a `|0^{⌈k/2⌉}⟩-X_eo^e`
/// built with the Fig. 3 ladder, borrowing the idle second half), and the
/// second half applies the target operation conditioned on that parity.
/// Repeating both parts twice yields the k-Toffoli and restores the ancilla.
///
/// # Errors
///
/// Returns an error when `d` is odd or smaller than 4, or when the borrowed
/// ancilla collides with a control or the target.
pub fn mct_even_gates(
    dimension: Dimension,
    controls: &[QuditId],
    target: QuditId,
    i: u32,
    j: u32,
    borrowed: QuditId,
) -> Result<Vec<Gate>> {
    if dimension.is_odd() {
        return Err(SynthesisError::Lowering {
            reason: "Fig. 4 requires an even dimension; use the odd-dimension construction"
                .to_string(),
        });
    }
    if dimension.get() < 4 {
        return Err(SynthesisError::DimensionTooSmall {
            dimension: dimension.get(),
            minimum: 4,
        });
    }
    if controls.contains(&borrowed) || borrowed == target {
        return Err(SynthesisError::Lowering {
            reason: "the borrowed ancilla must be distinct from the controls and target"
                .to_string(),
        });
    }
    let swap = SingleQuditOp::swap(dimension, i, j)?;
    let k = controls.len();
    match k {
        0 => return Ok(vec![Gate::single(swap, target)]),
        1 => {
            return Ok(vec![Gate::controlled(
                swap,
                target,
                vec![Control::zero(controls[0])],
            )])
        }
        2 => {
            // The two-controlled macro gate; the lowering pass expands it with
            // the Fig. 2 gadget, borrowing any idle qudit (at least `borrowed`
            // exists in the register).
            return Ok(vec![Gate::controlled(
                swap,
                target,
                vec![Control::zero(controls[0]), Control::zero(controls[1])],
            )]);
        }
        _ => {}
    }

    let first_half = k.div_ceil(2); // ⌈k/2⌉
    let prefix = &controls[..first_half];
    let suffix = &controls[first_half..];

    // C1: |0^{⌈k/2⌉}⟩-X_eo^e on the borrowed ancilla, borrowing the suffix and
    // the target as ladder ancillas.
    let prefix_controls: Vec<Control> = prefix.iter().map(|&q| Control::zero(q)).collect();
    let mut pool_c1: Vec<QuditId> = suffix.to_vec();
    pool_c1.push(target);
    let c1 = parity_ladder_even(
        dimension,
        &prefix_controls,
        borrowed,
        &SingleQuditOp::ParityFlipEven,
        &pool_c1,
    )?;

    // C2: |o⟩(ancilla)|0^{⌊k/2⌋}⟩-Xij on the target, borrowing the prefix.
    let mut c2_controls = vec![Control::odd(borrowed)];
    c2_controls.extend(suffix.iter().map(|&q| Control::zero(q)));
    let c2 = parity_ladder_even(dimension, &c2_controls, target, &swap, prefix)?;

    let mut gates = Vec::new();
    gates.extend(c1.clone());
    gates.extend(c2.clone());
    gates.extend(c1);
    gates.extend(c2);
    Ok(gates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Circuit;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    fn check_toffoli(dimension: Dimension, k: usize) {
        let controls: Vec<QuditId> = (0..k).map(QuditId::new).collect();
        let target = QuditId::new(k);
        let borrowed = QuditId::new(k + 1);
        let gates = mct_even_gates(dimension, &controls, target, 0, 1, borrowed).unwrap();
        let mut circuit = Circuit::new(dimension, k + 2);
        circuit.extend_gates(gates).unwrap();
        for state in all_states(dimension, k + 2) {
            let mut expected = state.clone();
            if state[..k].iter().all(|&x| x == 0) {
                expected[k] = match expected[k] {
                    0 => 1,
                    1 => 0,
                    other => other,
                };
            }
            assert_eq!(
                circuit.apply_to_basis(&state).unwrap(),
                expected,
                "d={}, k={k}, input {state:?}",
                dimension
            );
        }
    }

    #[test]
    fn toffoli_is_correct_for_small_k_d4() {
        for k in 1..=4 {
            check_toffoli(dim(4), k);
        }
    }

    #[test]
    fn toffoli_is_correct_for_k3_d6() {
        check_toffoli(dim(6), 3);
    }

    #[test]
    fn general_target_levels_are_supported() {
        let dimension = dim(4);
        let controls: Vec<QuditId> = (0..3).map(QuditId::new).collect();
        let gates =
            mct_even_gates(dimension, &controls, QuditId::new(3), 2, 3, QuditId::new(4)).unwrap();
        let mut circuit = Circuit::new(dimension, 5);
        circuit.extend_gates(gates).unwrap();
        for state in all_states(dimension, 5) {
            let mut expected = state.clone();
            if state[..3].iter().all(|&x| x == 0) {
                expected[3] = match expected[3] {
                    2 => 3,
                    3 => 2,
                    other => other,
                };
            }
            assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let controls = vec![QuditId::new(0), QuditId::new(1), QuditId::new(2)];
        // Odd dimension.
        assert!(mct_even_gates(dim(5), &controls, QuditId::new(3), 0, 1, QuditId::new(4)).is_err());
        // Ancilla collides with the target.
        assert!(mct_even_gates(dim(4), &controls, QuditId::new(3), 0, 1, QuditId::new(3)).is_err());
        // d = 2 (qubits) is out of scope.
        assert!(mct_even_gates(dim(2), &controls, QuditId::new(3), 0, 1, QuditId::new(4)).is_err());
    }

    #[test]
    fn macro_gate_count_is_linear_in_k() {
        let dimension = dim(4);
        for k in 3..24usize {
            let controls: Vec<QuditId> = (0..k).map(QuditId::new).collect();
            let gates = mct_even_gates(
                dimension,
                &controls,
                QuditId::new(k),
                0,
                1,
                QuditId::new(k + 1),
            )
            .unwrap();
            assert!(
                gates.len() <= 20 * k,
                "k = {k} used {} macro gates",
                gates.len()
            );
        }
    }
}
