//! Resource accounting for synthesised circuits.

use std::fmt;

use qudit_core::{AncillaUsage, Circuit};

use crate::compiler::{CompileOptions, OptLevel};
use crate::error::{Result, SynthesisError};

/// Gate and ancilla counts of a synthesis, at the three circuit levels used
/// by the evaluation:
///
/// * **macro gates** — the gates emitted by the constructions (at most two
///   controls each);
/// * **elementary gates** — after expanding two-controlled gates with the
///   Fig. 2 / Fig. 5 gadgets (every gate touches at most two qudits);
/// * **G-gates** — after conjugating every controlled gate to `|0⟩-X01`
///   (the paper's elementary gate set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resources {
    /// Number of qudits in the circuit, including ancillas.
    pub width: usize,
    /// Number of macro gates (each with at most two controls).
    pub macro_gates: usize,
    /// Number of elementary gates (at most one control each).
    pub elementary_gates: usize,
    /// Number of elementary gates that touch exactly two qudits.
    pub two_qudit_gates: usize,
    /// Number of G-gates after full lowering.
    pub g_gates: usize,
    /// Ancillas used by the synthesis, by kind.
    pub ancillas: AncillaUsage,
}

impl Resources {
    /// Computes the resources of a macro circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit cannot be lowered (for example when
    /// it contains a general unitary gate, which has no G-gate expansion); in
    /// that case use [`Resources::for_macro_only`].
    pub fn for_circuit(circuit: &Circuit, ancillas: AncillaUsage) -> Result<Self> {
        // One lowering-only (`O0`) compilation yields every level: the
        // elementary counts from the first stage's output profile, the
        // G-gate count from the second's.
        let compiler = CompileOptions::new()
            .opt_level(OptLevel::O0)
            .shape(circuit.dimension(), circuit.width())
            .compiler();
        let result = compiler.compile(circuit).map_err(SynthesisError::from)?;
        let elementary = &result.stats[0].after;
        Ok(Resources {
            width: circuit.width(),
            macro_gates: circuit.len(),
            elementary_gates: elementary.gates,
            two_qudit_gates: elementary.two_qudit_gates,
            g_gates: result.circuit.len(),
            ancillas,
        })
    }

    /// Computes macro-level resources only, for circuits containing general
    /// unitary gates (which cannot be lowered to G-gates).
    pub fn for_macro_only(circuit: &Circuit, ancillas: AncillaUsage) -> Self {
        Resources {
            width: circuit.width(),
            macro_gates: circuit.len(),
            elementary_gates: 0,
            two_qudit_gates: 0,
            g_gates: 0,
            ancillas,
        }
    }

    /// Total number of ancilla qudits.
    pub fn total_ancillas(&self) -> usize {
        self.ancillas.total()
    }

    /// Number of borrowed ancillas (the headline metric of the paper).
    pub fn borrowed_ancillas(&self) -> usize {
        self.ancillas.borrowed
    }

    /// Number of clean ancillas.
    pub fn clean_ancillas(&self) -> usize {
        self.ancillas.clean
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "width={}, macro={}, elementary={}, two-qudit={}, G-gates={}, ancillas: {}",
            self.width,
            self.macro_gates,
            self.elementary_gates,
            self.two_qudit_gates,
            self.g_gates,
            self.ancillas
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::{AncillaKind, Control, Dimension, Gate, QuditId, SingleQuditOp};

    #[test]
    fn resources_count_all_levels() {
        let d = Dimension::new(3).unwrap();
        let mut circuit = Circuit::new(d, 3);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                QuditId::new(2),
                vec![
                    Control::zero(QuditId::new(0)),
                    Control::zero(QuditId::new(1)),
                ],
            ))
            .unwrap();
        let resources =
            Resources::for_circuit(&circuit, AncillaUsage::of_kind(AncillaKind::Borrowed, 0))
                .unwrap();
        assert_eq!(resources.macro_gates, 1);
        assert_eq!(resources.elementary_gates, 5); // the Fig. 5 gadget
        assert!(resources.g_gates >= resources.elementary_gates);
        assert_eq!(resources.width, 3);
        assert_eq!(resources.borrowed_ancillas(), 0);
        assert!(resources.to_string().contains("G-gates"));
    }

    #[test]
    fn macro_only_resources_skip_lowering() {
        let d = Dimension::new(3).unwrap();
        let circuit = Circuit::new(d, 2);
        let resources =
            Resources::for_macro_only(&circuit, AncillaUsage::of_kind(AncillaKind::Clean, 1));
        assert_eq!(resources.g_gates, 0);
        assert_eq!(resources.clean_ancillas(), 1);
        assert_eq!(resources.total_ancillas(), 1);
    }
}
