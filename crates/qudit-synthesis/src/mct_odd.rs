//! Theorem III.6 / Fig. 10: the ancilla-free k-Toffoli for odd dimensions.

use qudit_core::{Control, Dimension, Gate, QuditId, SingleQuditOp};

use crate::error::{Result, SynthesisError};
use crate::ladders::inverse_gates;
use crate::pk::pk_gates_one_ancilla;

/// Emits the Fig. 10 circuit: `|0^k⟩-Xij` on `target` with controls
/// `controls`, for **odd** `d ≥ 3`, using no ancilla at all.
///
/// The returned gates have at most two controls (plus the value-controlled
/// shifts of the internal `P_k` constructions); lower them with
/// [`crate::lower::lower_to_g_gates`] to obtain the `O(k·d³)` G-gate circuit
/// of the theorem.
///
/// # Errors
///
/// Returns an error when `d` is even or smaller than 3, or when the target
/// levels are invalid.
pub fn mct_odd_gates(
    dimension: Dimension,
    controls: &[QuditId],
    target: QuditId,
    i: u32,
    j: u32,
) -> Result<Vec<Gate>> {
    if dimension.get() < 3 {
        return Err(SynthesisError::DimensionTooSmall {
            dimension: dimension.get(),
            minimum: 3,
        });
    }
    if dimension.is_even() {
        return Err(SynthesisError::Lowering {
            reason: "Fig. 10 requires an odd dimension; use the even-dimension construction"
                .to_string(),
        });
    }
    let swap = SingleQuditOp::swap(dimension, i, j)?;
    let k = controls.len();
    match k {
        0 => return Ok(vec![Gate::single(swap, target)]),
        1 => {
            return Ok(vec![Gate::controlled(
                swap,
                target,
                vec![Control::zero(controls[0])],
            )])
        }
        2 => {
            return Ok(vec![Gate::controlled(
                swap,
                target,
                vec![Control::zero(controls[0]), Control::zero(controls[1])],
            )])
        }
        _ => {}
    }

    let last = controls[k - 1]; // x_k in the paper
    let rest = &controls[..k - 1]; // x_1 … x_{k−1}

    // P_k acts on (x_1 … x_{k−1} → x_k) and borrows the Toffoli target.
    let pk = pk_gates_one_ancilla(dimension, rest, last, target)?;
    let pk_inverse = inverse_gates(&pk, dimension);

    let toffoli_bottom = Gate::controlled(swap, target, vec![Control::zero(last)]);
    // |0⟩(x_k)-(X_eo^o)^{⊗(k−1)}: flip the parity of every non-zero control.
    let parity_flips: Vec<Gate> = rest
        .iter()
        .map(|&q| Gate::controlled(SingleQuditOp::ParityFlipOdd, q, vec![Control::zero(last)]))
        .collect();

    let mut gates = Vec::new();
    gates.push(toffoli_bottom.clone()); // s1
    gates.extend(pk.clone()); // s2: P_k
    gates.push(toffoli_bottom.clone()); // s3
    gates.extend(pk_inverse.clone()); // s4: P_k†
    gates.extend(parity_flips.clone()); // s5
    gates.extend(pk); // s6: P_k
    gates.push(toffoli_bottom); // s7
    gates.extend(pk_inverse); // s8: P_k†
    gates.extend(parity_flips); // s9
    Ok(gates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Circuit;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    fn check_toffoli(dimension: Dimension, k: usize) {
        let controls: Vec<QuditId> = (0..k).map(QuditId::new).collect();
        let target = QuditId::new(k);
        let gates = mct_odd_gates(dimension, &controls, target, 0, 1).unwrap();
        let mut circuit = Circuit::new(dimension, k + 1);
        circuit.extend_gates(gates).unwrap();
        for state in all_states(dimension, k + 1) {
            let mut expected = state.clone();
            if state[..k].iter().all(|&x| x == 0) {
                expected[k] = match expected[k] {
                    0 => 1,
                    1 => 0,
                    other => other,
                };
            }
            assert_eq!(
                circuit.apply_to_basis(&state).unwrap(),
                expected,
                "d={}, k={k}, input {state:?}",
                dimension
            );
        }
    }

    #[test]
    fn toffoli_is_correct_for_small_k_d3() {
        for k in 1..=5 {
            check_toffoli(dim(3), k);
        }
    }

    #[test]
    fn toffoli_is_correct_for_k6_d3() {
        check_toffoli(dim(3), 6);
    }

    #[test]
    fn toffoli_is_correct_for_small_k_d5() {
        for k in 1..=3 {
            check_toffoli(dim(5), k);
        }
    }

    #[test]
    fn general_target_levels_are_supported() {
        let dimension = dim(3);
        let controls: Vec<QuditId> = (0..3).map(QuditId::new).collect();
        let gates = mct_odd_gates(dimension, &controls, QuditId::new(3), 1, 2).unwrap();
        let mut circuit = Circuit::new(dimension, 4);
        circuit.extend_gates(gates).unwrap();
        for state in all_states(dimension, 4) {
            let mut expected = state.clone();
            if state[..3].iter().all(|&x| x == 0) {
                expected[3] = match expected[3] {
                    1 => 2,
                    2 => 1,
                    other => other,
                };
            }
            assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
        }
    }

    #[test]
    fn even_dimensions_are_rejected() {
        let controls = vec![QuditId::new(0), QuditId::new(1)];
        assert!(mct_odd_gates(dim(4), &controls, QuditId::new(2), 0, 1).is_err());
    }

    #[test]
    fn macro_gate_count_is_linear_in_k() {
        let dimension = dim(3);
        let mut counts = Vec::new();
        for k in 3..20usize {
            let controls: Vec<QuditId> = (0..k).map(QuditId::new).collect();
            let gates = mct_odd_gates(dimension, &controls, QuditId::new(k), 0, 1).unwrap();
            counts.push(gates.len());
            assert!(
                gates.len() <= 160 * k,
                "k = {k} used {} macro gates",
                gates.len()
            );
        }
        // Growth between consecutive k stays bounded (linear, not quadratic).
        for w in counts.windows(2) {
            assert!(w[1] as f64 <= w[0] as f64 + 170.0);
        }
    }
}
