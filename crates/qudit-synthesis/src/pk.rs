//! The `P_k` gate of Section III-B (Lemma III.5, Figs. 8 and 9).
//!
//! `P_k` is the classical reversible operation on `k` qudits
//!
//! ```text
//! P_k |x_1, …, x_{k−1}, x_k⟩ = |x_1, …, x_{k−1}, h(x_1, …, x_k)⟩
//! ```
//!
//! where `h(x) = x_k` when the last non-zero entry of `x_1 … x_{k−1}` is odd,
//! and `h(x) = x_k − 1 (mod d)` otherwise (including when `x_1 … x_{k−1}` is
//! all zero).  It is the workhorse of the ancilla-free odd-dimension
//! k-Toffoli (Fig. 10).

use qudit_core::{Control, Dimension, Gate, QuditId, SingleQuditOp};

use crate::error::{Result, SynthesisError};
use crate::ladders::{add_one_ladder_odd, inverse_gates, star_add_ladder_odd};

/// The classical specification of `P_k`: the new value of the target digit.
///
/// `inputs` are the values of `x_1 … x_{k−1}` and `target_value` is `x_k`.
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_synthesis::pk::pk_target_image;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// // Last non-zero input is odd ⇒ the target is unchanged.
/// assert_eq!(pk_target_image(&[2, 1, 0], 2, d), 2);
/// // No non-zero input ⇒ the target is decremented.
/// assert_eq!(pk_target_image(&[0, 0, 0], 0, d), 2);
/// # Ok(())
/// # }
/// ```
pub fn pk_target_image(inputs: &[u32], target_value: u32, dimension: Dimension) -> u32 {
    let d = dimension.get();
    let last_nonzero = inputs.iter().rev().find(|&&x| x != 0);
    match last_nonzero {
        Some(&value) if value % 2 == 1 => target_value,
        _ => (target_value + d - 1) % d,
    }
}

/// The two-gate implementation of `P_2` (control `input`, target `target`):
/// `X−1` is applied to the target unless the input is odd.
fn p2_gates(dimension: Dimension, input: QuditId, target: QuditId) -> Vec<Gate> {
    let minus_one = SingleQuditOp::Add(dimension.get() - 1);
    vec![
        Gate::controlled(minus_one.clone(), target, vec![Control::zero(input)]),
        Gate::controlled(minus_one, target, vec![Control::even_nonzero(input)]),
    ]
}

/// Builds the garbage-ancilla version of `P_k` (Fig. 8 without the final
/// uncompute): the ancillas end in an arbitrary state.
fn pk_garbage(
    dimension: Dimension,
    inputs: &[QuditId],
    target: QuditId,
    ancillas: &[QuditId],
) -> Vec<Gate> {
    let k = inputs.len() + 1;
    if k == 2 {
        return p2_gates(dimension, inputs[0], target);
    }
    debug_assert_eq!(ancillas.len(), k - 2);
    let carrier = ancillas[k - 3]; // target of the recursive P_{k−1}
    let last = inputs[k - 2]; // x_{k−1}
    let minus_one = SingleQuditOp::Add(dimension.get() - 1);
    let mut gates = vec![
        Gate::add_from(carrier, true, target, vec![Control::zero(last)]),
        Gate::controlled(minus_one, target, vec![Control::even_nonzero(last)]),
    ];
    gates.extend(pk_garbage(
        dimension,
        &inputs[..k - 2],
        carrier,
        &ancillas[..k - 3],
    ));
    gates.push(Gate::add_from(
        carrier,
        false,
        target,
        vec![Control::zero(last)],
    ));
    gates
}

/// Lemma III.5 / Fig. 8: `P_k` using `k − 2` **borrowed** ancillas
/// (the garbage version followed by an uncompute of everything except the
/// three bottom gates).
///
/// # Errors
///
/// Returns an error when `d` is even, or the borrowed pool does not provide
/// `k − 2` qudits disjoint from the inputs and target.
pub fn pk_gates_borrowed(
    dimension: Dimension,
    inputs: &[QuditId],
    target: QuditId,
    borrowed: &[QuditId],
) -> Result<Vec<Gate>> {
    check_odd(dimension)?;
    let k = inputs.len() + 1;
    if k < 2 {
        return Err(SynthesisError::Lowering {
            reason: "P_k requires at least one input qudit".to_string(),
        });
    }
    if k == 2 {
        return Ok(p2_gates(dimension, inputs[0], target));
    }
    let mut busy: Vec<QuditId> = inputs.to_vec();
    busy.push(target);
    let available: Vec<QuditId> = borrowed
        .iter()
        .copied()
        .filter(|q| !busy.contains(q))
        .collect();
    if available.len() < k - 2 {
        return Err(SynthesisError::Core(
            qudit_core::QuditError::InsufficientAncillas {
                required: k - 2,
                available: available.len(),
            },
        ));
    }
    let ancillas = &available[..k - 2];
    let carrier = ancillas[k - 3];
    let last = inputs[k - 2];
    let minus_one = SingleQuditOp::Add(dimension.get() - 1);
    let g1 = Gate::add_from(carrier, true, target, vec![Control::zero(last)]);
    let g2 = Gate::controlled(minus_one, target, vec![Control::even_nonzero(last)]);
    let inner = pk_garbage(dimension, &inputs[..k - 2], carrier, &ancillas[..k - 3]);
    let g3 = Gate::add_from(carrier, false, target, vec![Control::zero(last)]);
    let mut gates = vec![g1, g2];
    gates.extend(inner.clone());
    gates.push(g3);
    gates.extend(inverse_gates(&inner, dimension));
    Ok(gates)
}

/// Lemma III.5 / Fig. 9: `P_k` using **one** borrowed ancilla.
///
/// The construction splits the inputs into a prefix and a suffix; the prefix
/// sub-`P` writes onto the borrowed ancilla, the value-controlled shifts of
/// Fig. 7 transport its effect to the real target, and the suffix sub-`P`
/// handles the remaining cases.  All sub-constructions borrow idle qudits of
/// the opposite half, so no further ancillas are required.
///
/// # Errors
///
/// Returns an error when `d` is even or the ancilla collides with an input or
/// the target.
pub fn pk_gates_one_ancilla(
    dimension: Dimension,
    inputs: &[QuditId],
    target: QuditId,
    ancilla: QuditId,
) -> Result<Vec<Gate>> {
    check_odd(dimension)?;
    let k = inputs.len() + 1;
    if k < 2 {
        return Err(SynthesisError::Lowering {
            reason: "P_k requires at least one input qudit".to_string(),
        });
    }
    if inputs.contains(&ancilla) || ancilla == target {
        return Err(SynthesisError::Lowering {
            reason: "the borrowed ancilla of P_k must be distinct from its inputs and target"
                .to_string(),
        });
    }
    if k == 2 {
        return Ok(p2_gates(dimension, inputs[0], target));
    }
    let half = k / 2; // ⌊k/2⌋
    let prefix = &inputs[..half];
    let suffix = &inputs[half..];
    let suffix_controls: Vec<Control> = suffix.iter().map(|&q| Control::zero(q)).collect();

    let mut gates = Vec::new();
    // A2: |⋆⟩(ancilla)|0^{suffix}⟩-X−⋆ on the target (borrow the prefix).
    gates.extend(star_add_ladder_odd(
        dimension,
        ancilla,
        &suffix_controls,
        target,
        true,
        prefix,
    )?);
    // A1: P_{⌊k/2⌋+1} on (prefix → ancilla), borrowing the suffix and target.
    let mut pool_prefix: Vec<QuditId> = suffix.to_vec();
    pool_prefix.push(target);
    let prefix_pk = pk_gates_borrowed(dimension, prefix, ancilla, &pool_prefix)?;
    gates.extend(prefix_pk.clone());
    // A4: |⋆⟩(ancilla)|0^{suffix}⟩-X+⋆ on the target.
    gates.extend(star_add_ladder_odd(
        dimension,
        ancilla,
        &suffix_controls,
        target,
        false,
        prefix,
    )?);
    // A3: P†_{⌊k/2⌋+1} restores the borrowed ancilla.
    gates.extend(inverse_gates(&prefix_pk, dimension));
    // A5: |0^{suffix}⟩-X+1 on the target (borrow the prefix and ancilla).
    let mut pool_suffix: Vec<QuditId> = prefix.to_vec();
    pool_suffix.push(ancilla);
    gates.extend(add_one_ladder_odd(
        dimension,
        &suffix_controls,
        target,
        &pool_suffix,
    )?);
    // A6: P_{⌈k/2⌉} on (suffix → target).
    gates.extend(pk_gates_borrowed(dimension, suffix, target, &pool_suffix)?);
    Ok(gates)
}

fn check_odd(dimension: Dimension) -> Result<()> {
    if dimension.get() < 3 {
        return Err(SynthesisError::DimensionTooSmall {
            dimension: dimension.get(),
            minimum: 3,
        });
    }
    if dimension.is_even() {
        return Err(SynthesisError::Lowering {
            reason: "P_k is only used by the odd-dimension constructions".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Circuit;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    fn circuit_from(dimension: Dimension, width: usize, gates: Vec<Gate>) -> Circuit {
        let mut c = Circuit::new(dimension, width);
        c.extend_gates(gates).unwrap();
        c
    }

    /// Checks that a circuit implements `P_k` on (inputs, target) and leaves
    /// every other qudit (borrowed ancillas) untouched.
    fn check_pk(circuit: &Circuit, inputs: &[usize], target: usize) {
        let dimension = circuit.dimension();
        for state in all_states(dimension, circuit.width()) {
            let mut expected = state.clone();
            let input_values: Vec<u32> = inputs.iter().map(|&i| state[i]).collect();
            expected[target] = pk_target_image(&input_values, state[target], dimension);
            assert_eq!(
                circuit.apply_to_basis(&state).unwrap(),
                expected,
                "P_k mismatch on input {state:?}"
            );
        }
    }

    #[test]
    fn pk_spec_matches_paper_examples() {
        let d = dim(3);
        // k = 2: h(x1, x2) = x2 when x1 is odd, else x2 − 1.
        assert_eq!(pk_target_image(&[1], 2, d), 2);
        assert_eq!(pk_target_image(&[2], 2, d), 1);
        assert_eq!(pk_target_image(&[0], 0, d), 2);
        // x_{1..k−1} = 1 0^{k−2} ⇒ i* = 1 (odd) ⇒ target unchanged.
        assert_eq!(pk_target_image(&[1, 0, 0], 1, d), 1);
        // Trailing non-zero even value ⇒ decrement.
        assert_eq!(pk_target_image(&[1, 2], 1, d), 0);
    }

    #[test]
    fn p2_circuit_matches_spec() {
        for d in [3u32, 5] {
            let dimension = dim(d);
            let gates =
                pk_gates_borrowed(dimension, &[QuditId::new(0)], QuditId::new(1), &[]).unwrap();
            let circuit = circuit_from(dimension, 2, gates);
            check_pk(&circuit, &[0], 1);
        }
    }

    #[test]
    fn pk_with_borrowed_ancillas_matches_spec() {
        // k = 3 and k = 4 for d = 3: inputs first, then target, then ancillas.
        for k in [3usize, 4] {
            let dimension = dim(3);
            let inputs: Vec<QuditId> = (0..k - 1).map(QuditId::new).collect();
            let target = QuditId::new(k - 1);
            let borrowed: Vec<QuditId> = (k..2 * k - 2).map(QuditId::new).collect();
            let width = 2 * k - 2;
            let gates = pk_gates_borrowed(dimension, &inputs, target, &borrowed).unwrap();
            let circuit = circuit_from(dimension, width, gates);
            let input_indices: Vec<usize> = (0..k - 1).collect();
            check_pk(&circuit, &input_indices, k - 1);
        }
    }

    #[test]
    fn pk_with_one_ancilla_matches_spec() {
        // k = 3, 4, 5 for d = 3: qudits are inputs, target, ancilla.
        for k in [3usize, 4, 5] {
            let dimension = dim(3);
            let inputs: Vec<QuditId> = (0..k - 1).map(QuditId::new).collect();
            let target = QuditId::new(k - 1);
            let ancilla = QuditId::new(k);
            let gates = pk_gates_one_ancilla(dimension, &inputs, target, ancilla).unwrap();
            let circuit = circuit_from(dimension, k + 1, gates);
            let input_indices: Vec<usize> = (0..k - 1).collect();
            check_pk(&circuit, &input_indices, k - 1);
        }
    }

    #[test]
    fn pk_with_one_ancilla_matches_spec_for_d5() {
        let dimension = dim(5);
        let k = 3;
        let inputs: Vec<QuditId> = (0..k - 1).map(QuditId::new).collect();
        let gates =
            pk_gates_one_ancilla(dimension, &inputs, QuditId::new(k - 1), QuditId::new(k)).unwrap();
        let circuit = circuit_from(dimension, k + 1, gates);
        check_pk(&circuit, &[0, 1], 2);
    }

    #[test]
    fn pk_inverse_composes_to_identity() {
        let dimension = dim(3);
        let inputs: Vec<QuditId> = (0..3).map(QuditId::new).collect();
        let gates =
            pk_gates_one_ancilla(dimension, &inputs, QuditId::new(3), QuditId::new(4)).unwrap();
        let mut circuit = circuit_from(dimension, 5, gates.clone());
        circuit
            .extend_gates(inverse_gates(&gates, dimension))
            .unwrap();
        for state in all_states(dimension, 5) {
            assert_eq!(circuit.apply_to_basis(&state).unwrap(), state);
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let dimension = dim(4);
        assert!(pk_gates_borrowed(dimension, &[QuditId::new(0)], QuditId::new(1), &[]).is_err());
        let dimension = dim(3);
        // Ancilla collides with the target.
        assert!(pk_gates_one_ancilla(
            dimension,
            &[QuditId::new(0), QuditId::new(1)],
            QuditId::new(2),
            QuditId::new(2)
        )
        .is_err());
        // Not enough borrowed ancillas for the Fig. 8 variant.
        assert!(pk_gates_borrowed(
            dimension,
            &[QuditId::new(0), QuditId::new(1), QuditId::new(2)],
            QuditId::new(3),
            &[]
        )
        .is_err());
    }

    #[test]
    fn gate_count_grows_linearly_with_k() {
        let dimension = dim(3);
        let mut previous = 0usize;
        for k in 3..12usize {
            let inputs: Vec<QuditId> = (0..k - 1).map(QuditId::new).collect();
            let gates =
                pk_gates_one_ancilla(dimension, &inputs, QuditId::new(k - 1), QuditId::new(k))
                    .unwrap();
            assert!(gates.len() >= previous / 2, "gate count should not explode");
            // Linear bound with a generous constant (macro gates).
            assert!(
                gates.len() <= 40 * k,
                "P_{k} used {} macro gates",
                gates.len()
            );
            previous = gates.len();
        }
    }
}
