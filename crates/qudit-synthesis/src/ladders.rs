//! The Λ-shaped ladder constructions of Section III.
//!
//! * [`parity_ladder_even`] — Fig. 3 (generalised): for even `d`, implements a
//!   multi-controlled involution using borrowed ancillas whose *parity*
//!   carries the conjunction of the controls.
//! * [`add_one_ladder_odd`] — Fig. 7 / Lemma III.4: for odd `d`, implements
//!   `|controls⟩-X+1` using borrowed ancillas whose *increment* carries the
//!   conjunction of the controls.
//! * [`star_add_ladder_odd`] — the Fig. 7 variant with the top gate replaced
//!   by `|⋆⟩|0⟩-X±⋆`, implementing `|⋆⟩(s)|controls⟩-X±⋆` (used in Fig. 9).
//!
//! All ladders restore their borrowed ancillas by appending the inverse of
//! the inner part of the Λ, exactly as described in the paper's proofs.

use qudit_core::{Control, Dimension, Gate, QuditId, SingleQuditOp};

use crate::error::{Result, SynthesisError};

/// Checks that a borrowed-ancilla pool provides `needed` qudits, none of
/// which collide with the `busy` qudits, and returns the chosen ancillas.
fn take_ancillas(borrowed: &[QuditId], needed: usize, busy: &[QuditId]) -> Result<Vec<QuditId>> {
    let available: Vec<QuditId> = borrowed
        .iter()
        .copied()
        .filter(|q| !busy.contains(q))
        .collect();
    if available.len() < needed {
        return Err(SynthesisError::Core(
            qudit_core::QuditError::InsufficientAncillas {
                required: needed,
                available: available.len(),
            },
        ));
    }
    Ok(available[..needed].to_vec())
}

/// Inverts a gate sequence (reverse order, each gate inverted).
pub(crate) fn inverse_gates(gates: &[Gate], dimension: Dimension) -> Vec<Gate> {
    gates.iter().rev().map(|g| g.inverse(dimension)).collect()
}

/// Fig. 3 (generalised): implements `|controls⟩-bottom_op` on `target` for
/// **even** `d`, using `controls.len() − 2` borrowed ancillas taken from
/// `borrowed`.
///
/// `bottom_op` must be an involution (the paper uses `X01` and `X_eo^e`);
/// the returned gates have at most two controls.
///
/// # Errors
///
/// Returns an error when `d` is odd, `bottom_op` is not an involution or the
/// borrowed pool is too small.
pub fn parity_ladder_even(
    dimension: Dimension,
    controls: &[Control],
    target: QuditId,
    bottom_op: &SingleQuditOp,
    borrowed: &[QuditId],
) -> Result<Vec<Gate>> {
    if dimension.is_odd() {
        return Err(SynthesisError::Lowering {
            reason: "the parity ladder (Fig. 3) requires an even dimension".to_string(),
        });
    }
    if !bottom_op.is_involution(dimension) {
        return Err(SynthesisError::Lowering {
            reason: "the parity ladder requires an involutive target operation".to_string(),
        });
    }
    let m = controls.len();
    match m {
        0 => return Ok(vec![Gate::single(bottom_op.clone(), target)]),
        1 => {
            return Ok(vec![Gate::controlled(
                bottom_op.clone(),
                target,
                vec![controls[0]],
            )])
        }
        2 => {
            return Ok(vec![Gate::controlled(
                bottom_op.clone(),
                target,
                controls.to_vec(),
            )])
        }
        _ => {}
    }
    let mut busy: Vec<QuditId> = controls.iter().map(|c| c.qudit).collect();
    busy.push(target);
    let ancillas = take_ancillas(borrowed, m - 2, &busy)?;

    // Top gate: |c0⟩|c1⟩-X_eo^e on the first ancilla.
    let top = Gate::controlled(
        SingleQuditOp::ParityFlipEven,
        ancillas[0],
        vec![controls[0], controls[1]],
    );
    // Rungs: |o⟩(anc[j])|c_{j+2}⟩-X_eo^e on anc[j+1].
    let rungs: Vec<Gate> = (0..m.saturating_sub(3))
        .map(|j| {
            Gate::controlled(
                SingleQuditOp::ParityFlipEven,
                ancillas[j + 1],
                vec![Control::odd(ancillas[j]), controls[j + 2]],
            )
        })
        .collect();
    // Bottom gate: |o⟩(last ancilla)|c_{m−1}⟩-bottom_op on the target.
    let bottom = Gate::controlled(
        bottom_op.clone(),
        target,
        vec![Control::odd(ancillas[m - 3]), controls[m - 1]],
    );

    // Inner Λ: descend the rungs, apply the top, ascend the rungs.
    let mut inner: Vec<Gate> = rungs.iter().rev().cloned().collect();
    inner.push(top);
    inner.extend(rungs.iter().cloned());

    let mut gates = vec![bottom.clone()];
    gates.extend(inner.clone());
    gates.push(bottom);
    // Restore the borrowed ancillas (paper: reverse all gates but the two at
    // the bottom).
    gates.extend(inverse_gates(&inner, dimension));
    Ok(gates)
}

/// Builds the inner Λ of the Fig. 7 ladder together with its two bottom
/// gates, given the top gate and the per-rung controls.
fn increment_ladder(
    dimension: Dimension,
    top: Gate,
    rung_controls: &[Control],
    ancillas: &[QuditId],
    target: QuditId,
) -> Vec<Gate> {
    let r = rung_controls.len();
    debug_assert_eq!(ancillas.len(), r);
    let rung_target = |j: usize| if j + 1 < r { ancillas[j + 1] } else { target };
    let minus =
        |j: usize| Gate::add_from(ancillas[j], true, rung_target(j), vec![rung_controls[j]]);
    let plus =
        |j: usize| Gate::add_from(ancillas[j], false, rung_target(j), vec![rung_controls[j]]);

    // Inner Λ: all rungs except the outermost pair, with the top gate in the
    // middle.
    let mut inner: Vec<Gate> = (0..r.saturating_sub(1)).rev().map(minus).collect();
    inner.push(top);
    inner.extend((0..r.saturating_sub(1)).map(plus));

    let mut gates = vec![minus(r - 1)];
    gates.extend(inner.clone());
    gates.push(plus(r - 1));
    gates.extend(inverse_gates(&inner, dimension));
    gates
}

/// Fig. 7 / Lemma III.4: implements `|controls⟩-X+1` on `target` for **odd**
/// `d`, using `controls.len() − 2` borrowed ancillas.
///
/// # Errors
///
/// Returns an error when `d` is even or the borrowed pool is too small.
pub fn add_one_ladder_odd(
    dimension: Dimension,
    controls: &[Control],
    target: QuditId,
    borrowed: &[QuditId],
) -> Result<Vec<Gate>> {
    if dimension.is_even() {
        return Err(SynthesisError::Lowering {
            reason: "the increment ladder (Fig. 7) requires an odd dimension".to_string(),
        });
    }
    let m = controls.len();
    match m {
        0 => return Ok(vec![Gate::single(SingleQuditOp::Add(1), target)]),
        1 => {
            return Ok(vec![Gate::controlled(
                SingleQuditOp::Add(1),
                target,
                vec![controls[0]],
            )])
        }
        2 => {
            return Ok(vec![Gate::controlled(
                SingleQuditOp::Add(1),
                target,
                controls.to_vec(),
            )])
        }
        _ => {}
    }
    let mut busy: Vec<QuditId> = controls.iter().map(|c| c.qudit).collect();
    busy.push(target);
    let ancillas = take_ancillas(borrowed, m - 2, &busy)?;
    let top = Gate::controlled(
        SingleQuditOp::Add(1),
        ancillas[0],
        vec![controls[0], controls[1]],
    );
    Ok(increment_ladder(
        dimension,
        top,
        &controls[2..],
        &ancillas,
        target,
    ))
}

/// The Fig. 7 ladder with its top gate replaced by `|⋆⟩|0⟩-X±⋆`: implements
/// `|⋆⟩(star)|controls⟩-X±⋆` on `target` for **odd** `d`, i.e. the target is
/// shifted by `±value(star)` exactly when every control fires.
///
/// Uses `controls.len() − 1` borrowed ancillas.
///
/// # Errors
///
/// Returns an error when `d` is even or the borrowed pool is too small.
pub fn star_add_ladder_odd(
    dimension: Dimension,
    star: QuditId,
    controls: &[Control],
    target: QuditId,
    negate: bool,
    borrowed: &[QuditId],
) -> Result<Vec<Gate>> {
    if dimension.is_even() {
        return Err(SynthesisError::Lowering {
            reason: "the increment ladder (Fig. 7) requires an odd dimension".to_string(),
        });
    }
    let m = controls.len();
    match m {
        0 => return Ok(vec![Gate::add_from(star, negate, target, vec![])]),
        1 => {
            return Ok(vec![Gate::add_from(
                star,
                negate,
                target,
                vec![controls[0]],
            )])
        }
        _ => {}
    }
    let mut busy: Vec<QuditId> = controls.iter().map(|c| c.qudit).collect();
    busy.push(target);
    busy.push(star);
    let ancillas = take_ancillas(borrowed, m - 1, &busy)?;
    let top = Gate::add_from(star, negate, ancillas[0], vec![controls[0]]);
    Ok(increment_ladder(
        dimension,
        top,
        &controls[1..],
        &ancillas,
        target,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Circuit;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        let size = dimension.register_size(width);
        (0..size)
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    fn circuit_from(dimension: Dimension, width: usize, gates: Vec<Gate>) -> Circuit {
        let mut c = Circuit::new(dimension, width);
        c.extend_gates(gates).unwrap();
        c
    }

    #[test]
    fn parity_ladder_implements_multi_controlled_involution() {
        // d = 4, m = 4 controls on qudits 0..4, target 4, ancillas from 5..7.
        let dimension = dim(4);
        let width = 7;
        let controls: Vec<Control> = (0..4).map(|i| Control::zero(QuditId::new(i))).collect();
        let borrowed: Vec<QuditId> = (5..7).map(QuditId::new).collect();
        let gates = parity_ladder_even(
            dimension,
            &controls,
            QuditId::new(4),
            &SingleQuditOp::Swap(0, 1),
            &borrowed,
        )
        .unwrap();
        let circuit = circuit_from(dimension, width, gates);
        for input in all_states(dimension, width) {
            let mut expected = input.clone();
            if input[..4].iter().all(|&x| x == 0) {
                expected[4] = match expected[4] {
                    0 => 1,
                    1 => 0,
                    other => other,
                };
            }
            assert_eq!(
                circuit.apply_to_basis(&input).unwrap(),
                expected,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn parity_ladder_respects_predicate_controls() {
        let dimension = dim(4);
        let width = 5;
        // |o⟩(q0)|0⟩(q1)|0⟩(q2)-X_eo^e on q3, ancilla q4.
        let controls = vec![
            Control::odd(QuditId::new(0)),
            Control::zero(QuditId::new(1)),
            Control::zero(QuditId::new(2)),
        ];
        let gates = parity_ladder_even(
            dimension,
            &controls,
            QuditId::new(3),
            &SingleQuditOp::ParityFlipEven,
            &[QuditId::new(4)],
        )
        .unwrap();
        let circuit = circuit_from(dimension, width, gates);
        for input in all_states(dimension, width) {
            let mut expected = input.clone();
            if input[0] % 2 == 1 && input[1] == 0 && input[2] == 0 {
                let v = expected[3];
                expected[3] = if v % 2 == 0 { v + 1 } else { v - 1 };
            }
            assert_eq!(
                circuit.apply_to_basis(&input).unwrap(),
                expected,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn add_one_ladder_implements_multi_controlled_increment() {
        // Lemma III.4 for d = 3, k = 4: controls q0..q3, target q4, ancillas q5, q6.
        let dimension = dim(3);
        let width = 7;
        let controls: Vec<Control> = (0..4).map(|i| Control::zero(QuditId::new(i))).collect();
        let borrowed: Vec<QuditId> = (5..7).map(QuditId::new).collect();
        let gates = add_one_ladder_odd(dimension, &controls, QuditId::new(4), &borrowed).unwrap();
        let circuit = circuit_from(dimension, width, gates);
        for input in all_states(dimension, width) {
            let mut expected = input.clone();
            if input[..4].iter().all(|&x| x == 0) {
                expected[4] = (expected[4] + 1) % 3;
            }
            assert_eq!(
                circuit.apply_to_basis(&input).unwrap(),
                expected,
                "input {input:?}"
            );
        }
    }

    #[test]
    fn star_add_ladder_adds_the_star_value() {
        // |⋆⟩(q0)|0⟩(q1)|0⟩(q2)-X±⋆ on q3, ancilla pool {q4}.
        let dimension = dim(5);
        let width = 5;
        let controls = vec![
            Control::zero(QuditId::new(1)),
            Control::zero(QuditId::new(2)),
        ];
        for negate in [false, true] {
            let gates = star_add_ladder_odd(
                dimension,
                QuditId::new(0),
                &controls,
                QuditId::new(3),
                negate,
                &[QuditId::new(4)],
            )
            .unwrap();
            let circuit = circuit_from(dimension, width, gates);
            for input in all_states(dimension, width) {
                let mut expected = input.clone();
                if input[1] == 0 && input[2] == 0 {
                    let shift = if negate { (5 - input[0]) % 5 } else { input[0] };
                    expected[3] = (expected[3] + shift) % 5;
                }
                assert_eq!(
                    circuit.apply_to_basis(&input).unwrap(),
                    expected,
                    "input {input:?}"
                );
            }
        }
    }

    #[test]
    fn ladders_report_missing_ancillas() {
        let dimension = dim(3);
        let controls: Vec<Control> = (0..4).map(|i| Control::zero(QuditId::new(i))).collect();
        let result = add_one_ladder_odd(dimension, &controls, QuditId::new(4), &[]);
        assert!(result.is_err());
        let dimension = dim(4);
        let result = parity_ladder_even(
            dimension,
            &controls,
            QuditId::new(4),
            &SingleQuditOp::Swap(0, 1),
            &[QuditId::new(0)], // collides with a control, so unusable
        );
        assert!(result.is_err());
    }

    #[test]
    fn parity_checks_on_dimension() {
        let controls = vec![
            Control::zero(QuditId::new(0)),
            Control::zero(QuditId::new(1)),
        ];
        assert!(parity_ladder_even(
            dim(5),
            &controls,
            QuditId::new(2),
            &SingleQuditOp::Swap(0, 1),
            &[]
        )
        .is_err());
        assert!(add_one_ladder_odd(dim(4), &controls, QuditId::new(2), &[]).is_err());
        assert!(star_add_ladder_odd(
            dim(4),
            QuditId::new(3),
            &controls,
            QuditId::new(2),
            false,
            &[]
        )
        .is_err());
    }

    #[test]
    fn small_control_counts_take_the_direct_path() {
        let dimension = dim(3);
        let gates = add_one_ladder_odd(
            dimension,
            &[Control::zero(QuditId::new(0))],
            QuditId::new(1),
            &[],
        )
        .unwrap();
        assert_eq!(gates.len(), 1);
        let dimension = dim(4);
        let gates = parity_ladder_even(
            dimension,
            &[
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
            ],
            QuditId::new(2),
            &SingleQuditOp::Swap(0, 1),
            &[],
        )
        .unwrap();
        assert_eq!(gates.len(), 1);
        assert_eq!(gates[0].controls().len(), 2);
    }
}
