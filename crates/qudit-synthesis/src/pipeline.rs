//! The macro-gate lowering pass and the legacy pipeline presets.
//!
//! The paper compiles a multi-controlled gate in stages: synthesis emits a
//! *macro circuit* (gates with at most two controls), which is lowered to
//! *elementary gates* (at most one control) with the Fig. 2 / Fig. 5
//! gadgets, then to the *G-gate set* `{Xij} ∪ {|0⟩-X01}`, and finally
//! cleaned up by inverse-pair cancellation.  This module packages those
//! stages as [`qudit_core::pipeline::Pass`]es:
//!
//! ```text
//!   macro circuit ──lower-to-elementary──▶ elementary ──lower-to-g-gates──▶
//!   G-gates ──cancel-inverse-pairs──▶ optimised G-gates
//! ```
//!
//! * [`LowerToElementary`] — wraps [`crate::lower::lower_to_elementary`];
//!   registered as the `lower-to-elementary` stage of
//!   [`crate::compiler::registry`].
//! * [`Pipeline::standard`] and the rest of the `Pipeline::standard*`
//!   family — **deprecated** preset shims over the typed
//!   [`CompileOptions`] builder (each
//!   shim's documentation shows its builder equivalent);
//! * [`Pipeline::lowering`] / [`Pipeline::lowering_verified`] — the flow
//!   without the final cancellation (the configuration the paper's gate
//!   counts are reported in), equivalent to
//!   [`OptLevel::O0`](crate::compiler::OptLevel).

use qudit_core::pipeline::{dispatch_lowering_pass, CacheMode, Pass, PassContext, PassManager};
use qudit_core::{Circuit, Dimension, QuditError};
use qudit_sim::SimBackend;

use crate::compiler::{CompileOptions, OptLevel, Verify};
use crate::error::SynthesisError;
use crate::lower;

/// Converts a synthesis error into the core error type used by passes.
fn pass_error(pass: &str, error: SynthesisError) -> QuditError {
    match error {
        SynthesisError::Core(e) => e,
        other => QuditError::PassFailed {
            pass: pass.to_string(),
            reason: other.to_string(),
        },
    }
}

/// Pass lowering macro gates (two controls, value-controlled shifts) to
/// elementary gates with at most one control
/// (wraps [`crate::lower::lower_to_elementary`]).
///
/// Like `LowerToGGates`, the pass is cache-aware and parallel: with a
/// lowering cache in the run's [`PassContext`] every gadget expansion is
/// computed once per `(gate kind, dimension, width-class)`, and macro
/// circuits above the parallel threshold lower gate-parallel on a
/// work-stealing pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerToElementary;

impl Pass for LowerToElementary {
    fn name(&self) -> &str {
        "lower-to-elementary"
    }

    fn run(&self, circuit: Circuit) -> qudit_core::Result<Circuit> {
        lower::lower_to_elementary(&circuit).map_err(|e| pass_error(self.name(), e))
    }

    fn run_with(&self, circuit: Circuit, ctx: &mut PassContext) -> qudit_core::Result<Circuit> {
        let name = self.name();
        dispatch_lowering_pass(
            circuit,
            ctx,
            |c| lower::lower_to_elementary(c).map_err(|e| pass_error(name, e)),
            |c, cache, counters| {
                lower::lower_to_elementary_cached(c, cache, counters)
                    .map_err(|e| pass_error(name, e))
            },
            |c, cache, pool| {
                lower::lower_to_elementary_parallel(c, cache, pool).map_err(|e| pass_error(name, e))
            },
        )
    }
}

/// Factory for the **legacy** compilation presets of the paper's flow.
///
/// The `standard*` constructors are deprecated shims over the typed
/// [`CompileOptions`] builder — every shim
/// assembles exactly the manager its builder equivalent does (pinned
/// gate-for-gate by the `compiler_api` integration suite).  New code should
/// configure a [`Compiler`](crate::compiler::Compiler) instead.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline;

impl Pipeline {
    /// The paper's full compilation flow for a macro circuit over `width`
    /// qudits of the given dimension: macro-gate lowering → G-gate lowering
    /// → inverse-pair cancellation.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::Dimension;
    /// use qudit_synthesis::{CompileOptions, Pipeline};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dimension = Dimension::new(3)?;
    /// let legacy = Pipeline::standard(dimension, 4);
    /// let modern = CompileOptions::new().shape(dimension, 4).build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// # Ok(())
    /// # }
    /// ```
    #[deprecated(note = "use CompileOptions::new().shape(dimension, width) \
                         and the Compiler facade instead")]
    pub fn standard(dimension: Dimension, width: usize) -> PassManager {
        CompileOptions::new()
            .shape(dimension, width)
            .build_manager()
    }

    /// The lowering stages only (macro → elementary → G-gates), without the
    /// final cancellation — the configuration the paper's G-gate counts are
    /// reported in; equivalent to
    /// [`OptLevel::O0`](crate::compiler::OptLevel).
    pub fn lowering(dimension: Dimension, width: usize) -> PassManager {
        CompileOptions::new()
            .opt_level(OptLevel::O0)
            .shape(dimension, width)
            .build_manager()
    }

    /// [`Pipeline::standard`] with every stage wrapped in
    /// [`qudit_sim::pipeline::VerifyEquivalence`]: each stage re-simulates
    /// its input and output and fails the pipeline on any semantics change.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::Dimension;
    /// use qudit_synthesis::{CompileOptions, Pipeline, Verify};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dimension = Dimension::new(3)?;
    /// let legacy = Pipeline::standard_verified(dimension, 4);
    /// let modern = CompileOptions::new()
    ///     .verify(Verify::Exhaustive)
    ///     .shape(dimension, 4)
    ///     .build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// # Ok(())
    /// # }
    /// ```
    #[deprecated(note = "use CompileOptions::new().verify(Verify::Exhaustive)\
                         .shape(dimension, width) instead")]
    pub fn standard_verified(dimension: Dimension, width: usize) -> PassManager {
        CompileOptions::new()
            .verify(Verify::Exhaustive)
            .shape(dimension, width)
            .build_manager()
    }

    /// [`Pipeline::standard_verified`] with an explicit simulation backend
    /// for every verification wrapper.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::Dimension;
    /// use qudit_sim::SimBackend;
    /// use qudit_synthesis::{CompileOptions, Pipeline, Verify};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dimension = Dimension::new(3)?;
    /// let legacy = Pipeline::standard_verified_with_backend(dimension, 4, SimBackend::Sparse);
    /// let modern = CompileOptions::new()
    ///     .verify(Verify::Exhaustive)
    ///     .backend(SimBackend::Sparse)
    ///     .shape(dimension, 4)
    ///     .build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// # Ok(())
    /// # }
    /// ```
    #[deprecated(note = "use CompileOptions::new().verify(Verify::Exhaustive)\
                         .backend(backend).shape(dimension, width) instead")]
    pub fn standard_verified_with_backend(
        dimension: Dimension,
        width: usize,
        backend: SimBackend,
    ) -> PassManager {
        CompileOptions::new()
            .verify(Verify::Exhaustive)
            .backend(backend)
            .shape(dimension, width)
            .build_manager()
    }

    /// [`Pipeline::lowering`] with every stage wrapped in
    /// [`qudit_sim::pipeline::VerifyEquivalence`] (on the
    /// [`SimBackend::Auto`] backend); equivalent to
    /// [`OptLevel::O0`](crate::compiler::OptLevel) with
    /// [`Verify::Exhaustive`].
    pub fn lowering_verified(dimension: Dimension, width: usize) -> PassManager {
        CompileOptions::new()
            .opt_level(OptLevel::O0)
            .verify(Verify::Exhaustive)
            .shape(dimension, width)
            .build_manager()
    }

    /// The standard flow configured for batch compilation: shape-agnostic
    /// (one manager compiles circuits of any dimension and width, as the
    /// experiment sweeps need) and with a per-run lowering cache, so every
    /// job reports deterministic cache hit/miss statistics.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::pipeline::CacheMode;
    /// use qudit_synthesis::{CompileOptions, Pipeline};
    ///
    /// let legacy = Pipeline::standard_batch();
    /// let modern = CompileOptions::new().cache(CacheMode::PerRun).build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// // New code compiles batches through the facade:
    /// // `CompileOptions::new().cache(CacheMode::PerRun).compiler().compile_batch(&jobs)`.
    /// ```
    #[deprecated(note = "use CompileOptions::new().cache(CacheMode::PerRun) \
                         and Compiler::compile_batch instead")]
    pub fn standard_batch() -> PassManager {
        CompileOptions::new()
            .cache(CacheMode::PerRun)
            .build_manager()
    }

    /// [`Pipeline::standard`] with the commutation-aware depth scheduler
    /// ([`qudit_core::pipeline::ScheduleDepth`]) as a final stage.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::Dimension;
    /// use qudit_synthesis::{CompileOptions, Pipeline};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dimension = Dimension::new(3)?;
    /// let legacy = Pipeline::standard_scheduled(dimension, 4);
    /// let modern = CompileOptions::new()
    ///     .schedule(true)
    ///     .shape(dimension, 4)
    ///     .build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// # Ok(())
    /// # }
    /// ```
    #[deprecated(note = "use CompileOptions::new().schedule(true)\
                         .shape(dimension, width) instead")]
    pub fn standard_scheduled(dimension: Dimension, width: usize) -> PassManager {
        CompileOptions::new()
            .schedule(true)
            .shape(dimension, width)
            .build_manager()
    }

    /// [`Pipeline::standard_scheduled`] with every stage (including the
    /// scheduler) wrapped in verification on the [`SimBackend::Auto`]
    /// backend.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::Dimension;
    /// use qudit_synthesis::{CompileOptions, Pipeline, Verify};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dimension = Dimension::new(3)?;
    /// let legacy = Pipeline::standard_scheduled_verified(dimension, 4);
    /// let modern = CompileOptions::new()
    ///     .schedule(true)
    ///     .verify(Verify::Exhaustive)
    ///     .shape(dimension, 4)
    ///     .build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// # Ok(())
    /// # }
    /// ```
    #[deprecated(note = "use CompileOptions::new().schedule(true)\
                         .verify(Verify::Exhaustive).shape(dimension, width) instead")]
    pub fn standard_scheduled_verified(dimension: Dimension, width: usize) -> PassManager {
        CompileOptions::new()
            .schedule(true)
            .verify(Verify::Exhaustive)
            .shape(dimension, width)
            .build_manager()
    }

    /// [`Pipeline::standard_scheduled_verified`] with an explicit simulation
    /// backend for every verification wrapper.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::Dimension;
    /// use qudit_sim::SimBackend;
    /// use qudit_synthesis::{CompileOptions, Pipeline, Verify};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dimension = Dimension::new(3)?;
    /// let legacy =
    ///     Pipeline::standard_scheduled_verified_with_backend(dimension, 4, SimBackend::Dense);
    /// let modern = CompileOptions::new()
    ///     .schedule(true)
    ///     .verify(Verify::Exhaustive)
    ///     .backend(SimBackend::Dense)
    ///     .shape(dimension, 4)
    ///     .build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// # Ok(())
    /// # }
    /// ```
    #[deprecated(note = "use CompileOptions::new().schedule(true)\
                         .verify(Verify::Exhaustive).backend(backend)\
                         .shape(dimension, width) instead")]
    pub fn standard_scheduled_verified_with_backend(
        dimension: Dimension,
        width: usize,
        backend: SimBackend,
    ) -> PassManager {
        CompileOptions::new()
            .schedule(true)
            .verify(Verify::Exhaustive)
            .backend(backend)
            .shape(dimension, width)
            .build_manager()
    }

    /// [`Pipeline::standard_batch`] with the depth scheduler as a final
    /// stage — the configuration the E10/E11 depth columns are produced in.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::pipeline::CacheMode;
    /// use qudit_synthesis::{CompileOptions, Pipeline};
    ///
    /// let legacy = Pipeline::standard_batch_scheduled();
    /// let modern = CompileOptions::new()
    ///     .schedule(true)
    ///     .cache(CacheMode::PerRun)
    ///     .build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// ```
    #[deprecated(note = "use CompileOptions::new().schedule(true)\
                         .cache(CacheMode::PerRun) and Compiler::compile_batch instead")]
    pub fn standard_batch_scheduled() -> PassManager {
        CompileOptions::new()
            .schedule(true)
            .cache(CacheMode::PerRun)
            .build_manager()
    }

    /// [`Pipeline::standard_batch`] with an explicit [`CacheMode`].
    ///
    /// The given mode is installed verbatim on the returned manager — a
    /// non-default mode (`Off`, or a caller-provided `Shared` cache) is
    /// propagated, never silently reset to the preset's own default.  See
    /// `standard_batch_propagates_non_default_cache_modes` in the tests for
    /// the pinned contract.
    ///
    /// # Migration
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use qudit_core::cache::LoweringCache;
    /// use qudit_core::pipeline::CacheMode;
    /// use qudit_synthesis::{CompileOptions, Pipeline};
    ///
    /// let cache = CacheMode::Shared(LoweringCache::shared());
    /// let legacy = Pipeline::standard_batch_with_cache(cache.clone());
    /// let modern = CompileOptions::new().cache(cache).build_manager();
    /// assert_eq!(legacy.pass_names(), modern.pass_names());
    /// ```
    #[deprecated(note = "use CompileOptions::new().cache(cache) \
                         and Compiler::compile_batch instead")]
    pub fn standard_batch_with_cache(cache: CacheMode) -> PassManager {
        CompileOptions::new().cache(cache).build_manager()
    }
}

#[cfg(test)]
// The legacy shims under test are deprecated by design.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::KToffoli;
    use qudit_core::{Control, Gate, QuditId, SingleQuditOp};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn standard_pipeline_reproduces_the_manual_chain() {
        for d in [3u32, 4] {
            let synthesis = KToffoli::new(dim(d), 3).unwrap().synthesize().unwrap();
            let width = synthesis.layout().width;
            let macro_circuit = synthesis.circuit().clone();

            // The standard flow now opens with macro-level gate fusion, so
            // the manual chain starts from the fused circuit.
            let fused = qudit_core::fusion::fuse_circuit(&macro_circuit).unwrap();
            let manual = qudit_core::optimize::cancel_inverse_pairs(
                &lower::lower_to_g_gates(&fused).unwrap(),
            );
            let report = Pipeline::standard(dim(d), width)
                .run(macro_circuit)
                .unwrap();
            assert_eq!(report.circuit, manual, "d={d}");
            assert_eq!(report.stats.len(), 4);
        }
    }

    #[test]
    fn lowering_pipeline_matches_reported_g_gate_counts() {
        let synthesis = KToffoli::new(dim(3), 4).unwrap().synthesize().unwrap();
        let report = Pipeline::lowering(dim(3), synthesis.layout().width)
            .run(synthesis.circuit().clone())
            .unwrap();
        assert_eq!(report.circuit.len(), synthesis.resources().g_gates);
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
    }

    #[test]
    fn verified_pipeline_accepts_the_constructions() {
        let synthesis = KToffoli::new(dim(3), 2).unwrap().synthesize().unwrap();
        let manager = Pipeline::standard_verified(dim(3), synthesis.layout().width);
        let report = manager.run(synthesis.circuit().clone()).unwrap();
        assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        assert!(report.stats.iter().all(|s| s.pass.starts_with("verify(")));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let manager = Pipeline::standard(dim(3), 4);
        let circuit = Circuit::new(dim(3), 3);
        assert!(manager.run(circuit).is_err());
    }

    #[test]
    fn standard_batch_propagates_non_default_cache_modes() {
        use qudit_core::cache::LoweringCache;

        // The preset's own default is a per-run cache…
        assert!(matches!(
            Pipeline::standard_batch().cache_mode(),
            CacheMode::PerRun
        ));
        // …but a caller-selected mode must survive construction unchanged.
        assert!(matches!(
            Pipeline::standard_batch_with_cache(CacheMode::Off).cache_mode(),
            CacheMode::Off
        ));
        let cache = LoweringCache::shared();
        let manager = Pipeline::standard_batch_with_cache(CacheMode::Shared(cache.clone()));
        assert!(matches!(manager.cache_mode(), CacheMode::Shared(_)));

        // The propagated shared cache is the caller's instance, not a fresh
        // per-run one: a second run must reuse the first run's entries.
        let synthesis = KToffoli::new(dim(3), 3).unwrap().synthesize().unwrap();
        manager.run(synthesis.circuit().clone()).unwrap();
        let second = manager.run(synthesis.circuit().clone()).unwrap();
        // Cache counters accrue on the lowering stages (gate-fusion, the
        // flow's first pass, never consults the lowering cache).
        let counters = second
            .stats
            .iter()
            .find(|s| s.pass == "lower-to-elementary")
            .unwrap()
            .cache
            .expect("caching enabled");
        assert_eq!(counters.misses, 0, "second run must hit the shared cache");
        assert!(counters.hits > 0);
        assert!(cache.counters().hits > 0, "hits land in the caller's cache");

        // And `Off` really disables caching instead of falling back to the
        // preset default.
        let off = Pipeline::standard_batch_with_cache(CacheMode::Off);
        let report = off.run(synthesis.circuit().clone()).unwrap();
        assert!(report.stats.iter().all(|s| s.cache.is_none()));
    }

    #[test]
    fn scheduled_pipeline_preserves_gates_and_never_deepens() {
        use qudit_core::depth::circuit_depth;
        for d in [3u32, 4] {
            let synthesis = KToffoli::new(dim(d), 4).unwrap().synthesize().unwrap();
            let width = synthesis.layout().width;
            let plain = Pipeline::standard(dim(d), width)
                .run(synthesis.circuit().clone())
                .unwrap();
            let scheduled = Pipeline::standard_scheduled(dim(d), width)
                .run(synthesis.circuit().clone())
                .unwrap();
            assert_eq!(scheduled.stats.len(), 5);
            assert_eq!(scheduled.stats[4].pass, "schedule-depth");
            // The scheduler permutes, never rewrites: same multiset of gates.
            assert_eq!(scheduled.circuit.len(), plain.circuit.len());
            assert_eq!(
                scheduled.stats[4].before.gates,
                scheduled.stats[4].after.gates
            );
            assert!(
                circuit_depth(&scheduled.circuit) <= circuit_depth(&plain.circuit),
                "d={d}: scheduling must not deepen the circuit"
            );
        }
    }

    #[test]
    fn scheduled_verified_pipeline_accepts_the_constructions() {
        let synthesis = KToffoli::new(dim(3), 3).unwrap().synthesize().unwrap();
        let width = synthesis.layout().width;
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            let manager =
                Pipeline::standard_scheduled_verified_with_backend(dim(3), width, backend);
            let report = manager.run(synthesis.circuit().clone()).unwrap();
            assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
            assert_eq!(
                report.stats.last().unwrap().pass,
                "verify(schedule-depth)",
                "backend {backend}"
            );
        }
    }

    #[test]
    fn batch_scheduled_preset_appends_the_scheduler() {
        let manager = Pipeline::standard_batch_scheduled();
        assert_eq!(
            manager.pass_names(),
            vec![
                "gate-fusion",
                "lower-to-elementary",
                "lower-to-g-gates",
                "cancel-inverse-pairs",
                "schedule-depth"
            ]
        );
        assert!(matches!(manager.cache_mode(), CacheMode::PerRun));
    }

    #[test]
    fn verified_with_backend_accepts_the_constructions() {
        let synthesis = KToffoli::new(dim(3), 2).unwrap().synthesize().unwrap();
        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            let manager =
                Pipeline::standard_verified_with_backend(dim(3), synthesis.layout().width, backend);
            let report = manager.run(synthesis.circuit().clone()).unwrap();
            assert!(report.circuit.gates().iter().all(Gate::is_g_gate));
        }
    }

    #[test]
    fn synthesis_errors_surface_as_pass_errors() {
        // A three-controlled gate cannot be lowered directly.
        let mut circuit = Circuit::new(dim(3), 4);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                QuditId::new(3),
                vec![
                    Control::zero(QuditId::new(0)),
                    Control::zero(QuditId::new(1)),
                    Control::zero(QuditId::new(2)),
                ],
            ))
            .unwrap();
        let result = Pipeline::standard(dim(3), 4).run(circuit);
        assert!(matches!(result, Err(QuditError::PassFailed { .. })));
    }
}
