//! Error type for the synthesis crate.

use std::error::Error as StdError;
use std::fmt;

use qudit_core::QuditError;

/// Errors produced while synthesising multi-controlled qudit gates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// An error bubbled up from the core circuit substrate.
    Core(QuditError),
    /// The synthesis algorithms require qudit dimension `d ≥ 3`.
    DimensionTooSmall {
        /// The rejected dimension.
        dimension: u32,
        /// The smallest supported dimension.
        minimum: u32,
    },
    /// For even dimensions the k-Toffoli requires one borrowed ancilla
    /// (see the parity argument after Theorem III.2), but none was available.
    BorrowedAncillaRequired {
        /// The (even) dimension for which the ancilla is required.
        dimension: u32,
    },
    /// A construction that only accepts classical (permutation) target
    /// operations was given a general unitary.
    NotClassicalTarget,
    /// A gate could not be lowered to elementary gates.
    Lowering {
        /// Human readable description of the unsupported gate.
        reason: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Core(e) => write!(f, "{e}"),
            SynthesisError::DimensionTooSmall { dimension, minimum } => {
                write!(f, "qudit dimension {dimension} is too small; the synthesis requires d ≥ {minimum}")
            }
            SynthesisError::BorrowedAncillaRequired { dimension } => {
                write!(
                    f,
                    "even dimension d = {dimension} requires one borrowed ancilla qudit for the multi-controlled Toffoli"
                )
            }
            SynthesisError::NotClassicalTarget => {
                write!(
                    f,
                    "target operation must be a classical level permutation for this construction"
                )
            }
            SynthesisError::Lowering { reason } => write!(f, "cannot lower gate: {reason}"),
        }
    }
}

impl StdError for SynthesisError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            SynthesisError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuditError> for SynthesisError {
    fn from(value: QuditError) -> Self {
        SynthesisError::Core(value)
    }
}

/// Convenience result alias for the synthesis crate.
pub type Result<T> = std::result::Result<T, SynthesisError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let errors: Vec<SynthesisError> = vec![
            QuditError::NotAPermutation.into(),
            SynthesisError::DimensionTooSmall {
                dimension: 2,
                minimum: 3,
            },
            SynthesisError::BorrowedAncillaRequired { dimension: 4 },
            SynthesisError::NotClassicalTarget,
            SynthesisError::Lowering {
                reason: "three controls".into(),
            },
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn core_errors_expose_a_source() {
        let error: SynthesisError = QuditError::NotUnitary.into();
        assert!(StdError::source(&error).is_some());
        assert!(StdError::source(&SynthesisError::NotClassicalTarget).is_none());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }
}
