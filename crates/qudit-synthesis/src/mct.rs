//! Public entry points for multi-controlled gate synthesis.
//!
//! * [`KToffoli`] — the k-controlled Toffoli gate `|0^k⟩-X01`
//!   (Theorems III.2 and III.6).
//! * [`MultiControlledGate`] — `|0^k⟩-P` for an arbitrary classical level
//!   permutation `P`.
//! * [`emit_multi_controlled`] — in-place emission onto an existing circuit,
//!   with arbitrary control levels; used by the unitary-synthesis and
//!   reversible-function crates.

use qudit_core::pipeline::PassManager;
use qudit_core::{AncillaKind, AncillaUsage, Circuit, Dimension, Gate, QuditId, SingleQuditOp};

use crate::compiler::{CompileOptions, CompileResult, OptLevel};
use crate::error::{Result, SynthesisError};
use crate::mct_even::mct_even_gates;
use crate::mct_odd::mct_odd_gates;
use crate::pipeline::LowerToElementary;
use crate::resources::Resources;

/// Where each logical role of a multi-controlled gate lives in the
/// synthesised circuit's register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MctLayout {
    /// The control qudits, in order.
    pub controls: Vec<QuditId>,
    /// The target qudit.
    pub target: QuditId,
    /// The borrowed ancilla (present exactly when `d` is even and `k ≥ 2`).
    pub borrowed_ancilla: Option<QuditId>,
    /// Total register width.
    pub width: usize,
}

/// The result of a multi-controlled gate synthesis: the macro circuit, the
/// register layout and the resource counts.
#[derive(Debug, Clone, PartialEq)]
pub struct MctSynthesis {
    circuit: Circuit,
    layout: MctLayout,
    resources: Resources,
}

impl MctSynthesis {
    /// The synthesised circuit at the macro-gate level (gates with at most
    /// two controls).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The register layout of the synthesis.
    pub fn layout(&self) -> &MctLayout {
        &self.layout
    }

    /// Gate and ancilla counts.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// The circuit lowered to elementary (at most singly-controlled) gates.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (they cannot occur for circuits produced by
    /// this crate's constructions).
    pub fn elementary_circuit(&self) -> Result<Circuit> {
        PassManager::new()
            .with_pass(LowerToElementary)
            .run_circuit(self.circuit.clone())
            .map_err(SynthesisError::from)
    }

    /// The circuit lowered to the G-gate set `{Xij} ∪ {|0⟩-X01}` (the
    /// [`OptLevel::O0`] lowering stages, without cancellation — the level
    /// the paper's gate counts are reported at).
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (they cannot occur for circuits produced by
    /// this crate's constructions).
    pub fn g_gate_circuit(&self) -> Result<Circuit> {
        let compiler = CompileOptions::new()
            .opt_level(OptLevel::O0)
            .shape(self.circuit.dimension(), self.circuit.width())
            .compiler();
        compiler
            .compile(&self.circuit)
            .map(|result| result.circuit)
            .map_err(SynthesisError::from)
    }

    /// Runs the standard flow (lowering plus inverse-pair cancellation) on
    /// the synthesised circuit through the [`crate::compiler::Compiler`]
    /// facade, returning the unified [`CompileResult`] (optimised G-gate
    /// circuit, per-pass statistics, depth, cache counters).
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors (they cannot occur for circuits produced
    /// by this crate's constructions).
    pub fn compile(&self) -> Result<CompileResult> {
        let compiler = CompileOptions::new()
            .shape(self.circuit.dimension(), self.circuit.width())
            .compiler();
        compiler
            .compile(&self.circuit)
            .map_err(SynthesisError::from)
    }
}

/// Builder for the k-controlled Toffoli gate `|0^k⟩-X01`.
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_synthesis::KToffoli;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Odd dimension: ancilla-free (Theorem III.6).
/// let odd = KToffoli::new(Dimension::new(3)?, 5)?.synthesize()?;
/// assert_eq!(odd.resources().borrowed_ancillas(), 0);
///
/// // Even dimension: exactly one borrowed ancilla (Theorem III.2).
/// let even = KToffoli::new(Dimension::new(4)?, 5)?.synthesize()?;
/// assert_eq!(even.resources().borrowed_ancillas(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KToffoli {
    dimension: Dimension,
    controls: usize,
}

impl KToffoli {
    /// Creates a builder for the `k`-controlled Toffoli on `d`-level qudits.
    ///
    /// # Errors
    ///
    /// Returns an error when `d < 3`.
    pub fn new(dimension: Dimension, controls: usize) -> Result<Self> {
        if dimension.get() < 3 {
            return Err(SynthesisError::DimensionTooSmall {
                dimension: dimension.get(),
                minimum: 3,
            });
        }
        Ok(KToffoli {
            dimension,
            controls,
        })
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of controls `k`.
    pub fn controls(&self) -> usize {
        self.controls
    }

    /// Synthesises the gate.
    ///
    /// # Errors
    ///
    /// Returns an error when the construction fails (which indicates a bug;
    /// all valid parameters succeed).
    pub fn synthesize(&self) -> Result<MctSynthesis> {
        MultiControlledGate::new(self.dimension, self.controls, SingleQuditOp::Swap(0, 1))?
            .synthesize()
    }
}

/// Builder for `|0^k⟩-P` where `P` is an arbitrary classical level
/// permutation of the target qudit.
///
/// Non-involutive operations are decomposed into transpositions, each
/// synthesised as a multi-controlled swap; the borrowed-ancilla count is
/// unchanged (0 for odd `d`, 1 for even `d`).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiControlledGate {
    dimension: Dimension,
    controls: usize,
    op: SingleQuditOp,
}

impl MultiControlledGate {
    /// Creates a builder for `|0^k⟩-op` on `d`-level qudits.
    ///
    /// # Errors
    ///
    /// Returns an error when `d < 3`, the operation is invalid for the
    /// dimension, or the operation is not classical (use
    /// [`crate::ControlledUnitary`] for general unitaries).
    pub fn new(dimension: Dimension, controls: usize, op: SingleQuditOp) -> Result<Self> {
        if dimension.get() < 3 {
            return Err(SynthesisError::DimensionTooSmall {
                dimension: dimension.get(),
                minimum: 3,
            });
        }
        op.validate(dimension)?;
        if !op.is_classical() {
            return Err(SynthesisError::NotClassicalTarget);
        }
        Ok(MultiControlledGate {
            dimension,
            controls,
            op,
        })
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of controls `k`.
    pub fn controls(&self) -> usize {
        self.controls
    }

    /// The target operation.
    pub fn op(&self) -> &SingleQuditOp {
        &self.op
    }

    /// Synthesises the gate.
    ///
    /// The register layout is `controls, target[, borrowed ancilla]` with the
    /// controls on qudits `0 … k−1`, the target on qudit `k`, and (for even
    /// `d`) the borrowed ancilla on qudit `k+1`.
    ///
    /// # Errors
    ///
    /// Returns an error when the construction fails (which indicates a bug;
    /// all valid parameters succeed).
    pub fn synthesize(&self) -> Result<MctSynthesis> {
        let k = self.controls;
        let dimension = self.dimension;
        let controls: Vec<QuditId> = (0..k).map(QuditId::new).collect();
        let target = QuditId::new(k);
        // Even dimensions need one borrowed ancilla as soon as the gate has
        // two or more controls (the parity argument after Theorem III.2).
        let needs_borrowed = dimension.is_even() && k >= 2;
        let borrowed = if needs_borrowed {
            Some(QuditId::new(k + 1))
        } else {
            None
        };
        let width = k + 1 + usize::from(needs_borrowed);

        let mut circuit = Circuit::new(dimension, width);
        let pool: Vec<QuditId> = borrowed.into_iter().collect();
        let control_levels: Vec<(QuditId, u32)> = controls.iter().map(|&q| (q, 0)).collect();
        emit_multi_controlled(&mut circuit, &control_levels, target, &self.op, &pool)?;

        let ancillas = if needs_borrowed {
            AncillaUsage::of_kind(AncillaKind::Borrowed, 1)
        } else {
            AncillaUsage::none()
        };
        let resources = Resources::for_circuit(&circuit, ancillas)?;
        Ok(MctSynthesis {
            circuit,
            layout: MctLayout {
                controls,
                target,
                borrowed_ancilla: borrowed,
                width,
            },
            resources,
        })
    }
}

/// Appends a multi-controlled classical gate to an existing circuit.
///
/// * `controls` — control qudits with their control levels (a control fires
///   when its qudit is in the given level; the paper's `|0^k⟩` controls use
///   level 0 everywhere).
/// * `target` — the target qudit.
/// * `op` — a classical level permutation applied to the target when every
///   control fires.
/// * `borrowed_pool` — candidate borrowed ancilla qudits.  For odd `d` the
///   pool may be empty (the construction is ancilla-free); for even `d` at
///   least one qudit distinct from the controls and target must be supplied.
///
/// # Errors
///
/// Returns an error when `d < 3`, the operation is not classical, or an even
/// dimension has no usable borrowed qudit.
pub fn emit_multi_controlled(
    circuit: &mut Circuit,
    controls: &[(QuditId, u32)],
    target: QuditId,
    op: &SingleQuditOp,
    borrowed_pool: &[QuditId],
) -> Result<()> {
    let dimension = circuit.dimension();
    if dimension.get() < 3 {
        return Err(SynthesisError::DimensionTooSmall {
            dimension: dimension.get(),
            minimum: 3,
        });
    }
    if !op.is_classical() {
        return Err(SynthesisError::NotClassicalTarget);
    }
    let control_qudits: Vec<QuditId> = controls.iter().map(|(q, _)| *q).collect();

    // Conjugate every control level to 0.
    let mut conjugation = Vec::new();
    for &(qudit, level) in controls {
        dimension.check_level(level)?;
        if level != 0 {
            conjugation.push(Gate::single(SingleQuditOp::Swap(0, level), qudit));
        }
    }
    for gate in &conjugation {
        circuit.push(gate.clone())?;
    }

    // With zero or one control no ancilla is ever needed: emit the
    // (controlled) operation directly regardless of the dimension's parity.
    if control_qudits.len() < 2 {
        let zero_controls: Vec<qudit_core::Control> = control_qudits
            .iter()
            .map(|&q| qudit_core::Control::zero(q))
            .collect();
        circuit.push(Gate::new(
            qudit_core::GateOp::Single(op.clone()),
            target,
            zero_controls,
        ))?;
    } else {
        // Decompose the operation into transpositions; each becomes a
        // multi-controlled swap.
        let transpositions = op.transpositions(dimension).map_err(SynthesisError::from)?;
        for (i, j) in transpositions {
            let gates = if dimension.is_odd() {
                mct_odd_gates(dimension, &control_qudits, target, i, j)?
            } else {
                let borrowed = borrowed_pool
                    .iter()
                    .copied()
                    .find(|q| !control_qudits.contains(q) && *q != target)
                    .ok_or(SynthesisError::BorrowedAncillaRequired {
                        dimension: dimension.get(),
                    })?;
                mct_even_gates(dimension, &control_qudits, target, i, j, borrowed)?
            };
            for gate in gates {
                circuit.push(gate)?;
            }
        }
    }

    // Undo the control conjugation.
    for gate in conjugation.iter().rev() {
        circuit.push(gate.clone())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    #[test]
    fn toffoli_layout_and_ancillas_match_the_theorems() {
        let odd = KToffoli::new(dim(3), 4).unwrap().synthesize().unwrap();
        assert_eq!(odd.layout().width, 5);
        assert_eq!(odd.layout().borrowed_ancilla, None);
        assert_eq!(odd.resources().borrowed_ancillas(), 0);

        let even = KToffoli::new(dim(4), 4).unwrap().synthesize().unwrap();
        assert_eq!(even.layout().width, 6);
        assert_eq!(even.layout().borrowed_ancilla, Some(QuditId::new(5)));
        assert_eq!(even.resources().borrowed_ancillas(), 1);
    }

    #[test]
    fn synthesized_toffoli_is_functionally_correct() {
        for d in [3u32, 4] {
            let dimension = dim(d);
            let synthesis = KToffoli::new(dimension, 3).unwrap().synthesize().unwrap();
            let circuit = synthesis.g_gate_circuit().unwrap();
            assert!(circuit.gates().iter().all(Gate::is_g_gate));
            let k = 3;
            for state in all_states(dimension, synthesis.layout().width) {
                let mut expected = state.clone();
                if state[..k].iter().all(|&x| x == 0) {
                    expected[k] = match expected[k] {
                        0 => 1,
                        1 => 0,
                        other => other,
                    };
                }
                assert_eq!(
                    circuit.apply_to_basis(&state).unwrap(),
                    expected,
                    "d={d}, {state:?}"
                );
            }
        }
    }

    #[test]
    fn multi_controlled_add_is_correct() {
        let dimension = dim(3);
        let synthesis = MultiControlledGate::new(dimension, 2, SingleQuditOp::Add(1))
            .unwrap()
            .synthesize()
            .unwrap();
        let circuit = synthesis.circuit();
        for state in all_states(dimension, synthesis.layout().width) {
            let mut expected = state.clone();
            if state[0] == 0 && state[1] == 0 {
                expected[2] = (expected[2] + 1) % 3;
            }
            assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
        }
    }

    #[test]
    fn emit_with_nonzero_control_levels() {
        let dimension = dim(3);
        let mut circuit = Circuit::new(dimension, 3);
        emit_multi_controlled(
            &mut circuit,
            &[(QuditId::new(0), 1), (QuditId::new(1), 2)],
            QuditId::new(2),
            &SingleQuditOp::Swap(0, 1),
            &[],
        )
        .unwrap();
        for state in all_states(dimension, 3) {
            let mut expected = state.clone();
            if state[0] == 1 && state[1] == 2 {
                expected[2] = match expected[2] {
                    0 => 1,
                    1 => 0,
                    other => other,
                };
            }
            assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
        }
    }

    #[test]
    fn even_dimension_without_pool_is_rejected() {
        let dimension = dim(4);
        let mut circuit = Circuit::new(dimension, 3);
        let result = emit_multi_controlled(
            &mut circuit,
            &[(QuditId::new(0), 0), (QuditId::new(1), 0)],
            QuditId::new(2),
            &SingleQuditOp::Swap(0, 1),
            &[],
        );
        assert!(matches!(
            result,
            Err(SynthesisError::BorrowedAncillaRequired { .. })
        ));
    }

    #[test]
    fn non_classical_targets_are_rejected() {
        let dimension = dim(3);
        let matrix = qudit_sim_free_unitary();
        let result = MultiControlledGate::new(dimension, 2, SingleQuditOp::Unitary(matrix));
        assert!(matches!(result, Err(SynthesisError::NotClassicalTarget)));
    }

    /// A small non-permutation unitary used by the rejection test.
    fn qudit_sim_free_unitary() -> qudit_core::math::SquareMatrix {
        use qudit_core::math::{Complex, SquareMatrix};
        let s = 1.0 / 2.0f64.sqrt();
        let mut m = SquareMatrix::identity(3);
        m[(0, 0)] = Complex::from_real(s);
        m[(0, 1)] = Complex::from_real(s);
        m[(1, 0)] = Complex::from_real(s);
        m[(1, 1)] = Complex::from_real(-s);
        m
    }

    #[test]
    fn dimension_two_is_rejected() {
        assert!(KToffoli::new(dim(2), 3).is_err());
        assert!(MultiControlledGate::new(dim(2), 3, SingleQuditOp::Swap(0, 1)).is_err());
    }

    #[test]
    fn zero_and_one_control_degenerate_cases() {
        for d in [3u32, 4] {
            for k in [0usize, 1] {
                let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
                let circuit = synthesis.circuit();
                for state in all_states(dim(d), synthesis.layout().width) {
                    let mut expected = state.clone();
                    if state[..k].iter().all(|&x| x == 0) {
                        expected[k] = match expected[k] {
                            0 => 1,
                            1 => 0,
                            other => other,
                        };
                    }
                    assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
                }
            }
        }
    }
}
