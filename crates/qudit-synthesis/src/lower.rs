//! Lowering of macro gates (two controls, value-controlled shifts) to
//! elementary gates and to the G-gate set.
//!
//! The synthesis algorithms emit *macro circuits*: circuits whose gates have
//! at most two controls, possibly with the value-controlled shift `|⋆⟩-X±⋆`
//! carrying one additional control.  This module lowers those macro gates to
//!
//! 1. **elementary gates** — gates with at most one control and classical
//!    single-qudit operations (every gate touches at most two qudits), using
//!    the Fig. 2 / Fig. 5 gadgets for the two-controlled cases; and then to
//! 2. **G-gates** — `{Xij} ∪ {|0⟩-X01}` via `qudit_core::lowering`.

use qudit_core::cache::{CacheCounters, CanonicalSite, LoweringCache, LoweringStage, WidthClass};
use qudit_core::lowering as core_lowering;
use qudit_core::pool::WorkStealingPool;
use qudit_core::{
    Circuit, Control, ControlPredicate, Dimension, Gate, GateOp, QuditError, QuditId, SingleQuditOp,
};

use crate::error::{Result, SynthesisError};
use crate::gadgets::{two_controlled_swap_even, two_controlled_swap_odd};

/// Lowers a macro circuit to elementary gates (at most one control per gate).
///
/// Two-controlled gates are expanded with the Fig. 5 gadget when `d` is odd
/// and the Fig. 2 gadget when `d` is even; in the even case a borrowed qudit
/// is chosen among the circuit's other wires, so the circuit must have width
/// at least 4.
///
/// # Errors
///
/// Returns an error when a gate has three or more controls (such gates must
/// be synthesised, not lowered), when an even-dimension circuit is too narrow
/// to provide a borrowed qudit, or when a non-classical gate carries two
/// controls.
pub fn lower_to_elementary(circuit: &Circuit) -> Result<Circuit> {
    let dimension = circuit.dimension();
    let mut out = Circuit::new(dimension, circuit.width());
    for gate in circuit.gates() {
        for lowered in lower_macro_gate(gate, dimension, circuit.width())? {
            out.push(lowered).map_err(SynthesisError::from)?;
        }
    }
    Ok(out)
}

/// Lowers a macro circuit all the way to the elementary G-gate set
/// `{Xij} ∪ {|0⟩-X01}`.
///
/// # Errors
///
/// See [`lower_to_elementary`]; additionally fails if the circuit contains a
/// non-classical (general unitary) gate, which has no G-gate expansion.
pub fn lower_to_g_gates(circuit: &Circuit) -> Result<Circuit> {
    let elementary = lower_to_elementary(circuit)?;
    core_lowering::lower_circuit(&elementary).map_err(SynthesisError::from)
}

/// Counts the G-gates a macro circuit lowers to.
///
/// # Errors
///
/// See [`lower_to_g_gates`].
pub fn g_gate_count(circuit: &Circuit) -> Result<usize> {
    Ok(lower_to_g_gates(circuit)?.len())
}

/// [`lower_to_elementary`] through a [`LoweringCache`], tallying hits and
/// misses into `counters`.
///
/// The expensive sites — two-controlled gadget expansions and
/// value-controlled shifts with an extra control — are canonicalised (wires
/// renamed to role order, the even-`d` borrowed qudit included as an extra
/// canonical wire) and shared by `(gate kind, dimension, width-class)`.  The
/// output is gate-for-gate identical to [`lower_to_elementary`].
///
/// # Errors
///
/// See [`lower_to_elementary`]; failed lowerings are never cached.
pub fn lower_to_elementary_cached(
    circuit: &Circuit,
    cache: &LoweringCache,
    counters: &mut CacheCounters,
) -> Result<Circuit> {
    let dimension = circuit.dimension();
    let mut out = Circuit::new(dimension, circuit.width());
    for gate in circuit.gates() {
        for lowered in lower_macro_gate_cached(gate, dimension, circuit.width(), cache, counters)? {
            out.push(lowered).map_err(SynthesisError::from)?;
        }
    }
    Ok(out)
}

/// [`lower_to_elementary`] with the per-gate work fanned out over `pool`,
/// optionally through a shared [`LoweringCache`].
///
/// Chunks of macro gates lower concurrently and are concatenated in gate
/// order, so the output circuit is identical to the sequential path.  As in
/// [`qudit_core::lowering::lower_circuit_parallel`], the returned counters
/// derive the miss count from the distinct entries added to the cache, which
/// keeps them order-independent.
///
/// # Errors
///
/// Returns the first per-gate error in gate order.
pub fn lower_to_elementary_parallel(
    circuit: &Circuit,
    cache: Option<&LoweringCache>,
    pool: &WorkStealingPool,
) -> Result<(Circuit, CacheCounters)> {
    let dimension = circuit.dimension();
    let width = circuit.width();
    let (gates, counters) =
        core_lowering::lower_gates_chunked(circuit.gates(), cache, pool, |gate, counters| {
            match cache {
                Some(cache) => lower_macro_gate_cached(gate, dimension, width, cache, counters),
                None => lower_macro_gate(gate, dimension, width),
            }
        })?;
    let mut out = Circuit::new(dimension, width);
    out.extend_gates(gates).map_err(SynthesisError::from)?;
    Ok((out, counters))
}

/// [`lower_macro_gate`] through the cache.
///
/// Only the gadget-expanding cases are cached; everything else (gates that
/// are already elementary, or error cases) takes the direct path.  For even
/// `d` the borrowed qudit is resolved *before* canonicalisation so the
/// cached expansion can be renamed onto it; when no spare wire exists the
/// direct path reports the usual error.
fn lower_macro_gate_cached(
    gate: &Gate,
    dimension: Dimension,
    width: usize,
    cache: &LoweringCache,
    counters: &mut CacheCounters,
) -> Result<Vec<Gate>> {
    let cacheable = matches!(
        (gate.controls().len(), gate.op()),
        (2, GateOp::Single(_)) | (1, GateOp::AddFrom { .. })
    );
    if !cacheable {
        return lower_macro_gate(gate, dimension, width);
    }
    let mut extra = Vec::new();
    if dimension.is_even() {
        match pick_borrowed(width, &gate.qudits()) {
            Some(borrowed) => extra.push(borrowed),
            None => return lower_macro_gate(gate, dimension, width),
        }
    }
    let Some(site) = CanonicalSite::of(
        LoweringStage::Elementary,
        gate,
        dimension,
        WidthClass::of(width),
        &extra,
    ) else {
        return lower_macro_gate(gate, dimension, width);
    };
    let canonical = cache
        .get_or_insert_with(site.key(), counters, || {
            lower_macro_gate(site.gate(), dimension, site.width()).map_err(|e| match e {
                SynthesisError::Core(core) => core,
                other => QuditError::UnsupportedLowering {
                    reason: other.to_string(),
                },
            })
        })
        .map_err(SynthesisError::from)?;
    Ok(site.restore(&canonical))
}

fn lower_macro_gate(gate: &Gate, dimension: Dimension, width: usize) -> Result<Vec<Gate>> {
    match (gate.controls().len(), gate.op()) {
        // Already elementary.
        (0, GateOp::Single(_)) | (1, GateOp::Single(_)) | (0, GateOp::AddFrom { .. }) => {
            Ok(vec![gate.clone()])
        }
        // |⋆⟩-X±⋆ with one further control: expand the star into one
        // two-controlled shift per source level.
        (1, GateOp::AddFrom { source, negate }) => {
            let d = dimension.get();
            let mut out = Vec::new();
            for y in 1..d {
                let shift = if *negate { (d - y) % d } else { y };
                if shift == 0 {
                    continue;
                }
                let expanded = Gate::controlled(
                    SingleQuditOp::Add(shift),
                    gate.target(),
                    vec![gate.controls()[0], Control::level(*source, y)],
                );
                out.extend(lower_macro_gate(&expanded, dimension, width)?);
            }
            Ok(out)
        }
        (2, GateOp::Single(op)) => lower_two_controlled(gate, op, dimension, width),
        (n, GateOp::AddFrom { .. }) => Err(SynthesisError::Lowering {
            reason: format!("value-controlled shift with {n} controls cannot be lowered directly"),
        }),
        (n, _) => Err(SynthesisError::Lowering {
            reason: format!(
                "gate has {n} controls; synthesise it with the multi-controlled constructions instead"
            ),
        }),
    }
}

fn lower_two_controlled(
    gate: &Gate,
    op: &SingleQuditOp,
    dimension: Dimension,
    width: usize,
) -> Result<Vec<Gate>> {
    // Expand non-level predicates first: a predicate control is a product of
    // level controls over its matching levels.
    for (index, control) in gate.controls().iter().enumerate() {
        if let ControlPredicate::Level(_) = control.predicate {
            continue;
        }
        let mut out = Vec::new();
        for level in control.predicate.matching_levels(dimension) {
            let mut controls = gate.controls().to_vec();
            controls[index] = Control::level(control.qudit, level);
            let expanded = Gate::controlled(op.clone(), gate.target(), controls);
            out.extend(lower_two_controlled(&expanded, op, dimension, width)?);
        }
        return Ok(out);
    }

    if !op.is_classical() {
        return Err(SynthesisError::Lowering {
            reason:
                "two-controlled general unitaries require the clean-ancilla construction (Fig. 1b)"
                    .to_string(),
        });
    }

    let c1 = gate.controls()[0];
    let c2 = gate.controls()[1];
    let (l1, l2) = match (c1.predicate, c2.predicate) {
        (ControlPredicate::Level(a), ControlPredicate::Level(b)) => (a, b),
        _ => unreachable!("non-level predicates were expanded above"),
    };
    let target = gate.target();

    let mut gates = Vec::new();
    // Conjugate both controls to level 0.
    if l1 != 0 {
        gates.push(Gate::single(SingleQuditOp::Swap(0, l1), c1.qudit));
    }
    if l2 != 0 {
        gates.push(Gate::single(SingleQuditOp::Swap(0, l2), c2.qudit));
    }
    // The target operation as a product of transpositions, each realised by a
    // two-controlled-swap gadget.
    let transpositions = op.transpositions(dimension).map_err(SynthesisError::from)?;
    for (i, j) in transpositions {
        if dimension.is_odd() {
            gates.extend(two_controlled_swap_odd(
                dimension, c1.qudit, c2.qudit, target, i, j,
            )?);
        } else {
            let borrowed = pick_borrowed(width, &[c1.qudit, c2.qudit, target]).ok_or(
                SynthesisError::BorrowedAncillaRequired {
                    dimension: dimension.get(),
                },
            )?;
            gates.extend(two_controlled_swap_even(
                dimension, c1.qudit, c2.qudit, target, i, j, borrowed,
            )?);
        }
    }
    // Undo the control conjugation.
    if l2 != 0 {
        gates.push(Gate::single(SingleQuditOp::Swap(0, l2), c2.qudit));
    }
    if l1 != 0 {
        gates.push(Gate::single(SingleQuditOp::Swap(0, l1), c1.qudit));
    }
    Ok(gates)
}

/// Picks the lowest-index qudit of the register that is not in `exclude`,
/// for use as a borrowed ancilla.
fn pick_borrowed(width: usize, exclude: &[QuditId]) -> Option<QuditId> {
    (0..width).map(QuditId::new).find(|q| !exclude.contains(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::Control;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn index_to_digits(mut index: usize, dimension: Dimension, width: usize) -> Vec<u32> {
        let d = dimension.as_usize();
        let mut digits = vec![0u32; width];
        for slot in digits.iter_mut().rev() {
            *slot = (index % d) as u32;
            index /= d;
        }
        digits
    }

    fn assert_equivalent(original: &Circuit, lowered: &Circuit) {
        assert_eq!(original.width(), lowered.width());
        let dimension = original.dimension();
        for index in 0..dimension.register_size(original.width()) {
            let digits = index_to_digits(index, dimension, original.width());
            assert_eq!(
                original.apply_to_basis(&digits).unwrap(),
                lowered.apply_to_basis(&digits).unwrap(),
                "mismatch on {digits:?}"
            );
        }
    }

    fn macro_circuit(dimension: Dimension, width: usize, gate: Gate) -> Circuit {
        let mut c = Circuit::new(dimension, width);
        c.push(gate).unwrap();
        c
    }

    #[test]
    fn two_controlled_swap_lowers_for_both_parities() {
        for d in [3u32, 4, 5, 6] {
            let dimension = dim(d);
            let width = 4;
            let gate = Gate::controlled(
                SingleQuditOp::Swap(0, 1),
                QuditId::new(2),
                vec![
                    Control::zero(QuditId::new(0)),
                    Control::zero(QuditId::new(1)),
                ],
            );
            let circuit = macro_circuit(dimension, width, gate);
            let elementary = lower_to_elementary(&circuit).unwrap();
            assert!(elementary.max_controls() <= 1);
            assert_equivalent(&circuit, &elementary);
            let g = lower_to_g_gates(&circuit).unwrap();
            assert!(g.gates().iter().all(Gate::is_g_gate));
            assert_equivalent(&circuit, &g);
        }
    }

    #[test]
    fn two_controlled_gates_with_levels_and_predicates_lower_correctly() {
        for d in [3u32, 4] {
            let dimension = dim(d);
            let width = 4;
            let gates = vec![
                Gate::controlled(
                    SingleQuditOp::Add(1),
                    QuditId::new(2),
                    vec![
                        Control::level(QuditId::new(0), 1),
                        Control::zero(QuditId::new(1)),
                    ],
                ),
                Gate::controlled(
                    SingleQuditOp::Swap(0, d - 1),
                    QuditId::new(2),
                    vec![
                        Control::odd(QuditId::new(0)),
                        Control::zero(QuditId::new(1)),
                    ],
                ),
                Gate::controlled(
                    if d % 2 == 0 {
                        SingleQuditOp::ParityFlipEven
                    } else {
                        SingleQuditOp::ParityFlipOdd
                    },
                    QuditId::new(2),
                    vec![
                        Control::odd(QuditId::new(0)),
                        Control::level(QuditId::new(1), 2),
                    ],
                ),
            ];
            for gate in gates {
                let circuit = macro_circuit(dimension, width, gate);
                let elementary = lower_to_elementary(&circuit).unwrap();
                assert!(elementary.max_controls() <= 1);
                assert_equivalent(&circuit, &elementary);
            }
        }
    }

    #[test]
    fn star_add_with_one_control_lowers_correctly() {
        for d in [3u32, 4, 5] {
            let dimension = dim(d);
            let width = 4;
            for negate in [false, true] {
                let gate = Gate::add_from(
                    QuditId::new(0),
                    negate,
                    QuditId::new(2),
                    vec![Control::zero(QuditId::new(1))],
                );
                let circuit = macro_circuit(dimension, width, gate);
                let elementary = lower_to_elementary(&circuit).unwrap();
                assert!(elementary.max_controls() <= 1);
                assert_equivalent(&circuit, &elementary);
            }
        }
    }

    #[test]
    fn even_dimension_without_spare_qudit_is_rejected() {
        let dimension = dim(4);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(2),
            vec![
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
            ],
        );
        // Width 3: no spare qudit for the Fig. 2 gadget.
        let circuit = macro_circuit(dimension, 3, gate);
        assert!(matches!(
            lower_to_elementary(&circuit),
            Err(SynthesisError::BorrowedAncillaRequired { .. })
        ));
    }

    #[test]
    fn three_controls_are_rejected() {
        let dimension = dim(3);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(3),
            vec![
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
                Control::zero(QuditId::new(2)),
            ],
        );
        let circuit = macro_circuit(dimension, 4, gate);
        assert!(matches!(
            lower_to_elementary(&circuit),
            Err(SynthesisError::Lowering { .. })
        ));
    }

    #[test]
    fn g_gate_count_matches_lowered_length() {
        let dimension = dim(5);
        let gate = Gate::controlled(
            SingleQuditOp::Swap(0, 1),
            QuditId::new(2),
            vec![
                Control::zero(QuditId::new(0)),
                Control::zero(QuditId::new(1)),
            ],
        );
        let circuit = macro_circuit(dimension, 3, gate);
        let count = g_gate_count(&circuit).unwrap();
        assert_eq!(count, lower_to_g_gates(&circuit).unwrap().len());
        assert!(count > 0);
    }
}
