//! The typed compilation facade: [`CompileOptions`] + [`Compiler`].
//!
//! The paper's flow used to be exposed as a matrix of `Pipeline::standard*`
//! preset constructors — one per feature combination, doubling with every
//! orthogonal knob.  This module replaces the matrix with one composable
//! configuration surface:
//!
//! * [`CompileOptions`] — a builder with orthogonal typed knobs
//!   ([`Verify`], [`SimBackend`], scheduling, [`CacheMode`], [`Threads`])
//!   plus the [`OptLevel`] shorthand for pass selection;
//! * [`Compiler`] — the facade owning the worker pool and the assembled
//!   [`PassManager`], with [`Compiler::compile`] and
//!   [`Compiler::compile_batch`] returning the unified [`CompileResult`] /
//!   [`BatchResult`] report types (circuit, per-pass statistics, depth,
//!   cache counters, verification verdict).
//!
//! Internally the options translate to a data-driven
//! [`PipelineSpec`] resolved against a
//! [`PassRegistry`] ([`registry`]), so a future knob (routing, cost models,
//! new schedulers) is one more registered stage instead of a new
//! constructor family.
//!
//! # Quick start
//!
//! ```
//! use qudit_core::Dimension;
//! use qudit_synthesis::{CompileOptions, KToffoli, Verify};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dimension = Dimension::new(3)?;
//! let synthesis = KToffoli::new(dimension, 4)?.synthesize()?;
//!
//! // Standard flow (lower → G-gates → cancel), every stage self-checked.
//! let compiler = CompileOptions::new()
//!     .verify(Verify::Exhaustive)
//!     .compiler();
//! let result = compiler.compile(synthesis.circuit())?;
//! assert!(result.circuit.gates().iter().all(|g| g.is_g_gate()));
//! assert!(result.verification.is_verified());
//! assert_eq!(result.depth, qudit_core::depth::circuit_depth(&result.circuit));
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use qudit_core::cache::CacheCounters;
use qudit_core::depth::circuit_depth;
use qudit_core::pipeline::{
    merge_pass_stats, CacheMode, MergedPassStats, PassManager, PassRegistry, PassStats,
    PipelineReport, PipelineSpec,
};
use qudit_core::pool::WorkStealingPool;
use qudit_core::route::{CostModel, RoutePass, UniformCost, SWAP_LADDER_GATES};
use qudit_core::topology::CouplingGraph;
use qudit_core::{Circuit, Dimension};
use qudit_sim::pipeline::VerifyEquivalence;
use qudit_sim::SimBackend;

use crate::pipeline::LowerToElementary;

/// How (and whether) every pipeline stage is checked for semantics
/// preservation.
///
/// Verification wraps each assembled pass in
/// [`VerifyEquivalence`], so a stage that changes the circuit's operator
/// fails the compilation with
/// [`QuditError::PassFailed`](qudit_core::QuditError::PassFailed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Verify {
    /// No verification (the default — the configuration gate counts are
    /// measured in).
    #[default]
    Off,
    /// Check as strongly as the register size allows: exhaustively over the
    /// basis for small classical registers, by full unitary comparison for
    /// small non-classical ones, falling back to deterministic sampling
    /// above the built-in size bounds.
    Exhaustive,
    /// Check on a deterministic sample budget instead of sweeping the
    /// basis: classical circuits are checked on exactly `n` sampled basis
    /// states regardless of register size (values below 1 are treated
    /// as 1).  Non-classical comparisons cap the budget at the engine's
    /// dense-state sample bound (currently 8) — random dense inputs are
    /// maximally sensitive, so a handful suffices there.
    Sampled(usize),
}

/// Worker-pool sizing of a [`Compiler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Threads {
    /// Size the pool from the environment (`QUDIT_THREADS`, else the
    /// available parallelism) — the default.
    #[default]
    Auto,
    /// A fixed worker count (values below 1 are treated as 1; `Fixed(1)`
    /// forces every parallel path sequential).
    Fixed(usize),
}

impl Threads {
    /// The pool this sizing pins on the compiler, or `None` for the
    /// environment-sized default resolved at run time.
    fn pool(self) -> Option<WorkStealingPool> {
        match self {
            Threads::Auto => None,
            Threads::Fixed(threads) => Some(WorkStealingPool::with_threads(threads)),
        }
    }
}

/// Optimisation-level shorthand for the pass-selection knobs
/// (see [`CompileOptions::opt_level`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Lowering only (macro → elementary → G-gates) — the configuration the
    /// paper's G-gate counts are reported in.
    O0,
    /// `O0` plus inverse-pair cancellation (the standard flow, and the
    /// default knob setting).
    O1,
    /// `O1` plus commutation-aware depth scheduling.
    O2,
}

/// Typed, orthogonal configuration of a [`Compiler`].
///
/// Every knob composes with every other; the default
/// (`CompileOptions::new()`) is the paper's standard flow — lowering plus
/// inverse-pair cancellation, unverified, uncached, shape-agnostic,
/// environment-sized pool.
///
/// Jobs can enter the pipeline as Rust [`Circuit`]s
/// ([`Compiler::compile`]) or as text IR ([`Compiler::compile_source`]);
/// the accepted dialect — dimension declarations, the gate table and
/// control syntax — is documented in the [`qudit_core::qasm`] module-level
/// reference.
///
/// # Example
///
/// ```
/// use qudit_core::pipeline::CacheMode;
/// use qudit_sim::SimBackend;
/// use qudit_synthesis::{CompileOptions, OptLevel, Threads, Verify};
///
/// let options = CompileOptions::new()
///     .opt_level(OptLevel::O2)             // cancel + schedule
///     .verify(Verify::Sampled(64))         // self-check on 64 samples
///     .backend(SimBackend::Sparse)         // … on the sparse engine
///     .cache(CacheMode::PerRun)            // deterministic cache counters
///     .threads(Threads::Fixed(2));
/// assert_eq!(
///     options.compiler().pass_names(),
///     vec![
///         "verify(gate-fusion)",
///         "verify(lower-to-elementary)",
///         "verify(lower-to-g-gates)",
///         "verify(cancel-inverse-pairs)",
///         "verify(schedule-depth)",
///     ]
/// );
/// ```
#[derive(Clone)]
pub struct CompileOptions {
    verify: Verify,
    backend: SimBackend,
    fusion: bool,
    cancel: bool,
    schedule: bool,
    cache: CacheMode,
    threads: Threads,
    pool: Option<WorkStealingPool>,
    shape: Option<(Dimension, usize)>,
    topology: Option<CouplingGraph>,
    cost: Arc<dyn CostModel>,
}

impl fmt::Debug for CompileOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileOptions")
            .field("verify", &self.verify)
            .field("backend", &self.backend)
            .field("fusion", &self.fusion)
            .field("cancel", &self.cancel)
            .field("schedule", &self.schedule)
            .field("cache", &self.cache)
            .field("threads", &self.threads)
            .field("pool", &self.pool)
            .field("shape", &self.shape)
            .field("topology", &self.topology)
            .field("cost", &self.cost.name())
            .finish()
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            verify: Verify::Off,
            backend: SimBackend::Auto,
            fusion: true,
            cancel: true,
            schedule: false,
            cache: CacheMode::Off,
            threads: Threads::Auto,
            pool: None,
            shape: None,
            topology: None,
            cost: Arc::new(UniformCost),
        }
    }
}

impl CompileOptions {
    /// The default options: the standard flow (`O1`), unverified, uncached,
    /// shape-agnostic, environment-sized pool.
    pub fn new() -> Self {
        CompileOptions::default()
    }

    /// Selects the verification mode (default [`Verify::Off`]).
    #[must_use]
    pub fn verify(mut self, verify: Verify) -> Self {
        self.verify = match verify {
            Verify::Sampled(samples) => Verify::Sampled(samples.max(1)),
            other => other,
        };
        self
    }

    /// Selects the simulation backend verification runs on (default
    /// [`SimBackend::Auto`]; irrelevant while verification is off — the
    /// verdicts never depend on the backend, only the wall time does).
    ///
    /// Under [`SimBackend::Auto`] or [`SimBackend::Stabilizer`], stages
    /// whose input and output are both all-Clifford circuits over a prime
    /// dimension are checked by exact stabilizer-tableau comparison, which
    /// is complete up to global phase at *any* register width; all other
    /// stages fall back to the state-vector strategies.
    #[must_use]
    pub fn backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Enables or disables the macro-level gate-fusion stage (default on;
    /// off at [`OptLevel::O0`]).  Fusion composes runs of same-support
    /// classical gates into one permutation gate *before* lowering, and
    /// only rewrites a run when that provably does not increase the lowered
    /// G-gate cost.
    #[must_use]
    pub fn fusion(mut self, fusion: bool) -> Self {
        self.fusion = fusion;
        self
    }

    /// Enables or disables the final inverse-pair cancellation stage
    /// (default on).
    #[must_use]
    pub fn cancel(mut self, cancel: bool) -> Self {
        self.cancel = cancel;
        self
    }

    /// Enables or disables the commutation-aware depth-scheduling stage
    /// (default off; scheduling permutes commuting gates, never rewrites
    /// them).
    #[must_use]
    pub fn schedule(mut self, schedule: bool) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets both pass-selection knobs at once (see [`OptLevel`]).
    #[must_use]
    pub fn opt_level(self, level: OptLevel) -> Self {
        match level {
            OptLevel::O0 => self.fusion(false).cancel(false).schedule(false),
            OptLevel::O1 => self.fusion(true).cancel(true).schedule(false),
            OptLevel::O2 => self.fusion(true).cancel(true).schedule(true),
        }
    }

    /// Selects how runs provision the lowering cache (default
    /// [`CacheMode::Off`]).
    #[must_use]
    pub fn cache(mut self, cache: CacheMode) -> Self {
        self.cache = cache;
        self
    }

    /// Sizes the compiler's worker pool (default [`Threads::Auto`]).
    #[must_use]
    pub fn threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Pins an existing pool on the compiler instead of letting it build
    /// its own — overrides [`CompileOptions::threads`].  The compile
    /// service pins one [`WorkStealingPool::persistent`] pool here so every
    /// job dispatches onto long-lived workers instead of paying
    /// thread-spawn per compilation (pool clones share the same crew).
    #[must_use]
    pub fn pool(mut self, pool: WorkStealingPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Pins the register shape: compilations of circuits with a different
    /// dimension or width are rejected up front (default: shape-agnostic,
    /// as heterogeneous batch sweeps need).
    #[must_use]
    pub fn shape(mut self, dimension: Dimension, width: usize) -> Self {
        self.shape = Some((dimension, width));
        self
    }

    /// Routes compiled circuits onto a device coupling graph (default: off —
    /// all-to-all connectivity, no `"route"` stage).
    ///
    /// With a topology set, the input circuit is first embedded in the
    /// graph's full site register, then — after lowering and cancellation,
    /// before scheduling — the `"route"` stage rewrites it so every
    /// two-qudit gate acts on a coupled pair, appending the
    /// inverse-permutation SWAP epilogue so the stage is
    /// semantics-preserving (and verifies under every [`Verify`] mode and
    /// backend).  [`CompileResult`] then reports `swap_count`,
    /// `routed_depth` and `weighted_cost`.
    ///
    /// Composes with [`CompileOptions::shape`] only when the pinned width
    /// equals the graph's site count (the pipeline sees the embedded
    /// circuit).
    #[must_use]
    pub fn topology(mut self, graph: CouplingGraph) -> Self {
        self.topology = Some(graph);
        self
    }

    /// Selects the cost model driving the router's tie-breaking and the
    /// reported `weighted_cost` (default [`UniformCost`]; only observable
    /// with a [`CompileOptions::topology`] set).
    #[must_use]
    pub fn cost(mut self, cost: impl CostModel + 'static) -> Self {
        self.cost = Arc::new(cost);
        self
    }

    /// The configured verification mode.
    pub fn verify_mode(&self) -> Verify {
        self.verify
    }

    /// The configured simulation backend.
    pub fn sim_backend(&self) -> SimBackend {
        self.backend
    }

    /// Whether the gate-fusion stage is enabled.
    pub fn fuses(&self) -> bool {
        self.fusion
    }

    /// Whether the cancellation stage is enabled.
    pub fn cancels(&self) -> bool {
        self.cancel
    }

    /// Whether the scheduling stage is enabled.
    pub fn schedules(&self) -> bool {
        self.schedule
    }

    /// The configured cache mode.
    pub fn cache_mode(&self) -> &CacheMode {
        &self.cache
    }

    /// The configured pool sizing.
    pub fn thread_mode(&self) -> Threads {
        self.threads
    }

    /// The pinned pool, if any (see [`CompileOptions::pool`]).
    pub fn pinned_pool(&self) -> Option<&WorkStealingPool> {
        self.pool.as_ref()
    }

    /// The pinned register shape, if any.
    pub fn register_shape(&self) -> Option<(Dimension, usize)> {
        self.shape
    }

    /// The coupling graph routing targets, if routing is enabled.
    pub fn coupling_graph(&self) -> Option<&CouplingGraph> {
        self.topology.as_ref()
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> &Arc<dyn CostModel> {
        &self.cost
    }

    /// The data-driven pipeline description these options select — the
    /// stage list handed to [`registry`] for assembly.
    pub fn spec(&self) -> PipelineSpec {
        let mut spec = PipelineSpec::new();
        if self.fusion {
            // Fusion runs first, at the macro level, where same-support
            // runs are still visible (lowering breaks them apart).
            spec = spec.with_stage("gate-fusion");
        }
        spec = spec
            .with_stage("lower-to-elementary")
            .with_stage("lower-to-g-gates");
        if self.cancels() {
            spec = spec.with_stage("cancel-inverse-pairs");
        }
        if self.topology.is_some() {
            // Routing runs on the lowered, cancelled circuit (arity ≤ 2)
            // and before scheduling, so routed-then-scheduled depth is what
            // the pipeline measures.
            spec = spec.with_stage("route");
        }
        if self.schedule {
            spec = spec.with_stage("schedule-depth");
        }
        if let Some((dimension, width)) = self.shape {
            spec = spec.with_shape(dimension, width);
        }
        spec.with_cache(self.cache.clone())
    }

    /// Assembles the [`PassManager`] these options describe — the escape
    /// hatch for callers that extend the pipeline with custom passes
    /// ([`PassManager::with_pass`]) before running it themselves.
    pub fn build_manager(&self) -> PassManager {
        let mut registry = registry();
        if let Some(graph) = &self.topology {
            // The registry's factories are configuration-free; the route
            // stage closes over this option set's graph and cost model.
            let graph = graph.clone();
            let cost = self.cost.clone();
            registry.register("route", move || {
                Box::new(RoutePass::new(graph.clone(), cost.clone()))
            });
        }
        let manager = registry
            .assemble(&self.spec())
            .expect("every stage the options select is registered");
        let manager = match self.pool.clone().or_else(|| self.threads.pool()) {
            Some(pool) => manager.with_pool(pool),
            None => manager,
        };
        match self.verify {
            Verify::Off => manager,
            Verify::Exhaustive => {
                VerifyEquivalence::wrap_manager_with_backend(manager, self.backend)
            }
            Verify::Sampled(samples) => {
                let backend = self.backend;
                manager.map_passes(|inner| {
                    Box::new(
                        VerifyEquivalence::wrap(inner)
                            .with_backend(backend)
                            .with_limits(0, samples),
                    )
                })
            }
        }
    }

    /// Builds the [`Compiler`] these options describe.
    pub fn compiler(self) -> Compiler {
        Compiler::new(self)
    }
}

/// The pass registry the facade assembles pipelines from: the core passes
/// ([`PassRegistry::core`]) plus this crate's `lower-to-elementary` stage.
pub fn registry() -> PassRegistry {
    let mut registry = PassRegistry::core();
    registry.register("lower-to-elementary", || Box::new(LowerToElementary));
    registry
}

/// Verification verdict of a compilation (see [`Verify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Verification was off; the output was not re-simulated.
    Skipped,
    /// Every stage was wrapped in [`VerifyEquivalence`] and accepted — the
    /// output provably implements the input's operator under the checked
    /// inputs.  (A failed check never produces a result: it fails the
    /// compilation instead.)
    Verified(Verify),
}

impl VerifyOutcome {
    /// Returns `true` when the compilation was verified.
    pub fn is_verified(&self) -> bool {
        matches!(self, VerifyOutcome::Verified(_))
    }
}

impl fmt::Display for VerifyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyOutcome::Skipped => write!(f, "skipped"),
            VerifyOutcome::Verified(Verify::Sampled(samples)) => {
                write!(f, "verified ({samples} samples)")
            }
            VerifyOutcome::Verified(_) => write!(f, "verified"),
        }
    }
}

/// The unified report of one compilation: the circuit plus everything the
/// run measured.
///
/// This is the single return shape of both [`Compiler::compile`] and (per
/// job) [`Compiler::compile_batch`], replacing the preset-dependent
/// `PipelineReport`-or-`BatchReport` split of the legacy preset matrix.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The compiled circuit.
    pub circuit: Circuit,
    /// Per-pass statistics, in execution order (verification wrappers
    /// report as `verify(<pass>)`).
    pub stats: Vec<PassStats>,
    /// Depth of the compiled circuit.
    pub depth: usize,
    /// Lowering-cache tally summed over every pass — `Some` whenever the
    /// options enabled a cache, `None` otherwise.
    pub cache: Option<CacheCounters>,
    /// Gates removed by the macro-level `gate-fusion` stage (zero when the
    /// stage was disabled or found nothing profitable to fuse).
    pub fused_gates: usize,
    /// Worker count the dense panel engine dispatches over for this
    /// compilation's thread mode — the resolved [`Threads`] width.
    pub panel_threads: usize,
    /// Wire-SWAP ladders the `"route"` stage inserted — `Some` whenever a
    /// [`CompileOptions::topology`] was set, `None` otherwise.
    pub swap_count: Option<usize>,
    /// Depth of the circuit right after routing (before any scheduling) —
    /// `Some` whenever a topology was set.
    pub routed_depth: Option<usize>,
    /// The configured [`CostModel`]'s cost of the final circuit — `Some`
    /// whenever a topology was set.
    pub weighted_cost: Option<f64>,
    /// Whether the compilation was verified (see [`Verify`]).
    pub verification: VerifyOutcome,
}

impl CompileResult {
    fn from_report(report: PipelineReport, options: &CompileOptions, panel_threads: usize) -> Self {
        let verify = options.verify;
        let mut cache: Option<CacheCounters> = None;
        for stats in &report.stats {
            if let Some(tally) = stats.cache {
                cache
                    .get_or_insert_with(CacheCounters::default)
                    .merge(tally);
            }
        }
        // The last pass's output profile already measured the final
        // circuit's depth; only an empty pipeline needs a fresh scan.
        let depth = report
            .stats
            .last()
            .map(|stats| stats.after.depth)
            .unwrap_or_else(|| circuit_depth(&report.circuit));
        let fused_gates = report
            .stats
            .iter()
            .filter(|stats| matches!(stats.pass.as_str(), "gate-fusion" | "verify(gate-fusion)"))
            .map(|stats| stats.before.gates.saturating_sub(stats.after.gates))
            .sum();
        let route_stats = report
            .stats
            .iter()
            .find(|stats| matches!(stats.pass.as_str(), "route" | "verify(route)"));
        // The route stage only ever *adds* gates, all of them in
        // four-gate SWAP ladders, so the gate delta recovers the count.
        let swap_count = route_stats
            .map(|stats| stats.after.gates.saturating_sub(stats.before.gates) / SWAP_LADDER_GATES);
        let routed_depth = route_stats.map(|stats| stats.after.depth);
        let weighted_cost = options
            .topology
            .is_some()
            .then(|| options.cost.circuit_cost(&report.circuit));
        CompileResult {
            depth,
            circuit: report.circuit,
            stats: report.stats,
            cache,
            fused_gates,
            panel_threads,
            swap_count,
            routed_depth,
            weighted_cost,
            verification: match verify {
                Verify::Off => VerifyOutcome::Skipped,
                verified => VerifyOutcome::Verified(verified),
            },
        }
    }

    /// Exports the compiled circuit as canonical text IR (see
    /// [`qudit_core::qasm::print_circuit`]); parsing the result back yields
    /// a structurally identical circuit.
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
    /// use qudit_synthesis::CompileOptions;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut circuit = Circuit::new(Dimension::new(3)?, 1);
    /// circuit.push(Gate::single(SingleQuditOp::Swap(0, 2), QuditId::new(0)))?;
    /// let result = CompileOptions::new().compiler().compile(&circuit)?;
    /// let text = result.to_qasm();
    /// assert_eq!(qudit_core::qasm::parse_source(&text)?, result.circuit);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_qasm(&self) -> String {
        qudit_core::qasm::print_circuit(&self.circuit)
    }

    /// Total wall-clock time across all passes.
    pub fn total_elapsed(&self) -> Duration {
        self.stats.iter().map(|s| s.elapsed).sum()
    }

    /// The statistics entry of the named pass, if it ran (verification
    /// wrappers match both `name` and `verify(name)`).
    pub fn stats_for(&self, pass: &str) -> Option<&PassStats> {
        let wrapped = format!("verify({pass})");
        self.stats
            .iter()
            .find(|s| s.pass == pass || s.pass == wrapped)
    }
}

impl fmt::Display for CompileResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stats in &self.stats {
            writeln!(f, "{stats}")?;
        }
        write!(
            f,
            "final: {} gates, depth {}, verification {}",
            self.circuit.len(),
            self.depth,
            self.verification
        )
    }
}

/// The unified report of a batch compilation: one [`CompileResult`] per
/// input circuit, in input order, plus order-independent merged statistics.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-job results, in input order.
    pub results: Vec<CompileResult>,
}

impl BatchResult {
    /// Number of compiled circuits.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Returns `true` when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The compiled circuits, in input order.
    pub fn circuits(&self) -> impl Iterator<Item = &Circuit> {
        self.results.iter().map(|r| &r.circuit)
    }

    /// Per-pass statistics summed over every job (order-independent — see
    /// [`merge_pass_stats`]).
    pub fn merged_stats(&self) -> Vec<MergedPassStats> {
        merge_pass_stats(self.results.iter().map(|r| r.stats.as_slice()))
    }

    /// Total wall-clock pass time summed over every job (CPU time, not
    /// elapsed time: concurrent jobs overlap).
    pub fn total_elapsed(&self) -> Duration {
        self.results.iter().map(CompileResult::total_elapsed).sum()
    }

    /// The cache tally summed over every job and pass.
    pub fn cache_counters(&self) -> CacheCounters {
        let mut total = CacheCounters::default();
        for result in &self.results {
            if let Some(cache) = result.cache {
                total.merge(cache);
            }
        }
        total
    }

    /// Returns `true` when every job of the batch was verified.
    pub fn is_verified(&self) -> bool {
        !self.results.is_empty() && self.results.iter().all(|r| r.verification.is_verified())
    }
}

impl fmt::Display for BatchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "batch of {} circuits", self.len())?;
        for merged in self.merged_stats() {
            writeln!(f, "{merged}")?;
        }
        Ok(())
    }
}

/// The compilation facade: owns the worker pool and the [`PassManager`]
/// assembled from its [`CompileOptions`].
///
/// One `Compiler` is immutable and reusable — build it once, compile many
/// circuits (or batches) through it.
///
/// # Example
///
/// ```
/// use qudit_core::pipeline::CacheMode;
/// use qudit_core::Dimension;
/// use qudit_synthesis::{CompileOptions, Compiler, KToffoli};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A heterogeneous sweep through one shape-agnostic, cached compiler.
/// let mut jobs = Vec::new();
/// for (d, k) in [(3u32, 4usize), (4, 3), (5, 2)] {
///     let synthesis = KToffoli::new(Dimension::new(d)?, k)?.synthesize()?;
///     jobs.push(synthesis.circuit().clone());
/// }
/// let compiler = Compiler::new(CompileOptions::new().cache(CacheMode::PerRun));
/// let batch = compiler.compile_batch(&jobs)?;
/// assert_eq!(batch.len(), 3);
/// assert!(batch.cache_counters().hits > 0);
/// # Ok(())
/// # }
/// ```
pub struct Compiler {
    options: CompileOptions,
    manager: PassManager,
}

impl Compiler {
    /// Builds the compiler an option set describes.
    pub fn new(options: CompileOptions) -> Self {
        let manager = options.build_manager();
        Compiler { options, manager }
    }

    /// The options this compiler was built from.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The assembled pass names, in execution order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.manager.pass_names()
    }

    /// The assembled pass manager (for inspection; to *extend* the pipeline
    /// use [`CompileOptions::build_manager`] and run the manager directly).
    pub fn manager(&self) -> &PassManager {
        &self.manager
    }

    /// Compiles one circuit.
    ///
    /// # Errors
    ///
    /// Returns the first pass error — including verification failures
    /// ([`Verify`]) and shape mismatches
    /// ([`CompileOptions::shape`]).
    pub fn compile(&self, circuit: &Circuit) -> qudit_core::Result<CompileResult> {
        let report = self.manager.run(self.embed(circuit)?)?;
        Ok(CompileResult::from_report(
            report,
            &self.options,
            self.panel_threads(),
        ))
    }

    /// Embeds a job in the coupling graph's full site register when routing
    /// is enabled, so every stage (and its verification wrapper, which
    /// requires width stability) runs over the physical register.  Narrower
    /// graphs are left to the route stage's typed
    /// [`TopologyTooSmall`](qudit_core::QuditError::TopologyTooSmall) error.
    fn embed(&self, circuit: &Circuit) -> qudit_core::Result<Circuit> {
        match &self.options.topology {
            Some(graph) if graph.sites() > circuit.width() => circuit.widened(graph.sites()),
            _ => Ok(circuit.clone()),
        }
    }

    /// Compiles a text-IR source (see [`qudit_core::qasm`]) through the
    /// same pass stack as [`Compiler::compile`].
    ///
    /// The source is parsed and lowered by [`qudit_core::qasm::parse_source`]
    /// and the resulting circuit compiled with this compiler's options;
    /// `compile_source(print_circuit(&c))` is equivalent to `compile(&c)`
    /// gate-for-gate.
    ///
    /// # Errors
    ///
    /// Returns [`qudit_core::QuditError::ParseFailed`] (with the 1-based
    /// line/column of the first diagnostic) for invalid sources, and
    /// otherwise whatever [`Compiler::compile`] returns.
    ///
    /// # Example
    ///
    /// ```
    /// use qudit_synthesis::CompileOptions;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let compiler = CompileOptions::new().compiler();
    /// let result = compiler.compile_source(
    ///     "OPENQASM 3.0;\n\
    ///      qudit[3] q[3];\n\
    ///      ctrl @ ctrl @ swap(0, 1) q[0], q[1], q[2];",
    /// )?;
    /// assert!(result.circuit.gates().iter().all(|g| g.is_g_gate()));
    ///
    /// // Diagnostics carry the source location.
    /// let error = compiler.compile_source("qudit[3] q[1];\nboop q[0];").unwrap_err();
    /// assert!(error.to_string().contains("line 2, column 1"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn compile_source(&self, source: &str) -> qudit_core::Result<CompileResult> {
        let circuit =
            qudit_core::qasm::parse_source(source).map_err(qudit_core::QuditError::from)?;
        self.compile(&circuit)
    }

    /// The worker count the dense panel engine resolves the compiler's
    /// [`Threads`] mode to: `Fixed(n)` clamps to at least one worker, `Auto`
    /// sizes from the environment exactly like the pool itself does.
    pub fn panel_threads(&self) -> usize {
        if let Some(pool) = &self.options.pool {
            return pool.threads().max(1);
        }
        match self.options.threads {
            Threads::Auto => WorkStealingPool::default().threads(),
            Threads::Fixed(threads) => threads.max(1),
        }
    }

    /// Compiles many circuits concurrently on the compiler's pool
    /// ([`Threads`]), returning one [`CompileResult`] per circuit in input
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first job error in input order (later jobs still run).
    pub fn compile_batch(&self, circuits: &[Circuit]) -> qudit_core::Result<BatchResult> {
        let pool = self.manager.pool().unwrap_or_default();
        let embedded: Vec<Circuit> = circuits
            .iter()
            .map(|circuit| self.embed(circuit))
            .collect::<qudit_core::Result<_>>()?;
        let batch = self.manager.run_batch_refs(&embedded, &pool)?;
        let panel_threads = self.panel_threads();
        Ok(BatchResult {
            results: batch
                .reports
                .into_iter()
                .map(|report| CompileResult::from_report(report, &self.options, panel_threads))
                .collect(),
        })
    }
}

impl fmt::Debug for Compiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Compiler")
            .field("options", &self.options)
            .field("passes", &self.pass_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KToffoli;
    use qudit_core::Gate;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn default_options_select_the_standard_flow() {
        let spec = CompileOptions::new().spec();
        assert_eq!(
            spec.stages,
            vec![
                "gate-fusion",
                "lower-to-elementary",
                "lower-to-g-gates",
                "cancel-inverse-pairs"
            ]
        );
        assert!(spec.shape.is_none());
        assert!(matches!(spec.cache, CacheMode::Off));
    }

    #[test]
    fn opt_levels_map_onto_pass_selection() {
        let stages = |level| CompileOptions::new().opt_level(level).spec().stages;
        assert_eq!(
            stages(OptLevel::O0),
            vec!["lower-to-elementary", "lower-to-g-gates"]
        );
        assert_eq!(
            stages(OptLevel::O1),
            vec![
                "gate-fusion",
                "lower-to-elementary",
                "lower-to-g-gates",
                "cancel-inverse-pairs"
            ]
        );
        assert_eq!(
            stages(OptLevel::O2),
            vec![
                "gate-fusion",
                "lower-to-elementary",
                "lower-to-g-gates",
                "cancel-inverse-pairs",
                "schedule-depth"
            ]
        );
    }

    #[test]
    fn compile_produces_the_unified_report() {
        let synthesis = KToffoli::new(dim(3), 3).unwrap().synthesize().unwrap();
        let compiler = CompileOptions::new()
            .cache(CacheMode::PerRun)
            .shape(dim(3), synthesis.layout().width)
            .compiler();
        let result = compiler.compile(synthesis.circuit()).unwrap();
        assert!(result.circuit.gates().iter().all(Gate::is_g_gate));
        assert_eq!(result.stats.len(), 4);
        assert_eq!(result.depth, circuit_depth(&result.circuit));
        assert!(result.cache.expect("cache enabled").total() > 0);
        assert_eq!(result.verification, VerifyOutcome::Skipped);
        assert!(result.stats_for("gate-fusion").is_some());
        assert!(result.stats_for("cancel-inverse-pairs").is_some());
        assert!(result.panel_threads >= 1);
        assert!(result.to_string().contains("verification skipped"));

        // Shape pinning rejects mismatched circuits.
        assert!(compiler.compile(&Circuit::new(dim(3), 2)).is_err());
    }

    #[test]
    fn verification_knobs_wrap_every_stage() {
        let synthesis = KToffoli::new(dim(3), 2).unwrap().synthesize().unwrap();
        for verify in [Verify::Exhaustive, Verify::Sampled(16)] {
            let compiler = CompileOptions::new().verify(verify).compiler();
            assert!(compiler
                .pass_names()
                .iter()
                .all(|name| name.starts_with("verify(")));
            let result = compiler.compile(synthesis.circuit()).unwrap();
            assert_eq!(result.verification, VerifyOutcome::Verified(verify));
            assert!(result.verification.is_verified());
        }
        // Sampled(0) is clamped rather than vacuous.
        assert_eq!(
            CompileOptions::new()
                .verify(Verify::Sampled(0))
                .verify_mode(),
            Verify::Sampled(1)
        );
    }

    #[test]
    fn verification_accepts_every_backend() {
        // The verdict must not depend on the engine verification runs on —
        // including the stabilizer backend, which falls back to state-vector
        // strategies whenever a stage output is not all-Clifford.
        let synthesis = KToffoli::new(dim(3), 2).unwrap().synthesize().unwrap();
        for backend in [
            SimBackend::Auto,
            SimBackend::Dense,
            SimBackend::Sparse,
            SimBackend::Stabilizer,
        ] {
            let compiler = CompileOptions::new()
                .verify(Verify::Exhaustive)
                .backend(backend)
                .compiler();
            assert_eq!(compiler.options().sim_backend(), backend);
            let result = compiler.compile(synthesis.circuit()).unwrap();
            assert!(result.verification.is_verified(), "backend {backend}");
        }
    }

    #[test]
    fn batch_results_merge_like_batch_reports() {
        let jobs: Vec<Circuit> = [(3u32, 2usize), (4, 2), (5, 2)]
            .iter()
            .map(|&(d, k)| {
                KToffoli::new(dim(d), k)
                    .unwrap()
                    .synthesize()
                    .unwrap()
                    .circuit()
                    .clone()
            })
            .collect();
        let compiler = CompileOptions::new()
            .cache(CacheMode::PerRun)
            .threads(Threads::Fixed(2))
            .compiler();
        let batch = compiler.compile_batch(&jobs).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert!(!batch.is_verified());
        let merged = batch.merged_stats();
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0].jobs, 3);
        assert!(batch.cache_counters().total() > 0);
        assert!(batch.to_string().contains("batch of 3 circuits"));
        // Batch jobs equal per-job compiles, gate for gate.
        for (job, result) in jobs.iter().zip(&batch.results) {
            assert_eq!(compiler.compile(job).unwrap().circuit, result.circuit);
        }
    }

    #[test]
    fn custom_passes_extend_the_assembled_manager() {
        use qudit_core::pipeline::pass_fn;
        let synthesis = KToffoli::new(dim(3), 2).unwrap().synthesize().unwrap();
        let manager = CompileOptions::new()
            .build_manager()
            .with_pass(pass_fn("identity", Ok));
        let report = manager.run(synthesis.circuit().clone()).unwrap();
        assert_eq!(report.stats.last().unwrap().pass, "identity");
    }

    #[test]
    fn registry_covers_every_selectable_stage() {
        let registry = registry();
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            for stage in CompileOptions::new().opt_level(level).spec().stages {
                assert!(registry.contains(&stage), "unregistered stage {stage}");
            }
        }
    }

    #[test]
    fn topology_knob_inserts_the_route_stage() {
        let graph = CouplingGraph::linear(5).unwrap();
        let spec = CompileOptions::new()
            .opt_level(OptLevel::O2)
            .topology(graph.clone())
            .spec();
        assert_eq!(
            spec.stages,
            vec![
                "gate-fusion",
                "lower-to-elementary",
                "lower-to-g-gates",
                "cancel-inverse-pairs",
                "route",
                "schedule-depth"
            ]
        );
        let compiler = CompileOptions::new().topology(graph).compiler();
        assert!(compiler.pass_names().contains(&"route"));
        // Off by default: no stage, no columns.
        assert!(!CompileOptions::new()
            .spec()
            .stages
            .contains(&"route".to_string()));
    }

    #[test]
    fn routed_compilations_satisfy_adjacency_and_report_columns() {
        use qudit_core::route::{validate_adjacency, NoiseAwareCost};
        let synthesis = KToffoli::new(dim(3), 3).unwrap().synthesize().unwrap();
        let graph = CouplingGraph::linear(synthesis.layout().width).unwrap();
        let baseline = CompileOptions::new().compiler();
        let unrouted = baseline.compile(synthesis.circuit()).unwrap();
        assert!(validate_adjacency(&unrouted.circuit, &graph).is_err());
        assert_eq!(unrouted.swap_count, None);
        assert_eq!(unrouted.routed_depth, None);
        assert_eq!(unrouted.weighted_cost, None);

        let compiler = CompileOptions::new()
            .opt_level(OptLevel::O2)
            .topology(graph.clone())
            .cost(NoiseAwareCost::default())
            .compiler();
        let routed = compiler.compile(synthesis.circuit()).unwrap();
        validate_adjacency(&routed.circuit, &graph).unwrap();
        assert!(routed.swap_count.unwrap() > 0);
        assert!(routed.routed_depth.unwrap() > 0);
        assert!(routed.weighted_cost.unwrap() > 0.0);
        // Scheduling after routing must not break adjacency (it only
        // permutes commuting gates) and the final depth is the scheduled
        // one.
        assert!(routed.depth <= routed.routed_depth.unwrap());
    }

    #[test]
    fn routed_compilations_verify_on_every_backend() {
        let synthesis = KToffoli::new(dim(3), 2).unwrap().synthesize().unwrap();
        let graph = CouplingGraph::ring(3).unwrap();
        for backend in [
            SimBackend::Auto,
            SimBackend::Dense,
            SimBackend::Sparse,
            SimBackend::Stabilizer,
        ] {
            let compiler = CompileOptions::new()
                .topology(graph.clone())
                .verify(Verify::Exhaustive)
                .backend(backend)
                .compiler();
            let result = compiler.compile(synthesis.circuit()).unwrap();
            assert!(result.verification.is_verified(), "backend {backend}");
            assert!(result.stats_for("route").is_some());
        }
    }

    #[test]
    fn routed_batches_match_sequential_compiles() {
        let jobs: Vec<Circuit> = [2usize, 3]
            .iter()
            .map(|&k| {
                KToffoli::new(dim(3), k)
                    .unwrap()
                    .synthesize()
                    .unwrap()
                    .circuit()
                    .clone()
            })
            .collect();
        // A graph wide enough for the widest job; narrower jobs are
        // embedded into the full site register.
        let sites = jobs.iter().map(Circuit::width).max().unwrap();
        let graph = CouplingGraph::grid(2, sites.div_ceil(2)).unwrap();
        let compiler = CompileOptions::new()
            .topology(graph)
            .threads(Threads::Fixed(2))
            .compiler();
        let batch = compiler.compile_batch(&jobs).unwrap();
        for (job, result) in jobs.iter().zip(&batch.results) {
            let solo = compiler.compile(job).unwrap();
            assert_eq!(solo.circuit, result.circuit);
            assert_eq!(solo.swap_count, result.swap_count);
        }
    }

    #[test]
    fn undersized_topology_is_a_typed_error() {
        let synthesis = KToffoli::new(dim(3), 3).unwrap().synthesize().unwrap();
        let graph = CouplingGraph::linear(2).unwrap();
        let compiler = CompileOptions::new().topology(graph).compiler();
        assert!(matches!(
            compiler.compile(synthesis.circuit()),
            Err(qudit_core::QuditError::TopologyTooSmall { .. })
        ));
    }
}
