//! Property-based tests of the synthesis invariants: for random dimensions,
//! control counts, control levels and target operations, the synthesised
//! circuits implement their specification and respect the ancilla contracts.

use proptest::prelude::*;
use qudit_core::{Circuit, Dimension, QuditId, SingleQuditOp};
use qudit_synthesis::pk::pk_target_image;
use qudit_synthesis::{emit_multi_controlled, KToffoli, MultiControlledGate};

fn any_dimension() -> impl Strategy<Value = Dimension> {
    (3u32..=6).prop_map(|d| Dimension::new(d).unwrap())
}

fn index_to_digits(mut index: usize, dimension: Dimension, width: usize) -> Vec<u32> {
    let d = dimension.as_usize();
    let mut digits = vec![0u32; width];
    for slot in digits.iter_mut().rev() {
        *slot = (index % d) as u32;
        index /= d;
    }
    digits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The synthesised |0^k⟩-op is correct on random basis states for random
    /// classical target operations.
    #[test]
    fn multi_controlled_gate_respects_its_spec(
        dimension in any_dimension(),
        k in 1usize..=5,
        op_kind in 0u8..3,
        shift in 1u32..6,
        inputs in prop::collection::vec(0usize..10_000, 12),
    ) {
        let d = dimension.get();
        let op = match op_kind {
            0 => SingleQuditOp::Swap(0, 1 + (shift % (d - 1))),
            1 => SingleQuditOp::Add(1 + (shift % (d - 1))),
            _ => {
                if dimension.is_even() {
                    SingleQuditOp::ParityFlipEven
                } else {
                    SingleQuditOp::ParityFlipOdd
                }
            }
        };
        let synthesis = MultiControlledGate::new(dimension, k, op.clone()).unwrap().synthesize().unwrap();
        let circuit = synthesis.circuit();
        let width = synthesis.layout().width;
        let size = dimension.register_size(width);
        for seed in inputs {
            let state = index_to_digits(seed % size, dimension, width);
            let mut expected = state.clone();
            if state[..k].iter().all(|&x| x == 0) {
                expected[k] = op.apply_level(expected[k], dimension).unwrap();
            }
            prop_assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
        }
    }

    /// Arbitrary control levels are handled by conjugation.
    #[test]
    fn nonzero_control_levels_are_correct(
        dimension in any_dimension(),
        levels in prop::collection::vec(0u32..6, 1..4),
        inputs in prop::collection::vec(0usize..10_000, 10),
    ) {
        let d = dimension.get();
        let levels: Vec<u32> = levels.into_iter().map(|l| l % d).collect();
        let k = levels.len();
        let width = k + 1 + usize::from(dimension.is_even());
        let mut circuit = Circuit::new(dimension, width);
        let controls: Vec<(QuditId, u32)> =
            levels.iter().enumerate().map(|(i, &l)| (QuditId::new(i), l)).collect();
        let pool: Vec<QuditId> = if dimension.is_even() { vec![QuditId::new(k + 1)] } else { vec![] };
        emit_multi_controlled(&mut circuit, &controls, QuditId::new(k), &SingleQuditOp::Add(1), &pool)
            .unwrap();
        let size = dimension.register_size(width);
        for seed in inputs {
            let state = index_to_digits(seed % size, dimension, width);
            let mut expected = state.clone();
            if levels.iter().enumerate().all(|(i, &l)| state[i] == l) {
                expected[k] = (expected[k] + 1) % d;
            }
            prop_assert_eq!(circuit.apply_to_basis(&state).unwrap(), expected);
        }
    }

    /// Lowered circuits consist purely of G-gates and keep the gate count of
    /// the resource report.
    #[test]
    fn lowering_produces_g_gates_only(dimension in any_dimension(), k in 1usize..=5) {
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let g = synthesis.g_gate_circuit().unwrap();
        prop_assert!(g.gates().iter().all(|gate| gate.is_g_gate()));
        prop_assert_eq!(g.len(), synthesis.resources().g_gates);
    }

    /// The classical specification of P_k: the target is decremented exactly
    /// when the last non-zero input is absent or even.
    #[test]
    fn pk_spec_properties(
        dimension in (3u32..=7).prop_filter("odd", |d| d % 2 == 1).prop_map(|d| Dimension::new(d).unwrap()),
        inputs in prop::collection::vec(0u32..7, 1..6),
        target in 0u32..7,
    ) {
        let d = dimension.get();
        let inputs: Vec<u32> = inputs.into_iter().map(|x| x % d).collect();
        let target = target % d;
        let image = pk_target_image(&inputs, target, dimension);
        match inputs.iter().rev().find(|&&x| x != 0) {
            Some(&value) if value % 2 == 1 => prop_assert_eq!(image, target),
            _ => prop_assert_eq!(image, (target + d - 1) % d),
        }
        // P_k only ever changes the target by 0 or −1 (mod d).
        let diff = (target + d - image) % d;
        prop_assert!(diff == 0 || diff == 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache correctness for the macro-gate stage: cached (and parallel)
    /// elementary lowering of the synthesised macro circuits is
    /// gate-for-gate identical to the uncached path, across random
    /// dimensions and control counts (which vary the register width).
    #[test]
    fn cached_macro_lowering_matches_uncached(
        dimension in any_dimension(),
        k in 2usize..=6,
        threads in 1usize..=4,
    ) {
        use qudit_core::cache::{CacheCounters, LoweringCache};
        use qudit_core::pool::WorkStealingPool;
        use qudit_synthesis::lower::{
            lower_to_elementary, lower_to_elementary_cached, lower_to_elementary_parallel,
        };

        let circuit = KToffoli::new(dimension, k)
            .unwrap()
            .synthesize()
            .unwrap()
            .circuit()
            .clone();
        let reference = lower_to_elementary(&circuit).unwrap();

        let cache = LoweringCache::new();
        let mut counters = CacheCounters::default();
        let cached = lower_to_elementary_cached(&circuit, &cache, &mut counters).unwrap();
        prop_assert_eq!(&cached, &reference);
        prop_assert!(counters.total() > 0, "macro lowering made no cache lookups");
        prop_assert_eq!(counters.misses, cache.len() as u64);

        let pool = WorkStealingPool::with_threads(threads);
        let fresh = LoweringCache::new();
        let (parallel, parallel_counters) =
            lower_to_elementary_parallel(&circuit, Some(&fresh), &pool).unwrap();
        prop_assert_eq!(&parallel, &reference);
        prop_assert_eq!(parallel_counters, counters);

        let (uncached_parallel, _) = lower_to_elementary_parallel(&circuit, None, &pool).unwrap();
        prop_assert_eq!(&uncached_parallel, &reference);
    }
}

/// The constructions repeat the same conjugated gadgets many times per
/// sweep, so a realistically sized k-Toffoli must hit the cache.
#[test]
fn large_k_toffoli_macro_lowering_hits_the_cache() {
    use qudit_core::cache::{CacheCounters, LoweringCache};
    use qudit_synthesis::lower::{lower_to_elementary, lower_to_elementary_cached};

    for d in [3u32, 4] {
        let dimension = Dimension::new(d).unwrap();
        let circuit = KToffoli::new(dimension, 8)
            .unwrap()
            .synthesize()
            .unwrap()
            .circuit()
            .clone();
        let cache = LoweringCache::new();
        let mut counters = CacheCounters::default();
        let cached = lower_to_elementary_cached(&circuit, &cache, &mut counters).unwrap();
        assert_eq!(cached, lower_to_elementary(&circuit).unwrap());
        assert!(
            counters.hits > 0,
            "expected cache hits for d={d}, got {counters:?}"
        );
    }
}
