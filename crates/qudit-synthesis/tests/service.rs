//! End-to-end tests of the compile service: concurrent clients, admission
//! control, backpressure, bounded-cache consistency and snapshot
//! warm-start.

use qudit_synthesis::service::{
    CompileService, JobRequest, JobStatus, ServiceClient, ServiceConfig,
};

/// A program of `repeats` doubly-controlled swaps (the paper's 2-Toffoli
/// gadget shape — the deepest gate the pipeline lowers directly) over a
/// register of the given width.
fn mcs_source(dimension: u32, width: usize, levels: (u32, u32), repeats: usize) -> String {
    let mut source = format!("OPENQASM 3.0;\nqudit[{dimension}] q[{width}];\n");
    for r in 0..repeats {
        let a = r % width;
        let b = (r + 1) % width;
        let c = (r + 2) % width;
        source.push_str(&format!(
            "ctrl @ ctrl @ swap({}, {}) q[{a}], q[{b}], q[{c}];\n",
            levels.0, levels.1,
        ));
    }
    source
}

fn job(tenant: &str, id: usize, source: String) -> JobRequest {
    JobRequest {
        tenant: tenant.to_string(),
        id: format!("{tenant}-{id}"),
        source,
    }
}

#[test]
fn concurrent_tenants_each_get_exactly_one_reply_in_fifo_order() {
    let service = CompileService::start(
        ServiceConfig::new()
            .workers(2)
            .cache_capacity(4)
            .max_queue_depth(32),
    )
    .expect("service boots");
    let addr = service.local_addr();
    let clients = 4;
    let jobs_per_client = 8;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let tenant = format!("tenant-{c}");
                let mut client = ServiceClient::connect(addr).expect("connect");
                for j in 0..jobs_per_client {
                    if j % 4 == 3 {
                        // An unparsable qasm job: flows through the tenant
                        // queue like any other and must get an error reply.
                        client
                            .send(&job(&tenant, j, "OPENQASM 3.0;\nboop q[0];".into()))
                            .expect("send");
                    } else {
                        let source = mcs_source(3, 3 + (j % 2), (0, 1 + (j as u32 % 2)), 2);
                        client.send(&job(&tenant, j, source)).expect("send");
                    }
                }
                let mut replies = Vec::new();
                for _ in 0..jobs_per_client {
                    replies.push(client.recv().expect("one reply per job"));
                }
                // Exactly one reply per job id, in submission order (the
                // whole connection is one tenant, so FIFO is end-to-end).
                let ids: Vec<String> = replies.iter().map(|r| r.id.clone()).collect();
                let expected: Vec<String> = (0..jobs_per_client)
                    .map(|j| format!("{tenant}-{j}"))
                    .collect();
                assert_eq!(ids, expected, "per-tenant FIFO order");
                for (j, reply) in replies.iter().enumerate() {
                    assert_eq!(reply.tenant, tenant);
                    if j % 4 == 3 {
                        assert_eq!(reply.status, JobStatus::Error);
                        assert!(!reply.message.is_empty());
                    } else {
                        assert!(reply.is_ok(), "job {j}: {}", reply.message);
                        assert!(reply.gates > 0);
                        assert!(reply.depth > 0);
                        assert!(!reply.qasm.is_empty());
                    }
                }
            });
        }
    });
    let stats = service.shutdown();
    let total = (clients * jobs_per_client) as u64;
    assert_eq!(stats.accepted, total);
    assert_eq!(stats.completed + stats.compile_errors, total);
    assert_eq!(stats.compile_errors, (clients * jobs_per_client / 4) as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.protocol_errors, 0);
    // Bounded-cache consistency: misses count insertions exactly, so the
    // live entry count is misses minus evictions, within the bound.
    let cache = stats.cache;
    assert!(cache.hits + cache.misses > 0);
    assert_eq!(cache.misses - cache.evictions, cache.entries as u64);
    assert!(cache.entries <= 4);
}

#[test]
fn malformed_lines_get_error_replies_without_entering_the_queues() {
    let service = CompileService::start(ServiceConfig::new().workers(1)).expect("service boots");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connect");
    client.send_raw("this is not json").expect("send");
    let reply = client.recv().expect("reply");
    assert_eq!(reply.status, JobStatus::Error);
    client
        .send_raw("{\"tenant\":\"t\",\"id\":\"7\"}")
        .expect("send");
    let reply = client.recv().expect("reply");
    assert_eq!(reply.status, JobStatus::Error);
    assert_eq!(reply.id, "7", "identity fields are echoed when parsable");
    assert!(reply.message.contains("source"));
    let stats = service.shutdown();
    assert_eq!(stats.protocol_errors, 2);
    assert_eq!(stats.accepted, 0);
}

#[test]
fn admission_control_rejects_when_a_tenant_queue_is_full() {
    // One worker and a queue depth of one: occupy the worker with a heavy
    // job, fill the queue with the second, and every further burst job is
    // turned away with a typed reject.
    let service = CompileService::start(ServiceConfig::new().workers(1).max_queue_depth(1))
        .expect("service boots");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connect");
    let heavy = mcs_source(3, 8, (0, 2), 150);
    let burst = 6;
    for j in 0..burst {
        client.send(&job("burst", j, heavy.clone())).expect("send");
    }
    let mut ok = 0;
    let mut rejected = 0;
    for _ in 0..burst {
        let reply = client.recv().expect("one reply per job");
        match reply.status {
            JobStatus::Ok => ok += 1,
            JobStatus::Rejected => {
                rejected += 1;
                assert!(reply.message.contains("queue is full"));
            }
            JobStatus::Error => panic!("unexpected error: {}", reply.message),
        }
    }
    assert_eq!(ok + rejected, burst);
    assert!(rejected >= 1, "burst past the queue depth must reject");
    let stats = service.shutdown();
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(stats.completed, ok as u64);
}

#[test]
fn backpressure_blocks_the_reader_instead_of_growing_memory() {
    // max_pending(1): at most one job queued or in flight service-wide;
    // the reader stalls on further lines until the worker drains.  Every
    // job still completes, none are rejected.
    let service = CompileService::start(
        ServiceConfig::new()
            .workers(1)
            .max_pending(1)
            .max_queue_depth(8),
    )
    .expect("service boots");
    let mut client = ServiceClient::connect(service.local_addr()).expect("connect");
    let jobs = 5;
    for j in 0..jobs {
        client
            .send(&job("slow", j, mcs_source(3, 4, (0, 2), 3)))
            .expect("send");
    }
    for j in 0..jobs {
        let reply = client.recv().expect("reply");
        assert!(reply.is_ok(), "job {j}: {}", reply.message);
        assert_eq!(reply.id, format!("slow-{j}"));
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, jobs as u64);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn snapshot_warm_start_round_trips_to_pure_hits() {
    let sources: Vec<String> = (0..4)
        .map(|j| mcs_source(3, 3 + j % 2, (0, 1 + (j as u32 % 2)), 2))
        .collect();
    // First service: compile the set cold, then export the cache.
    let cold = CompileService::start(ServiceConfig::new().workers(1)).expect("service boots");
    let mut client = ServiceClient::connect(cold.local_addr()).expect("connect");
    for (j, source) in sources.iter().enumerate() {
        let reply = client
            .roundtrip(&job("warmup", j, source.clone()))
            .expect("roundtrip");
        assert!(reply.is_ok(), "{}", reply.message);
    }
    let snapshot = cold.cache_snapshot();
    let cold_stats = cold.shutdown();
    assert!(cold_stats.cache.misses > 0, "cold run populates the cache");

    // Second service: warm-started from the snapshot, the same jobs hit
    // the cache on every lookup — zero misses.
    let warm = CompileService::start(ServiceConfig::new().workers(1).warm_start(snapshot.clone()))
        .expect("warm service boots");
    let mut client = ServiceClient::connect(warm.local_addr()).expect("connect");
    for (j, source) in sources.iter().enumerate() {
        let reply = client
            .roundtrip(&job("warm", j, source.clone()))
            .expect("roundtrip");
        assert!(reply.is_ok(), "{}", reply.message);
    }
    let warm_stats = warm.shutdown();
    assert_eq!(
        warm_stats.cache.misses, 0,
        "a warm-started cache answers every lookup"
    );
    assert!(warm_stats.cache.hits > 0);
    assert_eq!(warm_stats.cache.entries as u64, cold_stats.cache.misses);

    // Corrupt snapshots fail the boot with a typed error.
    let corrupt =
        CompileService::start(ServiceConfig::new().warm_start("qudit-lowering-cache v999\n"));
    let error = corrupt.err().expect("corrupt snapshot must not boot");
    assert_eq!(error.kind(), std::io::ErrorKind::InvalidData);
    assert!(error.to_string().contains("snapshot"));
}
