//! Criterion bench: compiling random reversible functions (experiment E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::Dimension;
use qudit_reversible::{ReversibleFunction, ReversibleSynthesizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_reversible_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("reversible_compile");
    group.sample_size(10);
    for &(d, n) in &[(3u32, 2usize), (3, 3), (4, 2), (5, 2)] {
        let dimension = Dimension::new(d).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let function = ReversibleFunction::random(dimension, n, &mut rng);
        let synthesizer = ReversibleSynthesizer::new(dimension).unwrap();
        group.bench_with_input(BenchmarkId::new(format!("d{d}"), n), &n, |b, _| {
            b.iter(|| {
                synthesizer
                    .synthesize(&function)
                    .unwrap()
                    .resources()
                    .g_gates
            })
        });
    }
    group.finish();
}

fn bench_two_cycle_decomposition(c: &mut Criterion) {
    let dimension = Dimension::new(3).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let function = ReversibleFunction::random(dimension, 4, &mut rng);
    c.bench_function("two_cycle_decomposition_d3_n4", |b| {
        b.iter(|| function.two_cycles().len())
    });
}

criterion_group!(
    benches,
    bench_reversible_compile,
    bench_two_cycle_decomposition
);
criterion_main!(benches);
