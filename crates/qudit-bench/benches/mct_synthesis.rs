//! Criterion bench: synthesis time of the paper's k-Toffoli and the
//! clean-ancilla baseline, plus lowering to G-gates (experiments E1/E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_baselines::CleanAncillaMct;
use qudit_core::{Dimension, SingleQuditOp};
use qudit_synthesis::KToffoli;

fn bench_ours_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("k_toffoli_synthesis");
    group.sample_size(10);
    for &d in &[3u32, 4] {
        for &k in &[4usize, 8, 16, 32] {
            let dimension = Dimension::new(d).unwrap();
            group.bench_with_input(BenchmarkId::new(format!("ours_d{d}"), k), &k, |b, &k| {
                b.iter(|| {
                    KToffoli::new(dimension, k)
                        .unwrap()
                        .synthesize()
                        .unwrap()
                        .resources()
                        .g_gates
                })
            });
        }
    }
    group.finish();
}

fn bench_baseline_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("k_toffoli_baseline");
    for &k in &[4usize, 8, 16, 32] {
        let dimension = Dimension::new(3).unwrap();
        group.bench_with_input(BenchmarkId::new("clean_ancilla_d3", k), &k, |b, &k| {
            b.iter(|| {
                CleanAncillaMct::new(dimension, k, SingleQuditOp::Swap(0, 1))
                    .unwrap()
                    .synthesize()
                    .unwrap()
                    .circuit()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("g_gate_lowering");
    group.sample_size(10);
    let dimension = Dimension::new(3).unwrap();
    for &k in &[4usize, 8, 16] {
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        group.bench_with_input(BenchmarkId::new("lower_to_g_d3", k), &k, |b, _| {
            b.iter(|| synthesis.g_gate_circuit().unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ours_synthesis,
    bench_baseline_synthesis,
    bench_lowering
);
criterion_main!(benches);
