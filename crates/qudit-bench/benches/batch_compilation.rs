//! Criterion bench: batch compilation of the k-Toffoli sweep — sequential
//! vs. parallel (`Compiler::compile_batch`) vs. cached vs. parallel+cached.
//!
//! The workload is the E11-style sweep: the macro circuits of several
//! `(d, k)` k-Toffoli syntheses, compiled through the full standard flow
//! (lower-to-elementary → lower-to-g-gates → cancel-inverse-pairs) as
//! configured by `CompileOptions`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::pipeline::CacheMode;
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Dimension};
use qudit_synthesis::{CompileOptions, Compiler, KToffoli};

/// The benchmark's compilation jobs: one macro circuit per `(d, k)`.
fn jobs() -> Vec<Circuit> {
    let mut out = Vec::new();
    for &d in &[3u32, 4] {
        for &k in &[4usize, 8, 16] {
            let dimension = Dimension::new(d).unwrap();
            out.push(
                KToffoli::new(dimension, k)
                    .unwrap()
                    .synthesize()
                    .unwrap()
                    .circuit()
                    .clone(),
            );
        }
    }
    out
}

/// The standard flow without a cache (shape-agnostic so one compiler covers
/// the whole sweep).
fn uncached_compiler() -> Compiler {
    CompileOptions::new().compiler()
}

fn bench_sequential(c: &mut Criterion) {
    let jobs = jobs();
    let compiler = uncached_compiler();
    let mut group = c.benchmark_group("batch_compilation");
    group.bench_with_input(
        BenchmarkId::from_parameter("sequential"),
        &jobs,
        |b, jobs| {
            b.iter(|| {
                jobs.iter()
                    .map(|job| compiler.compile(job).unwrap().circuit.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let jobs = jobs();
    let compiler = uncached_compiler();
    let threads = WorkStealingPool::new().threads();
    let mut group = c.benchmark_group("batch_compilation");
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("parallel_t{threads}")),
        &jobs,
        |b, jobs| {
            b.iter(|| {
                compiler
                    .compile_batch(jobs)
                    .unwrap()
                    .circuits()
                    .map(Circuit::len)
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

fn bench_cached(c: &mut Criterion) {
    let jobs = jobs();
    let compiler = CompileOptions::new().cache(CacheMode::PerRun).compiler();
    let mut group = c.benchmark_group("batch_compilation");
    group.bench_with_input(BenchmarkId::from_parameter("cached"), &jobs, |b, jobs| {
        b.iter(|| {
            jobs.iter()
                .map(|job| compiler.compile(job).unwrap().circuit.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_parallel_cached(c: &mut Criterion) {
    let jobs = jobs();
    let threads = WorkStealingPool::new().threads();
    let mut group = c.benchmark_group("batch_compilation");
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("parallel_cached_t{threads}")),
        &jobs,
        |b, jobs| {
            b.iter(|| {
                // A shared cache reuses gadget expansions across the whole
                // sweep (same dimension ⇒ same canonical gadgets).
                let compiler = CompileOptions::new()
                    .cache(CacheMode::Shared(qudit_core::cache::LoweringCache::shared()))
                    .compiler();
                compiler
                    .compile_batch(jobs)
                    .unwrap()
                    .circuits()
                    .map(Circuit::len)
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential,
    bench_parallel,
    bench_cached,
    bench_parallel_cached
);
criterion_main!(benches);
