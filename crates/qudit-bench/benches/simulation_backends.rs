//! Criterion bench: the dense vs. sparse vs. auto simulation backends on
//! E10/E11-style workloads.
//!
//! The workloads are the compiled k-Toffoli circuits of the experiment
//! sweeps:
//!
//! * **pure classical** (E10-style) — the fully lowered and peephole-
//!   optimised G-gate circuits.  A basis input stays at a single nonzero
//!   amplitude, so the sparse engine applies every gate in `O(1)` while the
//!   dense engine walks all `d^width` amplitudes per gate; the gap widens
//!   exponentially with the register width.
//! * **classical prefix + non-classical suffix** (the `VerifyEquivalence`
//!   situation) — the same circuit with one trailing single-qudit unitary.
//!   The hybrid engine walks the prefix sparsely and densifies only for the
//!   final mix.
//!
//! All backends return bit-identical states; the bench asserts agreement on
//! the final norm so a silently wrong fast path cannot post a good number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::{Circuit, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::{simulate_basis, SimBackend, StateVector};
use qudit_synthesis::{CompileOptions, KToffoli};

/// The compiled (pure classical) G-gate circuit of a `(d=3, k)` k-Toffoli,
/// E10-style: lowered through the standard flow including cancellation.
fn classical_job(k: usize) -> Circuit {
    let dimension = Dimension::new(3).unwrap();
    let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
    let width = synthesis.layout().width;
    CompileOptions::new()
        .shape(dimension, width)
        .compiler()
        .compile(synthesis.circuit())
        .unwrap()
        .circuit
}

/// A qutrit Fourier matrix — the non-classical suffix of the mixed workload.
fn fourier3() -> SquareMatrix {
    let omega = Complex::from_phase(2.0 * std::f64::consts::PI / 3.0);
    let s = 1.0 / 3.0f64.sqrt();
    let mut entries = Vec::new();
    for r in 0..3u32 {
        for c in 0..3u32 {
            let mut w = Complex::ONE;
            for _ in 0..(r * c) {
                w *= omega;
            }
            entries.push(w.scale(s));
        }
    }
    SquareMatrix::from_rows(3, entries).unwrap()
}

fn bench_pure_classical(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_backends/classical");
    group.sample_size(10);
    for &k in &[4usize, 6, 8, 10] {
        let circuit = classical_job(k);
        let width = circuit.width();
        let zeros = vec![0u32; width];
        // Cross-check once: all backends agree exactly.
        let dense = simulate_basis(&circuit, &zeros, SimBackend::Dense).unwrap();
        let sparse = simulate_basis(&circuit, &zeros, SimBackend::Sparse).unwrap();
        assert_eq!(dense, sparse, "backends must agree (k = {k})");

        for backend in [SimBackend::Dense, SimBackend::Sparse, SimBackend::Auto] {
            group.bench_with_input(
                BenchmarkId::new(backend.label(), format!("k{k}_w{width}")),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        simulate_basis(circuit, &zeros, backend)
                            .unwrap()
                            .probability(&zeros)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_classical_prefix_with_unitary_suffix(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_backends/prefix");
    group.sample_size(10);
    for &k in &[4usize, 6, 8] {
        let mut circuit = classical_job(k);
        let width = circuit.width();
        circuit
            .push(Gate::single(
                SingleQuditOp::Unitary(fourier3()),
                QuditId::new(width - 1),
            ))
            .unwrap();
        let zeros = vec![0u32; width];
        let dense = simulate_basis(&circuit, &zeros, SimBackend::Dense).unwrap();
        let auto = simulate_basis(&circuit, &zeros, SimBackend::Auto).unwrap();
        assert_eq!(dense, auto, "hybrid must be bit-identical (k = {k})");

        for backend in [SimBackend::Dense, SimBackend::Auto] {
            group.bench_with_input(
                BenchmarkId::new(backend.label(), format!("k{k}_w{width}")),
                &circuit,
                |b, circuit| {
                    b.iter(|| simulate_basis(circuit, &zeros, backend).unwrap().norm_sqr())
                },
            );
        }
    }
    group.finish();
}

fn bench_dense_engine_reference(c: &mut Criterion) {
    // The raw dense engine without the backend dispatch, as a sanity
    // reference for the dispatch overhead.
    let mut group = c.benchmark_group("simulation_backends/dense_reference");
    group.sample_size(10);
    for &k in &[4usize, 6] {
        let circuit = classical_job(k);
        let dimension = circuit.dimension();
        let width = circuit.width();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_w{width}")),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut state = StateVector::new(dimension, width);
                    state.apply_circuit(circuit).unwrap();
                    state.norm_sqr()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pure_classical,
    bench_classical_prefix_with_unitary_suffix,
    bench_dense_engine_reference
);
criterion_main!(benches);
