//! Criterion bench: arbitrary unitary synthesis (experiment E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::Dimension;
use qudit_sim::random::random_unitary;
use qudit_unitary::{two_level_decompose, UnitarySynthesizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_two_level_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_level_decomposition");
    let mut rng = StdRng::seed_from_u64(5);
    for &size in &[3usize, 9, 27] {
        let unitary = random_unitary(size, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| two_level_decompose(&unitary).unwrap().len())
        });
    }
    group.finish();
}

fn bench_unitary_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("unitary_synthesis");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    for &(d, n) in &[(3u32, 1usize), (3, 2), (4, 2)] {
        let dimension = Dimension::new(d).unwrap();
        let unitary = random_unitary(dimension.register_size(n), &mut rng);
        let synthesizer = UnitarySynthesizer::new(dimension).unwrap();
        group.bench_with_input(BenchmarkId::new(format!("d{d}"), n), &n, |b, &n| {
            b.iter(|| {
                synthesizer
                    .synthesize(&unitary, n)
                    .unwrap()
                    .resources()
                    .two_qudit_gates
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_two_level_decomposition,
    bench_unitary_synthesis
);
criterion_main!(benches);
