//! Criterion bench: the compile service under concurrent load.
//!
//! Boots a real `CompileService` on loopback, drives it with concurrent
//! tenant connections submitting the paper's 2-Toffoli gadget workload,
//! and reports end-to-end roundtrip latency percentiles:
//!
//! * `service_throughput/roundtrip_p50` — median submit→reply latency;
//! * `service_throughput/roundtrip_p99` — tail latency under load;
//! * `service_throughput/mean_job` — wall clock per job at full
//!   concurrency (total run time / jobs), the throughput figure.
//!
//! Every reply is asserted `ok` before anything is timed, so a service
//! regression fails the smoke run rather than producing fast nonsense
//! numbers.  The percentiles are computed by the bench itself (the shim's
//! `Bencher::iter` cannot time concurrent clients) and recorded via
//! `criterion::record`, flowing into the same JSON summary and regression
//! gate as every timed mean.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use qudit_synthesis::service::{CompileService, JobRequest, ServiceClient, ServiceConfig};

const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 25;

/// The job mix: doubly-controlled swap gadgets over a few dimensions and
/// widths — enough key variety to exercise the shared cache without
/// saturating it.  Odd dimensions only: the even-dimension construction
/// borrows an ancilla, which a width-3 register cannot spare.
fn source(job: usize) -> String {
    let dimension = [3u32, 5, 7][job % 3];
    let width = 3 + (job % 2);
    let levels = (job as u32 % 2, 1 + (job as u32 % (dimension - 1)));
    format!(
        "OPENQASM 3.0;\nqudit[{dimension}] q[{width}];\n\
         ctrl @ ctrl @ swap({}, {}) q[0], q[1], q[2];\n",
        levels.0.min(levels.1 - 1),
        levels.1,
    )
}

fn percentile(sorted_nanos: &[f64], p: f64) -> f64 {
    let rank = ((sorted_nanos.len() as f64 - 1.0) * p).round() as usize;
    sorted_nanos[rank]
}

fn bench_service(_c: &mut Criterion) {
    let service = CompileService::start(
        ServiceConfig::new()
            .workers(2)
            .cache_capacity(256)
            .max_queue_depth(JOBS_PER_CLIENT)
            .max_pending(CLIENTS * JOBS_PER_CLIENT),
    )
    .expect("service boots");
    let addr = service.local_addr();

    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(JOBS_PER_CLIENT);
                    for j in 0..JOBS_PER_CLIENT {
                        let request = JobRequest {
                            tenant: format!("tenant-{c}"),
                            id: format!("{c}-{j}"),
                            source: source(c + j * CLIENTS),
                        };
                        let sent = Instant::now();
                        let reply = client.roundtrip(&request).expect("roundtrip");
                        assert!(reply.is_ok(), "job {c}-{j}: {}", reply.message);
                        latencies.push(sent.elapsed().as_nanos() as f64);
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    let stats = service.shutdown();
    let jobs = (CLIENTS * JOBS_PER_CLIENT) as u64;
    assert_eq!(stats.completed, jobs, "every job must compile");
    assert_eq!(
        stats.rejected + stats.protocol_errors + stats.compile_errors,
        0
    );
    println!(
        "bench: service_throughput: {jobs} jobs, cache {} hits / {} misses / {} entries",
        stats.cache.hits, stats.cache.misses, stats.cache.entries,
    );

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    criterion::record(
        "service_throughput/roundtrip_p50",
        percentile(&latencies, 0.50),
    );
    criterion::record(
        "service_throughput/roundtrip_p99",
        percentile(&latencies, 0.99),
    );
    criterion::record(
        "service_throughput/mean_job",
        elapsed.as_nanos() as f64 / jobs as f64,
    );
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
