//! Criterion bench: the connectivity router on the stock topologies.
//!
//! Routes a deterministic long-range classical workload (strided
//! value-controlled shifts, so most gates start uncoupled) onto a linear
//! chain, a 2-row grid and a heavy-hex lattice at widths 6–12, timing the
//! full pipeline of greedy placement, lookahead SWAP-ladder insertion and
//! the inverse-permutation epilogue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::route::{route_circuit, NoiseAwareCost, UniformCost};
use qudit_core::topology::CouplingGraph;
use qudit_core::{Circuit, Dimension, Gate, QuditId};

/// A width-`w` classical circuit whose two-qudit gates stride across the
/// register — the adversarial case for nearest-neighbour topologies.
fn strided_workload(width: usize) -> Circuit {
    let dimension = Dimension::new(3).unwrap();
    let mut circuit = Circuit::new(dimension, width);
    for stride in 1..=3usize {
        for wire in 0..width {
            let partner = (wire + stride) % width;
            if partner == wire {
                continue;
            }
            circuit
                .push(Gate::add_from(
                    QuditId::new(wire),
                    stride % 2 == 0,
                    QuditId::new(partner),
                    vec![],
                ))
                .unwrap();
        }
    }
    circuit
}

/// The three stock topologies of the sweep, each with `sites >= width`.
fn topologies(width: usize) -> Vec<(&'static str, CouplingGraph)> {
    vec![
        ("linear", CouplingGraph::linear(width).unwrap()),
        ("grid", CouplingGraph::grid(2, width.div_ceil(2)).unwrap()),
        (
            "heavy_hex",
            CouplingGraph::heavy_hex(2, width.div_ceil(2).max(3)).unwrap(),
        ),
    ]
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for width in [6usize, 8, 10, 12] {
        let circuit = strided_workload(width);
        for (label, graph) in topologies(width) {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{label}_w{width}")),
                &circuit,
                |b, circuit| {
                    b.iter(|| {
                        route_circuit(circuit, &graph, &UniformCost)
                            .unwrap()
                            .with_epilogue(&graph)
                            .unwrap()
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_route_noise_aware(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let cost = NoiseAwareCost::default();
    for width in [6usize, 12] {
        let circuit = strided_workload(width);
        let graph = CouplingGraph::linear(width).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("noise_aware_linear_w{width}")),
            &circuit,
            |b, circuit| b.iter(|| route_circuit(circuit, &graph, &cost).unwrap().swap_count),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_route, bench_route_noise_aware);
criterion_main!(benches);
