//! Criterion bench: the text-IR front end (print, parse, compile-from-source).
//!
//! Three legs over a parsed corpus of printed random dialect circuits:
//!
//! * `print` — `Circuit` → canonical text;
//! * `parse` — text → `Circuit` (lexer + parser + semantic lowering);
//! * `compile_source` — text → the full `O1` facade flow on a classical
//!   workload, i.e. the end-to-end "job file in, verified circuit out" path.
//!
//! Before any timing, the bench *asserts* the exact round trip on every
//! corpus member, so a broken printer/parser pair fails the smoke run
//! outright rather than producing fast nonsense numbers.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::qasm::{parse_source, print_circuit};
use qudit_core::{Circuit, Dimension};
use qudit_sim::random::{random_classical_dialect_circuit, random_dialect_circuit};
use qudit_synthesis::{CompileOptions, Compiler, OptLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The timed corpus: printed random circuits over the full repertoire
/// (matrix-heavy: unitary literals dominate the byte count) plus a
/// classical-only corpus that can ride the whole compile pipeline.
///
/// Some random classical circuits legitimately fail to compile (the
/// paper's multi-control synthesis needs d ≥ 4 at d = 2, and even
/// dimensions need a free borrowed-ancilla wire), so the classical corpus
/// walks a deterministic seed sequence and keeps the first compilable
/// draw per dimension.
fn corpus() -> (Vec<String>, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(0xDAC23);
    let mut full = Vec::new();
    for d in [2u32, 3, 5] {
        let dimension = Dimension::new(d).unwrap();
        full.push(print_circuit(&random_dialect_circuit(
            dimension, 4, 24, &mut rng,
        )));
    }
    let compiler: Compiler = CompileOptions::new().opt_level(OptLevel::O1).compiler();
    let mut classical = Vec::new();
    for d in [3u32, 4, 5] {
        let dimension = Dimension::new(d).unwrap();
        let source = (0u64..)
            .find_map(|offset| {
                let mut rng = StdRng::seed_from_u64(0xDAC23 + offset);
                let circuit = random_classical_dialect_circuit(dimension, 5, 16, &mut rng);
                let printed = print_circuit(&circuit);
                compiler.compile_source(&printed).ok().map(|_| printed)
            })
            .expect("some classical draw compiles");
        classical.push(source);
    }
    (full, classical)
}

fn assert_round_trips(sources: &[String]) {
    for source in sources {
        let circuit: Circuit = parse_source(source).expect("corpus member must parse");
        assert_eq!(
            print_circuit(&circuit),
            *source,
            "corpus member does not round trip"
        );
    }
}

fn bench_frontend(c: &mut Criterion) {
    let (full, classical) = corpus();
    assert_round_trips(&full);
    assert_round_trips(&classical);
    let circuits: Vec<Circuit> = full.iter().map(|s| parse_source(s).unwrap()).collect();
    let total_bytes: usize = full.iter().map(String::len).sum();

    let mut group = c.benchmark_group("qasm_frontend");
    group.bench_with_input(
        BenchmarkId::from_parameter("print"),
        &circuits,
        |b, circuits| {
            b.iter(|| {
                circuits
                    .iter()
                    .map(|c| black_box(print_circuit(c)).len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("parse"), &full, |b, full| {
        b.iter(|| {
            full.iter()
                .map(|s| black_box(parse_source(s).unwrap()).len())
                .sum::<usize>()
        })
    });
    println!("bench: qasm_frontend/parse: corpus of {total_bytes} source bytes");

    let compiler: Compiler = CompileOptions::new().opt_level(OptLevel::O1).compiler();
    group.bench_with_input(
        BenchmarkId::from_parameter("compile_source"),
        &classical,
        |b, classical| {
            b.iter(|| {
                classical
                    .iter()
                    .map(|s| compiler.compile_source(s).unwrap().circuit.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
