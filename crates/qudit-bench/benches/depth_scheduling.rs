//! Criterion bench: commutation-aware depth scheduling on the lowered
//! E10-style k-Toffoli sweep.
//!
//! Three timings per workload: building the dependency DAG sequentially,
//! building it gate-parallel on the work-stealing pool, and the full
//! `ScheduleDepth` pass (DAG + first-fit ASAP placement).  The workload is
//! the optimised G-gate circuits of the standard flow — exactly what the
//! scheduled pipeline hands the scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::commute::{schedule_depth, DependencyDag};
use qudit_core::depth::circuit_depth;
use qudit_core::pipeline::{Pass, ScheduleDepth};
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Dimension};
use qudit_synthesis::{CompileOptions, KToffoli};

/// The scheduler's inputs: the optimised (cancelled, unscheduled) G-gate
/// circuits of an E10-style sweep.
fn lowered_jobs() -> Vec<(String, Circuit)> {
    let compiler = CompileOptions::new().compiler();
    let mut out = Vec::new();
    for &d in &[3u32, 4] {
        for &k in &[4usize, 8] {
            let dimension = Dimension::new(d).unwrap();
            let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
            let circuit = compiler.compile(synthesis.circuit()).unwrap().circuit;
            out.push((format!("d{d}_k{k}"), circuit));
        }
    }
    out
}

fn bench_dag_sequential(c: &mut Criterion) {
    let jobs = lowered_jobs();
    let mut group = c.benchmark_group("depth_scheduling");
    for (label, circuit) in &jobs {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("dag_sequential_{label}")),
            circuit,
            |b, circuit| b.iter(|| DependencyDag::build(circuit).edge_count()),
        );
    }
    group.finish();
}

fn bench_dag_parallel(c: &mut Criterion) {
    let jobs = lowered_jobs();
    let pool = WorkStealingPool::new();
    let mut group = c.benchmark_group("depth_scheduling");
    for (label, circuit) in &jobs {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("dag_parallel_t{}_{label}", pool.threads())),
            circuit,
            |b, circuit| b.iter(|| DependencyDag::build_on(circuit, &pool).edge_count()),
        );
    }
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let jobs = lowered_jobs();
    let mut group = c.benchmark_group("depth_scheduling");
    for (label, circuit) in &jobs {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("schedule_{label}")),
            circuit,
            |b, circuit| b.iter(|| circuit_depth(&schedule_depth(circuit))),
        );
    }
    group.finish();
}

fn bench_pass(c: &mut Criterion) {
    let jobs = lowered_jobs();
    let mut group = c.benchmark_group("depth_scheduling");
    for (label, circuit) in &jobs {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pass_{label}")),
            circuit,
            |b, circuit| b.iter(|| ScheduleDepth.run(circuit.clone()).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dag_sequential,
    bench_dag_parallel,
    bench_schedule,
    bench_pass
);
criterion_main!(benches);
