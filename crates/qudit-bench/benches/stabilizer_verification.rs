//! Criterion bench: stabilizer-tableau equivalence checking vs the dense
//! unitary comparison.
//!
//! Two legs:
//!
//! * **overlapping widths** — random all-Clifford qutrit circuits at widths
//!   both strategies can handle.  The dense leg builds and compares the full
//!   `d^width` unitaries; the tableau leg conjugates `2·width` generator
//!   rows per gate.  Before timing, the bench *asserts* both strategies
//!   return the same verdict, so a wrong tableau fast path fails the smoke
//!   run outright.
//! * **width 24 (tableau only)** — `3^24 ≈ 2.8·10¹¹` basis states, far
//!   beyond any state-vector strategy; this is the workload the stabilizer
//!   backend exists for.  Timed on 1 worker and on a 4-thread pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Dimension};
use qudit_sim::equivalence::circuits_equal_up_to_phase_with;
use qudit_sim::random::random_clifford_circuit;
use qudit_sim::stabilizer::clifford_circuits_equal_on;
use qudit_sim::{clifford_circuits_equal, SimBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic random all-Clifford qutrit circuit.
fn clifford_job(width: usize, gates: usize, seed: u64) -> Circuit {
    let dimension = Dimension::new(3).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    random_clifford_circuit(dimension, width, gates, &mut rng)
}

fn bench_overlapping_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer_verification/equivalence");
    group.sample_size(10);
    for &width in &[4usize, 6] {
        let a = clifford_job(width, 40, width as u64);
        let b = a.clone();
        // Cross-check once: the tableau verdict must match the dense
        // unitary comparison on every width both strategies can reach.
        let dense_verdict = circuits_equal_up_to_phase_with(&a, &b, SimBackend::Dense).unwrap();
        let tableau_verdict = clifford_circuits_equal(&a, &b).unwrap();
        assert_eq!(
            dense_verdict, tableau_verdict,
            "strategies must agree (width = {width})"
        );
        assert!(tableau_verdict, "a circuit equals its clone");

        group.bench_with_input(
            BenchmarkId::new("dense", format!("w{width}")),
            &(&a, &b),
            |bench, (a, b)| {
                bench.iter(|| circuits_equal_up_to_phase_with(a, b, SimBackend::Dense).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tableau", format!("w{width}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| clifford_circuits_equal(a, b).unwrap()),
        );
    }
    group.finish();
}

fn bench_tableau_only_width_24(c: &mut Criterion) {
    let mut group = c.benchmark_group("stabilizer_verification/wide");
    group.sample_size(10);
    let width = 24;
    let a = clifford_job(width, 120, 24);
    let b = a.clone();
    assert!(
        clifford_circuits_equal(&a, &b).unwrap(),
        "a circuit equals its clone"
    );

    group.bench_with_input(
        BenchmarkId::new("tableau", format!("w{width}")),
        &(&a, &b),
        |bench, (a, b)| bench.iter(|| clifford_circuits_equal(a, b).unwrap()),
    );
    let pool = WorkStealingPool::with_threads(4);
    group.bench_with_input(
        BenchmarkId::new("tableau_pool4", format!("w{width}")),
        &(&a, &b),
        |bench, (a, b)| bench.iter(|| clifford_circuits_equal_on(a, b, Some(&pool)).unwrap()),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_overlapping_widths,
    bench_tableau_only_width_24
);
criterion_main!(benches);
