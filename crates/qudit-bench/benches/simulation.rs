//! Criterion bench: simulation throughput of synthesised circuits
//! (permutation simulation and state-vector simulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::Dimension;
use qudit_sim::{PermutationSimulator, StateVector};
use qudit_synthesis::KToffoli;

fn bench_permutation_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation_simulation");
    group.sample_size(20);
    let dimension = Dimension::new(3).unwrap();
    for &k in &[4usize, 8] {
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let circuit = synthesis.g_gate_circuit().unwrap();
        group.bench_with_input(BenchmarkId::new("g_circuit_single_input", k), &k, |b, _| {
            b.iter(|| {
                let mut sim = PermutationSimulator::new(dimension, circuit.width());
                sim.run(&circuit).unwrap();
                sim.state()[k]
            })
        });
    }
    group.finish();
}

fn bench_statevector_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_simulation");
    let dimension = Dimension::new(3).unwrap();
    for &k in &[3usize, 5] {
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let circuit = synthesis.circuit().clone();
        group.bench_with_input(BenchmarkId::new("macro_circuit", k), &k, |b, _| {
            b.iter(|| {
                let mut state = StateVector::new(dimension, circuit.width());
                state.apply_circuit(&circuit).unwrap();
                state.norm_sqr()
            })
        });
    }
    group.finish();
}

fn bench_circuit_unitary(c: &mut Criterion) {
    // Dense workload: the full-unitary extraction used by the equivalence
    // checkers applies the circuit to every basis state.
    let mut group = c.benchmark_group("circuit_unitary");
    group.sample_size(10);
    let dimension = Dimension::new(3).unwrap();
    for &k in &[2usize, 3] {
        let synthesis = KToffoli::new(dimension, k).unwrap().synthesize().unwrap();
        let circuit = synthesis.g_gate_circuit().unwrap();
        group.bench_with_input(BenchmarkId::new("g_circuit", k), &k, |b, _| {
            b.iter(|| qudit_sim::circuit_unitary(&circuit).unwrap().size())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_permutation_simulation,
    bench_statevector_simulation,
    bench_circuit_unitary
);
criterion_main!(benches);
