//! Criterion bench: overhead of the `Compiler` facade over a raw
//! `PassManager::run` of the identical pipeline.
//!
//! The facade adds one circuit clone (`compile` borrows its input where the
//! raw manager consumes it — the raw loop clones too, for parity) and the
//! `CompileResult` assembly (which reuses the last pass's depth profile
//! rather than rescanning) on top of the pass manager; everything else is
//! shared.  The `overhead` check pins
//! the facade at ≤ 1% over raw — plus a fixed 200 µs timer-noise epsilon
//! (~1.5% of the ~13 ms workload), the price of keeping a wall-clock
//! ratio assertion stable on shared CI runners — on the minimum-of-rounds
//! timing, so the convenience layer can never silently grow a cost.

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::pipeline::PassManager;
use qudit_core::{Circuit, Dimension};
use qudit_synthesis::{CompileOptions, Compiler, KToffoli};

/// The workload: the macro circuit of a mid-size k-Toffoli (d = 3, k = 8).
fn workload() -> (Dimension, usize, Circuit) {
    let dimension = Dimension::new(3).unwrap();
    let synthesis = KToffoli::new(dimension, 8).unwrap().synthesize().unwrap();
    (
        dimension,
        synthesis.layout().width,
        synthesis.circuit().clone(),
    )
}

fn raw_manager(dimension: Dimension, width: usize) -> PassManager {
    CompileOptions::new()
        .shape(dimension, width)
        .build_manager()
}

fn facade(dimension: Dimension, width: usize) -> Compiler {
    CompileOptions::new().shape(dimension, width).compiler()
}

/// Minimum wall times of `rounds` interleaved runs of `a` and `b` (the
/// minimum is robust to scheduler noise, and interleaving cancels slow
/// drift — thermal, allocator state — that a loop-then-loop comparison
/// would attribute to one side).
fn min_times(rounds: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (Duration, Duration) {
    let mut best_a = Duration::MAX;
    let mut best_b = Duration::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed());
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed());
    }
    (best_a, best_b)
}

fn bench_raw_vs_facade(c: &mut Criterion) {
    let (dimension, width, circuit) = workload();
    let manager = raw_manager(dimension, width);
    let compiler = facade(dimension, width);

    let mut group = c.benchmark_group("compiler_facade");
    group.bench_with_input(
        BenchmarkId::from_parameter("raw_passmanager"),
        &circuit,
        |b, circuit| b.iter(|| manager.run(circuit.clone()).unwrap().circuit.len()),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("facade"),
        &circuit,
        |b, circuit| b.iter(|| compiler.compile(circuit).unwrap().circuit.len()),
    );
    group.finish();
}

fn bench_overhead_pin(_c: &mut Criterion) {
    let (dimension, width, circuit) = workload();
    let manager = raw_manager(dimension, width);
    let compiler = facade(dimension, width);

    // Interleaved minimum-of-rounds comparison, retried a few times so a
    // one-off scheduling hiccup cannot fail the pin; a *persistent* facade
    // overhead above 1% (plus a small absolute epsilon for timer noise)
    // does.
    const ROUNDS: usize = 9;
    const RETRIES: usize = 4;
    const EPSILON: Duration = Duration::from_micros(200);
    let mut overhead = f64::INFINITY;
    let mut within_pin = false;
    for _ in 0..RETRIES {
        let (raw, via_facade) = min_times(
            ROUNDS,
            || {
                black_box(manager.run(circuit.clone()).unwrap().circuit.len());
            },
            || {
                black_box(compiler.compile(&circuit).unwrap().circuit.len());
            },
        );
        overhead = via_facade.as_secs_f64() / raw.as_secs_f64() - 1.0;
        println!(
            "bench: compiler_facade/overhead: raw {:.3} ms, facade {:.3} ms ({:+.2}%)",
            raw.as_secs_f64() * 1e3,
            via_facade.as_secs_f64() * 1e3,
            overhead * 100.0
        );
        if via_facade <= raw.mul_f64(1.01) + EPSILON {
            within_pin = true;
            break;
        }
    }
    assert!(
        within_pin,
        "facade overhead persistently above 1%: {:.2}%",
        overhead * 100.0
    );
}

criterion_group!(benches, bench_raw_vs_facade, bench_overhead_pin);
criterion_main!(benches);
