//! Criterion bench: the fused dense engine vs. the scalar reference walk.
//!
//! Workload: dense-path circuits at widths 8–12 (d = 3) mixing fusable
//! same-target classical runs with single-qudit unitaries — the shape the
//! panel kernels target.  Three legs per width:
//!
//! * **scalar** — `StateVector::apply_circuit`, the gate-by-gate reference
//!   walk (one full pass over the register per gate);
//! * **fused** — `FusedProgram` applied sequentially: one pass per fused
//!   gate group over stride-blocked split-complex panels;
//! * **fused_pool** — the same program with independent panel blocks fanned
//!   over the environment-sized `WorkStealingPool` (`QUDIT_THREADS` selects
//!   the worker count, so the CI thread matrix measures both legs).
//!
//! The engines are exact (`==`-equal) by contract; the bench asserts
//! agreement before timing so a wrong fast path cannot post a good number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::pool::WorkStealingPool;
use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
use qudit_sim::{FusedProgram, StateVector};

/// A qutrit Fourier matrix — the non-classical ingredient of the workload.
fn fourier3() -> SquareMatrix {
    let omega = Complex::from_phase(2.0 * std::f64::consts::PI / 3.0);
    let s = 1.0 / 3.0f64.sqrt();
    let mut entries = Vec::new();
    for r in 0..3u32 {
        for c in 0..3u32 {
            let mut w = Complex::ONE;
            for _ in 0..(r * c) {
                w *= omega;
            }
            entries.push(w.scale(s));
        }
    }
    SquareMatrix::from_rows(3, entries).unwrap()
}

/// A dense-path workload over `width` qutrits: per wire a fusable run of
/// classical gates, plus unitaries and controlled shifts that keep the
/// amplitudes genuinely complex.
fn dense_job(width: usize) -> Circuit {
    let dimension = Dimension::new(3).unwrap();
    let mut circuit = Circuit::new(dimension, width);
    for wire in 0..width {
        let target = QuditId::new(wire);
        // A run of three same-target classical gates: fuses 3 → 1 traversal.
        circuit
            .push(Gate::single(SingleQuditOp::Add(1), target))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Swap(0, 2), target))
            .unwrap();
        circuit
            .push(Gate::single(SingleQuditOp::Add(2), target))
            .unwrap();
        // A unitary closes the run and spreads amplitude.
        if wire % 2 == 0 {
            circuit
                .push(Gate::single(SingleQuditOp::Unitary(fourier3()), target))
                .unwrap();
        }
        // A controlled shift exercises the control-predicate panels.
        if wire + 1 < width {
            circuit
                .push(Gate::controlled(
                    SingleQuditOp::Add(1),
                    QuditId::new(wire + 1),
                    vec![Control::level(target, 1)],
                ))
                .unwrap();
        }
    }
    circuit
}

fn bench_dense_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_kernels/apply");
    group.sample_size(10);
    let pool = WorkStealingPool::default();
    for &width in &[8usize, 10, 12] {
        let dimension = Dimension::new(3).unwrap();
        let circuit = dense_job(width);
        let program = FusedProgram::compile(&circuit, width).unwrap();
        assert!(
            program.fused_gates() > 0,
            "workload must exercise fusion (w = {width})"
        );

        // Cross-check once: scalar, fused and pooled-fused agree exactly.
        let mut reference = StateVector::new(dimension, width);
        reference.apply_circuit(&circuit).unwrap();
        let mut fused = StateVector::new(dimension, width);
        fused.apply_fused_on(&program, None).unwrap();
        assert_eq!(reference.amplitudes(), fused.amplitudes());
        let mut pooled = StateVector::new(dimension, width);
        pooled.apply_fused_on(&program, Some(&pool)).unwrap();
        assert_eq!(reference.amplitudes(), pooled.amplitudes());

        let label = format!("w{width}_g{}", circuit.len());
        group.bench_with_input(
            BenchmarkId::new("scalar", &label),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut state = StateVector::new(dimension, width);
                    state.apply_circuit(circuit).unwrap();
                    state.norm_sqr()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("fused", &label), &program, |b, program| {
            b.iter(|| {
                let mut state = StateVector::new(dimension, width);
                state.apply_fused_on(program, None).unwrap();
                state.norm_sqr()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("fused_pool", &label),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut state = StateVector::new(dimension, width);
                    state.apply_fused_on(program, Some(&pool)).unwrap();
                    state.norm_sqr()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dense_kernels);
criterion_main!(benches);
