//! Bench regression gate: compares a freshly produced `QUDIT_BENCH_JSON`
//! summary against the checked-in `BENCH_baseline.json`.
//!
//! The summaries are the vendored criterion shim's format —
//! `{"results": [{"name": …, "mean_ns": …}, …]}` — scanned with a
//! hand-rolled reader (the build is offline; no serde).  A benchmark
//! regresses when
//!
//! ```text
//! current > tolerance × max(baseline, floor)
//! ```
//!
//! with a default tolerance of 3× and a 2 ms floor: CI runners are
//! shared and noisy, quick-mode iteration counts are tiny, and
//! millisecond-scale entries jitter by integer factors under co-tenant
//! load — the gate exists to catch order-of-magnitude cliffs, not
//! percent-level drift.  A baseline
//! entry missing from the current run also fails (a silently deleted bench
//! is a silently dropped guarantee); *new* entries in the current run are
//! reported but pass, and become gated once the baseline is refreshed.
//!
//! Usage:
//!
//! ```text
//! compare_bench <baseline.json> <current.json> [--tolerance 3.0]
//! ```

use std::process::ExitCode;

const FLOOR_NS: f64 = 2_000_000.0;
const DEFAULT_TOLERANCE: f64 = 3.0;

/// Extracts `(name, mean_ns)` pairs from a summary produced by the vendored
/// criterion shim.
///
/// The scan is deliberately narrow: it looks for `"name"` keys followed by a
/// string and a `"mean_ns"` key followed by a number, which is exactly and
/// only what the shim writes.
fn scan_results(json: &str) -> Vec<(String, f64)> {
    let mut results = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\"") {
        rest = &rest[at + "\"name\"".len()..];
        let Some(open) = rest.find('"') else { break };
        let Some(close) = rest[open + 1..].find('"') else {
            break;
        };
        let name = rest[open + 1..open + 1 + close].to_string();
        rest = &rest[open + 1 + close..];
        let Some(at) = rest.find("\"mean_ns\"") else {
            break;
        };
        rest = &rest[at + "\"mean_ns\"".len()..];
        let Some(colon) = rest.find(':') else { break };
        let tail = &rest[colon + 1..];
        let number: String = tail
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        match number.parse::<f64>() {
            Ok(mean_ns) => results.push((name, mean_ns)),
            Err(_) => break,
        }
        rest = tail;
    }
    results
}

fn read_summary(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("compare_bench: cannot read {path}: {e}"));
    let results = scan_results(&text);
    assert!(
        !results.is_empty(),
        "compare_bench: no bench results found in {path}"
    );
    results
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, current_path] = positional[..] else {
        eprintln!("usage: compare_bench <baseline.json> <current.json> [--tolerance 3.0]");
        return ExitCode::FAILURE;
    };
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad --tolerance: {v}")))
        .unwrap_or(DEFAULT_TOLERANCE);

    let baseline = read_summary(baseline_path);
    let current = read_summary(current_path);

    let mut failures = 0usize;
    for (name, base_ns) in &baseline {
        let Some((_, cur_ns)) = current.iter().find(|(n, _)| n == name) else {
            eprintln!("FAIL {name}: present in baseline but missing from the current run");
            failures += 1;
            continue;
        };
        let budget = tolerance * base_ns.max(FLOOR_NS);
        if *cur_ns > budget {
            eprintln!(
                "FAIL {name}: {:.2} ms exceeds {tolerance}x budget {:.2} ms (baseline {:.2} ms)",
                cur_ns / 1e6,
                budget / 1e6,
                base_ns / 1e6,
            );
            failures += 1;
        } else {
            println!(
                "ok   {name}: {:.2} ms (baseline {:.2} ms, budget {:.2} ms)",
                cur_ns / 1e6,
                base_ns / 1e6,
                budget / 1e6,
            );
        }
    }
    for (name, cur_ns) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!(
                "new  {name}: {:.2} ms (not in baseline; refresh BENCH_baseline.json to gate it)",
                cur_ns / 1e6
            );
        }
    }

    if failures > 0 {
        eprintln!(
            "compare_bench: {failures} regression(s) against {baseline_path} (tolerance {tolerance}x, floor {:.1} ms)",
            FLOOR_NS / 1e6
        );
        return ExitCode::FAILURE;
    }
    println!(
        "compare_bench: all {} baseline entries within {tolerance}x",
        baseline.len()
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::scan_results;

    #[test]
    fn scans_the_shim_format() {
        let json = "{\n  \"results\": [\n    {\"name\": \"a/b\", \"mean_ns\": 1234.5},\n    {\"name\": \"c\", \"mean_ns\": 6e7}\n  ]\n}\n";
        assert_eq!(
            scan_results(json),
            vec![("a/b".to_string(), 1234.5), ("c".to_string(), 6e7)]
        );
    }

    #[test]
    fn empty_input_scans_to_nothing() {
        assert!(scan_results("{}").is_empty());
        assert!(scan_results("").is_empty());
    }
}
