//! Deterministic fuzz smoke for the text-IR front end.
//!
//! No external fuzzing engine (the build is offline): this is a seeded
//! byte-mangler and grammar mutator over a pool of seed programs — printed
//! random dialect circuits plus the checked-in `corpus/valid` files — that
//! hammers `parse_source` with mutated sources and fails loudly on the two
//! things a parser must never do:
//!
//! 1. panic (every lexical/syntactic/semantic defect must surface as a
//!    typed [`ParseError`](qudit_core::qasm::ParseError));
//! 2. accept a program whose `print → parse` round trip diverges.
//!
//! Usage:
//!
//! ```text
//! fuzz_qasm [--iterations N] [--seed S]
//! ```
//!
//! Defaults: 50 000 iterations, seed `0xDAC23`.  The run is a pure
//! function of `(iterations, seed)`, so CI failures replay locally with the
//! printed reproducer arguments.

use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;

use qudit_core::qasm::{parse_source, print_circuit};
use qudit_core::Dimension;
use qudit_sim::random::random_dialect_circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DEFAULT_ITERATIONS: u64 = 50_000;
const DEFAULT_SEED: u64 = 0xDAC23;

/// Number-ish tokens spliced over numeric literals to probe overflow and
/// precision edges in the lexer/lowering.
const EXTREME_NUMBERS: &[&str] = &[
    "0",
    "-0",
    "1e309",
    "-1e309",
    "1e-400",
    "4294967295",
    "4294967296",
    "18446744073709551616",
    "0.5",
    "1.7976931348623157e308",
    "NaN",
    "99999999999999999999999999999999",
];

fn seed_pool(rng: &mut StdRng) -> Vec<String> {
    let mut pool = Vec::new();
    // Printed random circuits over the full repertoire and several widths.
    for (d, width, gates) in [(2u32, 3usize, 8usize), (3, 2, 6), (4, 4, 10), (5, 3, 12)] {
        let dimension = Dimension::new(d).unwrap();
        let circuit = random_dialect_circuit(dimension, width, gates, rng);
        pool.push(print_circuit(&circuit));
    }
    // The checked-in conformance corpus, when run from inside the repo.
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/valid");
    if let Ok(entries) = std::fs::read_dir(&corpus) {
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
            .collect();
        paths.sort();
        for path in paths {
            if let Ok(text) = std::fs::read_to_string(&path) {
                pool.push(text);
            }
        }
    }
    pool
}

/// Applies one random mutation to `bytes`.
fn mutate(bytes: &mut Vec<u8>, pool: &[String], rng: &mut StdRng) {
    match rng.gen_range(0..8u32) {
        // Flip one byte to an arbitrary value.
        0 if !bytes.is_empty() => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen_range(0..=255u32) as u8;
        }
        // Insert a random byte.
        1 => {
            let at = rng.gen_range(0..=bytes.len());
            bytes.insert(at, rng.gen_range(0..=255u32) as u8);
        }
        // Delete one byte.
        2 if !bytes.is_empty() => {
            let at = rng.gen_range(0..bytes.len());
            bytes.remove(at);
        }
        // Truncate.
        3 if !bytes.is_empty() => {
            let at = rng.gen_range(0..bytes.len());
            bytes.truncate(at);
        }
        // Duplicate a random slice in place.
        4 if !bytes.is_empty() => {
            let start = rng.gen_range(0..bytes.len());
            let end = rng.gen_range(start..bytes.len().min(start + 64));
            let slice: Vec<u8> = bytes[start..=end.min(bytes.len() - 1)].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, slice);
        }
        // Splice in a slice from another seed program.
        5 => {
            let donor = pool[rng.gen_range(0..pool.len())].as_bytes();
            if !donor.is_empty() {
                let start = rng.gen_range(0..donor.len());
                let end = rng.gen_range(start..donor.len().min(start + 64));
                let at = rng.gen_range(0..=bytes.len());
                bytes.splice(
                    at..at,
                    donor[start..=end.min(donor.len() - 1)].iter().copied(),
                );
            }
        }
        // Overwrite a numeric literal with an extreme one.
        6 => {
            if let Some((start, len)) = find_number(bytes, rng) {
                let replacement = EXTREME_NUMBERS[rng.gen_range(0..EXTREME_NUMBERS.len())];
                bytes.splice(start..start + len, replacement.bytes());
            }
        }
        // Shuffle whole lines (order-sensitive grammar: register first).
        _ => {
            let text = String::from_utf8_lossy(bytes).into_owned();
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() > 1 {
                for i in (1..lines.len()).rev() {
                    lines.swap(i, rng.gen_range(0..=i));
                }
                *bytes = lines.join("\n").into_bytes();
            }
        }
    }
}

/// Finds a random ASCII-digit run, returning `(start, len)`.
fn find_number(bytes: &[u8], rng: &mut StdRng) -> Option<(usize, usize)> {
    let starts: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|&(i, b)| b.is_ascii_digit() && (i == 0 || !bytes[i - 1].is_ascii_digit()))
        .map(|(i, _)| i)
        .collect();
    if starts.is_empty() {
        return None;
    }
    let start = starts[rng.gen_range(0..starts.len())];
    let len = bytes[start..]
        .iter()
        .take_while(|b| b.is_ascii_digit())
        .count();
    Some((start, len))
}

/// One fuzz probe: parse; on success, print and reparse and require
/// structural equality.  Returns an error description on any violation.
fn probe(source: &str) -> Result<(), String> {
    match parse_source(source) {
        Err(_) => Ok(()),
        Ok(circuit) => {
            let printed = print_circuit(&circuit);
            match parse_source(&printed) {
                Ok(reparsed) if reparsed == circuit => Ok(()),
                Ok(_) => Err("print → parse round trip diverged".to_string()),
                Err(e) => Err(format!("printed form failed to reparse: {e}")),
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: u64| -> u64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
            .unwrap_or(default)
    };
    let iterations = flag("--iterations", DEFAULT_ITERATIONS);
    let seed = flag("--seed", DEFAULT_SEED);

    let mut rng = StdRng::seed_from_u64(seed);
    let pool = seed_pool(&mut rng);
    assert!(!pool.is_empty(), "seed pool is empty");

    // Parser panics are bugs here, not crashes: silence the default hook so
    // 50k probes do not spam stderr, and report reproducers ourselves.
    panic::set_hook(Box::new(|_| {}));

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..iterations {
        let mut bytes = pool[rng.gen_range(0..pool.len())].clone().into_bytes();
        for _ in 0..rng.gen_range(1..=4u32) {
            mutate(&mut bytes, &pool, &mut rng);
        }
        let source = String::from_utf8_lossy(&bytes).into_owned();
        let verdict = panic::catch_unwind(AssertUnwindSafe(|| probe(&source)));
        match verdict {
            Ok(Ok(())) => {
                if parse_source(&source).is_ok() {
                    accepted += 1;
                } else {
                    rejected += 1;
                }
            }
            Ok(Err(violation)) => {
                let _ = panic::take_hook();
                eprintln!("fuzz_qasm: property violation at iteration {i}: {violation}");
                eprintln!(
                    "reproduce with: fuzz_qasm --iterations {} --seed {seed}",
                    i + 1
                );
                eprintln!("--- offending source ---\n{source}\n---");
                return ExitCode::FAILURE;
            }
            Err(_) => {
                let _ = panic::take_hook();
                eprintln!("fuzz_qasm: parser PANICKED at iteration {i}");
                eprintln!(
                    "reproduce with: fuzz_qasm --iterations {} --seed {seed}",
                    i + 1
                );
                eprintln!("--- offending source ---\n{source}\n---");
                return ExitCode::FAILURE;
            }
        }
    }
    let _ = panic::take_hook();
    println!(
        "fuzz_qasm: {iterations} mutated sources, 0 panics, {accepted} parsed, {rejected} rejected (seed {seed})"
    );
    ExitCode::SUCCESS
}
