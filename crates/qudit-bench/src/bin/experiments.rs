//! Regenerates every table/figure-equivalent of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] [--exp <id>]
//! ```
//!
//! * `--quick` — small parameter ranges (seconds instead of minutes);
//! * `--exp <id>` — print a single experiment (`e1` … `e11`, `e3a`, `figs`,
//!   `diagrams`); without the flag the full report is printed.

use std::env;
use std::process::ExitCode;

use qudit_bench::experiments::{
    e10_peephole, e11_pipeline, e1_comparison, e2_gadgets, e3_ablation, e3_linear_scaling,
    e4_ancillas, e5_controlled_unitary, e6_unitary_synthesis, e7_reversible, e8_clifford_t,
    e9_lower_bound, figure_diagrams, figure_verification, full_report, Scale,
};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let experiment = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .cloned();

    match experiment.as_deref() {
        None => print!("{}", full_report(scale)),
        Some("e1") => print!("{}", e1_comparison(scale)),
        Some("e2") => print!("{}", e2_gadgets(scale)),
        Some("e3") => print!("{}", e3_linear_scaling(scale)),
        Some("e3a") => print!("{}", e3_ablation(scale)),
        Some("e4") => print!("{}", e4_ancillas(scale)),
        Some("e5") => print!("{}", e5_controlled_unitary(scale)),
        Some("e6") => print!("{}", e6_unitary_synthesis(scale)),
        Some("e7") => print!("{}", e7_reversible(scale)),
        Some("e8") => print!("{}", e8_clifford_t(scale)),
        Some("e9") => print!("{}", e9_lower_bound(scale)),
        Some("e10") => print!("{}", e10_peephole(scale)),
        Some("e11") => print!("{}", e11_pipeline(scale)),
        Some("figs") => print!("{}", figure_verification()),
        Some("diagrams") => print!("{}", figure_diagrams()),
        Some(other) => {
            eprintln!("unknown experiment id: {other}");
            eprintln!("known ids: e1 e2 e3 e3a e4 e5 e6 e7 e8 e9 e10 e11 figs diagrams");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
