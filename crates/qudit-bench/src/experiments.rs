//! The experiment suite regenerating every table/figure-equivalent of the
//! paper's evaluation (see DESIGN.md, Section 4, for the experiment index).
//!
//! Each function returns a [`Table`] so that the `experiments` binary, the
//! integration tests and EXPERIMENTS.md all draw from the same code.

use qudit_baselines::{
    clean_ancilla_count, di_wei_cubic_count, exponential_gate_count, yeh_wetering_clifford_t_count,
    CleanAncillaMct, CliffordTCostModel,
};
use qudit_core::pipeline::CacheMode;
use qudit_core::route::NoiseAwareCost;
use qudit_core::topology::CouplingGraph;
use qudit_core::{Dimension, QuditId, SingleQuditOp};
use qudit_reversible::{lower_bound, ReversibleFunction, ReversibleSynthesizer};
use qudit_sim::equivalence::{
    verify_mct_exhaustive, verify_mct_exhaustive_with, verify_mct_sampled_with, MctSpec,
};
use qudit_sim::random::random_unitary;
use qudit_sim::{is_clifford_circuit, SimBackend};
use qudit_synthesis::{
    gadgets, ladders, CompileOptions, CompileResult, Compiler, ControlledUnitary, KToffoli,
    MultiControlledGate, OptLevel,
};
use qudit_unitary::UnitarySynthesizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tables::{fmt_f64, Table};

fn dim(d: u32) -> Dimension {
    Dimension::new(d).expect("valid dimension")
}

/// The lowering-only (`O0`) compiler the G-gate-count experiments measure
/// with — the configuration the paper reports.
fn lowering_compiler(dimension: Dimension, width: usize) -> Compiler {
    CompileOptions::new()
        .opt_level(OptLevel::O0)
        .shape(dimension, width)
        .compiler()
}

/// The scheduled, per-run-cached compiler of the E10/E11 sweeps (the
/// standard flow plus depth scheduling, shape-agnostic for heterogeneous
/// batches).
fn scheduled_sweep_compiler() -> Compiler {
    CompileOptions::new()
        .schedule(true)
        .cache(CacheMode::PerRun)
        .compiler()
}

/// The routed leg of the E10/E11 sweeps: the same scheduled flow with a
/// linear coupling graph sized to the sweep's widest job and the
/// noise-aware cost model, so the tables can report routed-depth,
/// swap-count and weighted-cost columns next to the all-to-all baseline.
/// Narrower jobs are embedded into the graph; their extra sites act as
/// borrowed ancillas (the router's epilogue restores the identity wire
/// permutation).
fn routed_sweep_options(jobs: &[qudit_core::Circuit]) -> CompileOptions {
    let sites = jobs.iter().map(|job| job.width()).max().unwrap_or(1);
    CompileOptions::new()
        .schedule(true)
        .cache(CacheMode::PerRun)
        .topology(CouplingGraph::linear(sites).expect("the sweep's widest job fits a chain"))
        .cost(NoiseAwareCost::default())
}

fn routed_sweep_compiler(jobs: &[qudit_core::Circuit]) -> Compiler {
    routed_sweep_options(jobs).compiler()
}

/// Parameter scale of the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters, suitable for CI and tests (seconds).
    Quick,
    /// The full parameter ranges reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn k_values(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 4, 8],
            Scale::Full => vec![2, 4, 8, 16, 32, 64],
        }
    }

    fn k_sweep(self) -> Vec<usize> {
        match self {
            Scale::Quick => (2..=8).collect(),
            Scale::Full => (2..=24).collect(),
        }
    }

    fn dimensions(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![3, 4],
            Scale::Full => vec![3, 4, 5],
        }
    }
}

/// Counts the G-gates of the paper's k-Toffoli for the given parameters.
pub fn ours_g_gate_count(d: u32, k: usize) -> usize {
    KToffoli::new(dim(d), k)
        .expect("valid dimension")
        .synthesize()
        .expect("synthesis succeeds")
        .resources()
        .g_gates
}

/// E1 — headline comparison of gate counts and ancillas against prior work
/// (Section I of the paper).
pub fn e1_comparison(scale: Scale) -> Table {
    let mut table = Table::new(
        "E1 — k-Toffoli: gate count and ancillas vs. prior work",
        &[
            "d",
            "k",
            "ours G-gates",
            "ours ancillas (borrowed)",
            "clean-ancilla [5,23] G-gates",
            "clean ancillas [5,23]",
            "ancilla-free exponential [25] gates",
            "Di&Wei [20] model (k^3)",
            "Yeh&vdW [24] model (k^3.585, d=3)",
        ],
    );
    for &d in &scale.dimensions() {
        for &k in &scale.k_values() {
            let ours = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
            let baseline = CleanAncillaMct::new(dim(d), k, SingleQuditOp::Swap(0, 1))
                .unwrap()
                .synthesize()
                .unwrap();
            let exponential = if d % 2 == 1 {
                format!("{}", exponential_gate_count(dim(d), k))
            } else {
                "n/a (impossible)".to_string()
            };
            let yvdw = if d == 3 {
                fmt_f64(yeh_wetering_clifford_t_count(k))
            } else {
                "-".to_string()
            };
            table.push_row(vec![
                d.to_string(),
                k.to_string(),
                ours.resources().g_gates.to_string(),
                ours.resources().borrowed_ancillas().to_string(),
                baseline.resources().g_gates.to_string(),
                baseline.resources().clean_ancillas().to_string(),
                exponential,
                fmt_f64(di_wei_cubic_count(dim(d), k)),
                yvdw,
            ]);
        }
    }
    table
}

/// E2 — the 2-Toffoli gadgets of Lemmas III.1 and III.3: G-gate counts as a
/// function of `d`, with exhaustive functional verification.
pub fn e2_gadgets(scale: Scale) -> Table {
    let mut table = Table::new(
        "E2 — 2-Toffoli gadgets (Fig. 2 even d, Fig. 5 odd d)",
        &[
            "d",
            "figure",
            "elementary gates",
            "G-gates",
            "borrowed ancillas",
            "verified",
        ],
    );
    let max_d = match scale {
        Scale::Quick => 6,
        Scale::Full => 9,
    };
    for d in 3..=max_d {
        let dimension = dim(d);
        let (figure, gates, borrowed, width) = if dimension.is_odd() {
            (
                "Fig. 5",
                gadgets::two_controlled_swap_odd(
                    dimension,
                    QuditId::new(0),
                    QuditId::new(1),
                    QuditId::new(2),
                    0,
                    1,
                )
                .unwrap(),
                0usize,
                3usize,
            )
        } else {
            (
                "Fig. 2",
                gadgets::two_controlled_swap_even(
                    dimension,
                    QuditId::new(0),
                    QuditId::new(1),
                    QuditId::new(2),
                    0,
                    1,
                    QuditId::new(3),
                )
                .unwrap(),
                1usize,
                4usize,
            )
        };
        let mut circuit = qudit_core::Circuit::new(dimension, width);
        circuit.extend_gates(gates).unwrap();
        let spec = MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(1)], QuditId::new(2));
        let verified = verify_mct_exhaustive(&circuit, &spec).unwrap().is_pass();
        let g = lowering_compiler(dimension, width)
            .compile(&circuit)
            .unwrap()
            .circuit;
        table.push_row(vec![
            d.to_string(),
            figure.to_string(),
            circuit.len().to_string(),
            g.len().to_string(),
            borrowed.to_string(),
            verified.to_string(),
        ]);
    }
    table
}

/// E3 — linear scaling of the k-Toffoli G-gate count (Theorems III.2 and
/// III.6), with a least-squares slope per dimension.
pub fn e3_linear_scaling(scale: Scale) -> Table {
    let mut table = Table::new(
        "E3 — k-Toffoli G-gate count vs. k (linear in k)",
        &[
            "d",
            "k",
            "macro gates",
            "elementary gates",
            "G-gates",
            "depth",
            "G-gates / k",
        ],
    );
    for &d in &scale.dimensions() {
        for &k in &scale.k_sweep() {
            let synthesis = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
            let r = synthesis.resources();
            let depth = qudit_core::depth::circuit_depth(&synthesis.g_gate_circuit().unwrap());
            table.push_row(vec![
                d.to_string(),
                k.to_string(),
                r.macro_gates.to_string(),
                r.elementary_gates.to_string(),
                r.g_gates.to_string(),
                depth.to_string(),
                fmt_f64(r.g_gates as f64 / k as f64),
            ]);
        }
    }
    table
}

/// The `(d, k)` parameter sweep of the E10 peephole experiment.
pub fn e10_sweep(scale: Scale) -> Vec<(u32, usize)> {
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![3, 4, 6],
        Scale::Full => vec![3, 4, 6, 8, 12, 16],
    };
    [3u32, 4]
        .iter()
        .flat_map(|&d| ks.iter().map(move |&k| (d, k)))
        .collect()
}

/// Runs the k-Toffoli synthesis for every `(d, k)` of a sweep.
pub fn sweep_syntheses(sweep: &[(u32, usize)]) -> Vec<qudit_synthesis::MctSynthesis> {
    sweep
        .iter()
        .map(|&(d, k)| KToffoli::new(dim(d), k).unwrap().synthesize().unwrap())
        .collect()
}

/// Synthesises the macro circuits of a `(d, k)` sweep — the batch jobs the
/// E10/E11 pipeline experiments compile.
pub fn sweep_jobs(sweep: &[(u32, usize)]) -> Vec<qudit_core::Circuit> {
    sweep_syntheses(sweep)
        .iter()
        .map(|synthesis| synthesis.circuit().clone())
        .collect()
}

/// E10 — ablation: the peephole optimiser (`cancel_inverse_pairs`) applied
/// to the fully lowered G-gate circuits, followed by the commutation-aware
/// depth scheduler.  The constructions conjugate levels aggressively, so a
/// noticeable fraction of the G-gates cancels; the emission order then
/// leaves idle-wire holes that
/// [`ScheduleDepth`](qudit_core::pipeline::ScheduleDepth) packs away, which
/// the depth columns report.
///
/// The whole sweep is compiled concurrently through
/// [`Compiler::compile_batch`] on the scheduled, per-run-cached compiler;
/// the table is identical to compiling each job sequentially (wall times
/// aside).
pub fn e10_peephole(scale: Scale) -> Table {
    let sweep = e10_sweep(scale);
    let syntheses = sweep_syntheses(&sweep);
    let jobs: Vec<qudit_core::Circuit> = syntheses
        .iter()
        .map(|synthesis| synthesis.circuit().clone())
        .collect();
    let batch = scheduled_sweep_compiler()
        .compile_batch(&jobs)
        .expect("the k-Toffoli sweep compiles");
    let routed = routed_sweep_compiler(&jobs)
        .compile_batch(&jobs)
        .expect("the routed k-Toffoli sweep compiles");
    e10_table_from_results(&sweep, &syntheses, &batch.results, &routed.results)
}

/// Renders the E10 table from per-job syntheses and compile results (one of
/// each per sweep entry; `routed` holds the same jobs compiled through the
/// linear-chain routed flow of `routed_sweep_options`).  Exposed so tests
/// can compare the batch path against a sequentially compiled sweep.
pub fn e10_table_from_results(
    sweep: &[(u32, usize)],
    syntheses: &[qudit_synthesis::MctSynthesis],
    results: &[CompileResult],
    routed: &[CompileResult],
) -> Table {
    let mut table = Table::new(
        "E10 — peephole optimisation and depth scheduling of the lowered k-Toffoli circuits",
        &[
            "d",
            "k",
            "G-gates",
            "after cancellation",
            "removed %",
            "depth",
            "scheduled depth",
            "depth saved %",
            "routed depth",
            "swaps",
            "weighted cost",
            "sim backend",
            "clifford",
            "verified",
        ],
    );
    for (((&(d, k), synthesis), report), routed) in
        sweep.iter().zip(syntheses).zip(results).zip(routed)
    {
        let cancel = report
            .stats_for("cancel-inverse-pairs")
            .expect("the scheduled pipeline cancels inverse pairs");
        let (g_gates, optimized_gates) = (cancel.before.gates, cancel.after.gates);
        let schedule = report
            .stats_for("schedule-depth")
            .expect("the scheduled pipeline ends with depth scheduling");
        let (depth_before, depth_after) = (schedule.before.depth, schedule.after.depth);
        // Verify that the optimised circuit still implements the Toffoli
        // (sampled for larger registers, exhaustive for small ones), routed
        // through the Auto simulation backend: the optimised circuits are
        // fully classical, so Auto resolves to the sparse engine and every
        // checked input stays at one nonzero amplitude.
        let spec = MctSpec::toffoli(
            synthesis.layout().controls.clone(),
            synthesis.layout().target,
        );
        let backend = SimBackend::Auto.resolve(&report.circuit);
        let verified = if dim(d).register_size(synthesis.layout().width) <= 4096 {
            verify_mct_exhaustive_with(&report.circuit, &spec, backend)
                .unwrap()
                .is_pass()
        } else {
            let mut rng = StdRng::seed_from_u64(5);
            verify_mct_sampled_with(&report.circuit, &spec, 100, &mut rng, backend)
                .unwrap()
                .is_pass()
        };
        let removed = g_gates - optimized_gates;
        let depth_saved = depth_before - depth_after;
        // The routed leg of the same job: circuit depth once the SWAP
        // ladders are in (before the final scheduling stage packs it), the
        // number of inserted SWAPs, and the noise-aware weighted cost of
        // the routed circuit.
        let routed_depth = routed
            .routed_depth
            .expect("the routed sweep reports a routed depth");
        let swaps = routed
            .swap_count
            .expect("the routed sweep reports a swap count");
        let weighted = routed
            .weighted_cost
            .expect("the routed sweep reports a weighted cost");
        table.push_row(vec![
            d.to_string(),
            k.to_string(),
            g_gates.to_string(),
            optimized_gates.to_string(),
            fmt_f64(100.0 * removed as f64 / g_gates as f64),
            depth_before.to_string(),
            depth_after.to_string(),
            fmt_f64(100.0 * depth_saved as f64 / depth_before.max(1) as f64),
            routed_depth.to_string(),
            swaps.to_string(),
            fmt_f64(weighted),
            backend.label().to_string(),
            is_clifford_circuit(&report.circuit).to_string(),
            verified.to_string(),
        ]);
    }
    table
}

/// The `(d, k)` parameter sweep of the E11 pipeline-statistics experiment.
pub fn e11_sweep(scale: Scale) -> Vec<(u32, usize)> {
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![4, 8],
        Scale::Full => vec![4, 8, 16, 32],
    };
    [3u32, 4]
        .iter()
        .flat_map(|&d| ks.iter().map(move |&k| (d, k)))
        .collect()
}

/// E11 — the compilation pipeline itself: per-pass statistics (gate counts,
/// depth, lowering-cache hits, wall time) of the scheduled standard flow
/// (macro → elementary → G → optimised → depth-scheduled) on the k-Toffoli
/// circuits, as recorded by the `PassManager`.  The `schedule-depth` rows'
/// depth-in/depth-out columns are the depth trajectory of the new
/// scheduling stage.
///
/// The sweep is compiled concurrently through [`Compiler::compile_batch`]
/// with a per-job lowering cache, so the cache columns are deterministic
/// and the table matches the sequential path (wall times aside).
pub fn e11_pipeline(scale: Scale) -> Table {
    let sweep = e11_sweep(scale);
    let jobs = sweep_jobs(&sweep);
    let batch = scheduled_sweep_compiler()
        .compile_batch(&jobs)
        .expect("the k-Toffoli sweep compiles");
    let routed = routed_sweep_compiler(&jobs)
        .compile_batch(&jobs)
        .expect("the routed k-Toffoli sweep compiles");
    e11_table_from_results(&sweep, &batch.results, &routed.results)
}

/// Renders the E11 table from per-job compile results (one per sweep
/// entry; `routed` holds the same jobs compiled through the linear-chain
/// routed flow, whose per-job routed-depth / swap-count / weighted-cost
/// figures repeat on every pass row of that job).  Exposed so tests can
/// compare the batch path against a sequentially compiled sweep.
pub fn e11_table_from_results(
    sweep: &[(u32, usize)],
    results: &[CompileResult],
    routed: &[CompileResult],
) -> Table {
    let mut table = Table::new(
        "E11 — standard pipeline per-pass statistics (macro -> fused -> elementary -> G -> optimised)",
        &[
            "d",
            "k",
            "pass",
            "gates in",
            "gates out",
            "depth in",
            "depth out",
            "cache hits",
            "cache hit %",
            "fused gates",
            "panel threads",
            "sim backend",
            "clifford",
            "qasm bytes",
            "routed depth",
            "swap count",
            "weighted cost",
            "elapsed µs",
        ],
    );
    for ((&(d, k), report), routed) in sweep.iter().zip(results).zip(routed) {
        // The backend the Auto classicality scan picks for this job's
        // compiled circuit — what any downstream re-simulation (fidelity
        // checks, `VerifyEquivalence`) of the sweep would run on — and
        // whether the circuit is all-Clifford (tableau-verifiable at any
        // width).  `qasm bytes` is the size of the compiled circuit in the
        // canonical text IR (see `qudit_core::qasm`) — the artefact a job
        // exported with `CompileResult::to_qasm` would occupy on disk.
        let backend = SimBackend::Auto.resolve(&report.circuit);
        let clifford = is_clifford_circuit(&report.circuit);
        let qasm_bytes = qudit_core::qasm::print_circuit(&report.circuit).len();
        let routed_depth = routed
            .routed_depth
            .expect("the routed sweep reports a routed depth");
        let swap_count = routed
            .swap_count
            .expect("the routed sweep reports a swap count");
        let weighted = routed
            .weighted_cost
            .expect("the routed sweep reports a weighted cost");
        for stats in &report.stats {
            let (cache_hits, cache_rate) = match stats.cache {
                Some(cache) if cache.total() > 0 => {
                    (cache.hits.to_string(), fmt_f64(cache.hit_rate() * 100.0))
                }
                Some(_) => ("0".to_string(), "-".to_string()),
                None => ("-".to_string(), "-".to_string()),
            };
            table.push_row(vec![
                d.to_string(),
                k.to_string(),
                stats.pass.clone(),
                stats.before.gates.to_string(),
                stats.after.gates.to_string(),
                stats.before.depth.to_string(),
                stats.after.depth.to_string(),
                cache_hits,
                cache_rate,
                report.fused_gates.to_string(),
                report.panel_threads.to_string(),
                backend.label().to_string(),
                clifford.to_string(),
                qasm_bytes.to_string(),
                routed_depth.to_string(),
                swap_count.to_string(),
                fmt_f64(weighted),
                fmt_f64(stats.elapsed.as_secs_f64() * 1e6),
            ]);
        }
    }
    table
}

/// Renders figure-style ASCII diagrams of the small gadget constructions
/// (the analogue of the paper's circuit figures).
pub fn figure_diagrams() -> String {
    let mut out = String::new();

    // Fig. 5: odd-d 2-Toffoli gadget.
    let d3 = dim(3);
    let fig5 = gadgets::two_controlled_swap_odd(
        d3,
        QuditId::new(0),
        QuditId::new(1),
        QuditId::new(2),
        0,
        1,
    )
    .unwrap();
    let mut circuit = qudit_core::Circuit::new(d3, 3);
    circuit.extend_gates(fig5).unwrap();
    out.push_str("Fig. 5 — |00⟩-X01 for odd d (d = 3), ancilla-free:\n\n");
    out.push_str(&qudit_core::diagram::render_with_labels(
        &circuit,
        &["x1".to_string(), "x2".to_string(), " t".to_string()],
    ));
    out.push('\n');

    // Fig. 2: even-d 2-Toffoli gadget with one borrowed ancilla.
    let d4 = dim(4);
    let fig2 = gadgets::two_controlled_swap_even(
        d4,
        QuditId::new(0),
        QuditId::new(1),
        QuditId::new(2),
        0,
        1,
        QuditId::new(3),
    )
    .unwrap();
    let mut circuit = qudit_core::Circuit::new(d4, 4);
    circuit.extend_gates(fig2).unwrap();
    out.push_str("Fig. 2 — |00⟩-X01 for even d (d = 4), one borrowed ancilla a:\n\n");
    out.push_str(&qudit_core::diagram::render_with_labels(
        &circuit,
        &[
            "x1".to_string(),
            "x2".to_string(),
            " t".to_string(),
            " a".to_string(),
        ],
    ));
    out.push('\n');

    // Fig. 7: the increment ladder for k = 4 (macro-gate level).
    let controls: Vec<qudit_core::Control> = (0..4)
        .map(|i| qudit_core::Control::zero(QuditId::new(i)))
        .collect();
    let fig7 = ladders::add_one_ladder_odd(
        d3,
        &controls,
        QuditId::new(4),
        &[QuditId::new(5), QuditId::new(6)],
    )
    .unwrap();
    let mut circuit = qudit_core::Circuit::new(d3, 7);
    circuit.extend_gates(fig7).unwrap();
    out.push_str(
        "Fig. 7 — |0^4⟩-X+1 ladder (d = 3), macro-gate level, borrowed ancillas a1, a2:\n\n",
    );
    out.push_str(&qudit_core::diagram::render_with_labels(
        &circuit,
        &[
            "x1".to_string(),
            "x2".to_string(),
            "x3".to_string(),
            "x4".to_string(),
            " t".to_string(),
            "a1".to_string(),
            "a2".to_string(),
        ],
    ));
    out.push('\n');
    out
}

/// E3 (ablation) — cost of reducing the ancilla count: the Fig. 3 / Fig. 7
/// ladders with `k − 2` borrowed ancillas vs. the one-/zero-ancilla
/// constructions of Theorems III.2 / III.6.
pub fn e3_ablation(scale: Scale) -> Table {
    let mut table = Table::new(
        "E3a — ablation: many-borrowed-ancilla ladders vs. one/zero-ancilla constructions",
        &[
            "d",
            "k",
            "ladder G-gates (k−2 borrowed)",
            "theorem G-gates (≤1 borrowed)",
            "overhead ×",
        ],
    );
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![4, 6, 8],
        Scale::Full => vec![4, 6, 8, 12, 16, 24],
    };
    for &d in &[3u32, 4] {
        let dimension = dim(d);
        for &k in &ks {
            // Ladder version: |0^k⟩ target op with k−2 borrowed ancillas.
            let controls: Vec<qudit_core::Control> = (0..k)
                .map(|i| qudit_core::Control::zero(QuditId::new(i)))
                .collect();
            let target = QuditId::new(k);
            let borrowed: Vec<QuditId> = (k + 1..2 * k - 1).map(QuditId::new).collect();
            let width = 2 * k - 1;
            let ladder_gates = if dimension.is_odd() {
                ladders::add_one_ladder_odd(dimension, &controls, target, &borrowed).unwrap()
            } else {
                ladders::parity_ladder_even(
                    dimension,
                    &controls,
                    target,
                    &SingleQuditOp::Swap(0, 1),
                    &borrowed,
                )
                .unwrap()
            };
            let mut ladder_circuit = qudit_core::Circuit::new(dimension, width);
            ladder_circuit.extend_gates(ladder_gates).unwrap();
            let ladder_g = lowering_compiler(dimension, width)
                .compile(&ladder_circuit)
                .unwrap()
                .circuit
                .len();

            // Theorem version (note: for odd d the ladder implements X+1 and
            // the theorem implements X01; both are single multi-controlled
            // operations and the comparison is about the ancilla-reduction
            // overhead).
            let theorem_g = ours_g_gate_count(d, k);
            table.push_row(vec![
                d.to_string(),
                k.to_string(),
                ladder_g.to_string(),
                theorem_g.to_string(),
                fmt_f64(theorem_g as f64 / ladder_g as f64),
            ]);
        }
    }
    table
}

/// E4 — ancilla counts: the paper's 0/1 ancillas vs. the clean-ancilla
/// baseline's `Θ(k/(d−2))`.
pub fn e4_ancillas(scale: Scale) -> Table {
    let mut table = Table::new(
        "E4 — ancilla count comparison",
        &[
            "d",
            "k",
            "ours borrowed",
            "ours clean",
            "baseline clean [5,23]",
        ],
    );
    for &d in &scale.dimensions() {
        for &k in &scale.k_values() {
            let ours = KToffoli::new(dim(d), k).unwrap().synthesize().unwrap();
            table.push_row(vec![
                d.to_string(),
                k.to_string(),
                ours.resources().borrowed_ancillas().to_string(),
                ours.resources().clean_ancillas().to_string(),
                clean_ancilla_count(dim(d), k).to_string(),
            ]);
        }
    }
    table
}

/// E5 — the multi-controlled-U construction of Fig. 1(b): one clean ancilla
/// and `O(k)` two-qudit gates.
pub fn e5_controlled_unitary(scale: Scale) -> Table {
    let mut table = Table::new(
        "E5 — |0^k⟩-U with one clean ancilla (Fig. 1b)",
        &[
            "d",
            "k",
            "two-qudit gates",
            "G-gates (classical part)",
            "clean ancillas",
        ],
    );
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![2, 4, 8],
        Scale::Full => vec![2, 4, 8, 16, 32],
    };
    for &d in &[3u32, 4] {
        for &k in &ks {
            let synthesis = ControlledUnitary::new(dim(d), k, SingleQuditOp::Add(1))
                .unwrap()
                .synthesize()
                .unwrap();
            let r = synthesis.resources();
            table.push_row(vec![
                d.to_string(),
                k.to_string(),
                r.two_qudit_gates.to_string(),
                r.g_gates.to_string(),
                r.ancillas.clean.to_string(),
            ]);
        }
    }
    table
}

/// E6 — Theorem IV.1: unitary synthesis with one clean ancilla; measured
/// two-qudit gate counts against the `d^{2n}` optimum.
pub fn e6_unitary_synthesis(scale: Scale) -> Table {
    let mut table = Table::new(
        "E6 — arbitrary n-qudit unitary synthesis (Theorem IV.1)",
        &[
            "d",
            "n",
            "two-level factors",
            "two-qudit gates",
            "d^(2n)",
            "ratio",
            "clean ancillas (ours)",
            "clean ancillas [5]",
        ],
    );
    let mut rng = StdRng::seed_from_u64(2023);
    let configs: Vec<(u32, usize)> = match scale {
        Scale::Quick => vec![(3, 1), (3, 2)],
        Scale::Full => vec![(3, 1), (3, 2), (3, 3), (4, 1), (4, 2), (5, 1), (5, 2)],
    };
    for (d, n) in configs {
        let dimension = dim(d);
        let size = dimension.register_size(n);
        let unitary = random_unitary(size, &mut rng);
        let synthesis = UnitarySynthesizer::new(dimension)
            .unwrap()
            .synthesize(&unitary, n)
            .unwrap();
        let optimum = (d as f64).powi(2 * n as i32);
        let two_qudit = synthesis.resources().two_qudit_gates;
        let baseline_ancillas = if n >= 2 {
            (n - 2).div_ceil((d - 2) as usize).max(usize::from(n > 2))
        } else {
            0
        };
        table.push_row(vec![
            d.to_string(),
            n.to_string(),
            synthesis.two_level_factors().to_string(),
            two_qudit.to_string(),
            fmt_f64(optimum),
            fmt_f64(two_qudit as f64 / optimum),
            synthesis.resources().clean_ancillas().to_string(),
            baseline_ancillas.to_string(),
        ]);
    }
    table
}

/// E7 — Theorem IV.2: reversible function compilation; measured G-gate
/// counts against the `n·dⁿ` target.
pub fn e7_reversible(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7 — d-ary reversible functions (Theorem IV.2)",
        &[
            "d",
            "n",
            "2-cycles",
            "G-gates",
            "n·d^n",
            "ratio",
            "ancillas (borrowed)",
        ],
    );
    let mut rng = StdRng::seed_from_u64(42);
    let configs: Vec<(u32, usize)> = match scale {
        Scale::Quick => vec![(3, 2), (4, 2)],
        Scale::Full => vec![(3, 2), (3, 3), (3, 4), (4, 2), (4, 3), (5, 2), (5, 3)],
    };
    for (d, n) in configs {
        let dimension = dim(d);
        let function = ReversibleFunction::random(dimension, n, &mut rng);
        let synthesis = ReversibleSynthesizer::new(dimension)
            .unwrap()
            .synthesize(&function)
            .unwrap();
        let target = n as f64 * (d as f64).powi(n as i32);
        table.push_row(vec![
            d.to_string(),
            n.to_string(),
            synthesis.two_cycles().to_string(),
            synthesis.resources().g_gates.to_string(),
            fmt_f64(target),
            fmt_f64(synthesis.resources().g_gates as f64 / target),
            synthesis.resources().borrowed_ancillas().to_string(),
        ]);
    }
    table
}

/// E8 — the qutrit Clifford+T comparison: the paper's linear construction
/// against the `k^{3.585}` model of Yeh & van de Wetering.
pub fn e8_clifford_t(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8 — qutrit Clifford+T count: ours (linear) vs. Yeh & van de Wetering (k^3.585)",
        &[
            "k",
            "ours Clifford+T",
            "Yeh&vdW model",
            "ratio (model / ours)",
        ],
    );
    let model = CliffordTCostModel::default();
    let ks: Vec<usize> = match scale {
        Scale::Quick => vec![2, 4, 8],
        // The crossover against the k^3.585 model sits around k ≈ 40 for the
        // default cost constants, so sweep past it.
        Scale::Full => vec![2, 4, 8, 16, 24, 32, 48, 64],
    };
    for &k in &ks {
        let synthesis = KToffoli::new(dim(3), k).unwrap().synthesize().unwrap();
        let g_circuit = synthesis.g_gate_circuit().unwrap();
        let ours = model.circuit_cost(&g_circuit);
        let theirs = yeh_wetering_clifford_t_count(k);
        table.push_row(vec![
            k.to_string(),
            ours.to_string(),
            fmt_f64(theirs),
            fmt_f64(theirs / ours as f64),
        ]);
    }
    table
}

/// E9 — Lemma IV.3: the counting lower bound vs. the measured G-gate count of
/// the reversible-function compiler (the gap is the `log n` factor plus
/// constants).
pub fn e9_lower_bound(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9 — reversible functions: counting lower bound vs. measured",
        &[
            "d",
            "n",
            "lower bound (G-gates)",
            "measured G-gates",
            "measured / bound",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7);
    let configs: Vec<(u32, usize)> = match scale {
        Scale::Quick => vec![(3, 2)],
        Scale::Full => vec![(3, 2), (3, 3), (3, 4), (5, 2), (5, 3)],
    };
    for (d, n) in configs {
        let dimension = dim(d);
        let bound = lower_bound::g_gate_lower_bound(dimension, n, 2);
        let function = ReversibleFunction::random(dimension, n, &mut rng);
        let measured = ReversibleSynthesizer::new(dimension)
            .unwrap()
            .synthesize(&function)
            .unwrap()
            .resources()
            .g_gates;
        table.push_row(vec![
            d.to_string(),
            n.to_string(),
            fmt_f64(bound),
            measured.to_string(),
            fmt_f64(measured as f64 / bound),
        ]);
    }
    table
}

/// Figure verification — functionally verifies the construction behind every
/// circuit figure of the paper on small parameters.
pub fn figure_verification() -> Table {
    let mut table = Table::new(
        "Figure verification — every construction checked against its specification",
        &["figure", "construction", "parameters", "verified"],
    );
    let push = |table: &mut Table, fig: &str, what: &str, params: &str, ok: bool| {
        table.push_row(vec![
            fig.to_string(),
            what.to_string(),
            params.to_string(),
            ok.to_string(),
        ]);
    };

    // Fig. 2: even-d 2-Toffoli with one borrowed ancilla.
    {
        let dimension = dim(4);
        let gates = gadgets::two_controlled_swap_even(
            dimension,
            QuditId::new(0),
            QuditId::new(1),
            QuditId::new(2),
            0,
            1,
            QuditId::new(3),
        )
        .unwrap();
        let mut circuit = qudit_core::Circuit::new(dimension, 4);
        circuit.extend_gates(gates).unwrap();
        let ok = verify_mct_exhaustive(
            &circuit,
            &MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(1)], QuditId::new(2)),
        )
        .unwrap()
        .is_pass();
        push(
            &mut table,
            "Fig. 2",
            "|00⟩-X01, even d, 1 borrowed ancilla",
            "d=4",
            ok,
        );
    }
    // Fig. 3 / Fig. 4 via Theorem III.2.
    {
        let synthesis = KToffoli::new(dim(4), 4).unwrap().synthesize().unwrap();
        let spec = MctSpec::toffoli(
            synthesis.layout().controls.clone(),
            synthesis.layout().target,
        );
        let ok = verify_mct_exhaustive(synthesis.circuit(), &spec)
            .unwrap()
            .is_pass();
        push(
            &mut table,
            "Figs. 3–4",
            "k-Toffoli, even d, 1 borrowed ancilla (Thm III.2)",
            "d=4, k=4",
            ok,
        );
    }
    // Fig. 5: odd-d 2-Toffoli, ancilla-free.
    {
        let dimension = dim(5);
        let gates = gadgets::two_controlled_swap_odd(
            dimension,
            QuditId::new(0),
            QuditId::new(1),
            QuditId::new(2),
            0,
            1,
        )
        .unwrap();
        let mut circuit = qudit_core::Circuit::new(dimension, 3);
        circuit.extend_gates(gates).unwrap();
        let ok = verify_mct_exhaustive(
            &circuit,
            &MctSpec::toffoli(vec![QuditId::new(0), QuditId::new(1)], QuditId::new(2)),
        )
        .unwrap()
        .is_pass();
        push(
            &mut table,
            "Fig. 5",
            "|00⟩-X01, odd d, ancilla-free",
            "d=5",
            ok,
        );
    }
    // Fig. 7: |0^k⟩-X+1 ladder.
    {
        let dimension = dim(3);
        let controls: Vec<qudit_core::Control> = (0..4)
            .map(|i| qudit_core::Control::zero(QuditId::new(i)))
            .collect();
        let gates = ladders::add_one_ladder_odd(
            dimension,
            &controls,
            QuditId::new(4),
            &[QuditId::new(5), QuditId::new(6)],
        )
        .unwrap();
        let mut circuit = qudit_core::Circuit::new(dimension, 7);
        circuit.extend_gates(gates).unwrap();
        let spec = MctSpec {
            controls: (0..4).map(QuditId::new).collect(),
            target: QuditId::new(4),
            op: SingleQuditOp::Add(1),
        };
        let ok = verify_mct_exhaustive(&circuit, &spec).unwrap().is_pass();
        push(
            &mut table,
            "Fig. 7",
            "|0^k⟩-X+1, k−2 borrowed ancillas (Lemma III.4)",
            "d=3, k=4",
            ok,
        );
    }
    // Figs. 8–9 are covered by the P_k unit tests; report the one-ancilla
    // variant here through the Toffoli built on top of it.
    {
        let synthesis = KToffoli::new(dim(3), 5).unwrap().synthesize().unwrap();
        let spec = MctSpec::toffoli(
            synthesis.layout().controls.clone(),
            synthesis.layout().target,
        );
        let ok = verify_mct_exhaustive(synthesis.circuit(), &spec)
            .unwrap()
            .is_pass();
        push(
            &mut table,
            "Figs. 8–10",
            "k-Toffoli, odd d, ancilla-free (Thm III.6 via P_k)",
            "d=3, k=5",
            ok,
        );
    }
    // Fig. 1(b): multi-controlled U with one clean ancilla.
    {
        let synthesis = ControlledUnitary::new(dim(3), 3, SingleQuditOp::Add(2))
            .unwrap()
            .synthesize()
            .unwrap();
        let spec = MctSpec {
            controls: synthesis.layout().controls.clone(),
            target: synthesis.layout().target,
            op: SingleQuditOp::Add(2),
        };
        let ok = qudit_sim::equivalence::verify_mct_with_clean_ancilla(
            synthesis.circuit(),
            &spec,
            synthesis.layout().clean_ancilla,
        )
        .unwrap()
        .is_pass();
        push(
            &mut table,
            "Fig. 1(b)",
            "|0^k⟩-U, one clean ancilla",
            "d=3, k=3",
            ok,
        );
    }
    // Fig. 11: reversible 2-cycle.
    {
        let dimension = dim(3);
        let f = ReversibleFunction::two_cycle(dimension, 3, &[0, 1, 2], &[1, 2, 0]).unwrap();
        let synthesis = ReversibleSynthesizer::new(dimension)
            .unwrap()
            .synthesize(&f)
            .unwrap();
        let ok = (0..27).all(|index| {
            let digits = qudit_sim::basis::index_to_digits(index, dimension, 3);
            synthesis.circuit().apply_to_basis(&digits).unwrap() == f.apply(&digits).unwrap()
        });
        push(
            &mut table,
            "Fig. 11",
            "2-cycle implementation (Thm IV.2)",
            "d=3, n=3",
            ok,
        );
    }
    // Parity impossibility remark (after Thm III.2): a multi-controlled gate
    // over G alone is an odd permutation on k+1 qudits for even d — checked
    // by confirming the even-d synthesis always touches a 4th qudit.
    {
        let synthesis = MultiControlledGate::new(dim(4), 2, SingleQuditOp::Swap(0, 1))
            .unwrap()
            .synthesize()
            .unwrap();
        let uses_ancilla = synthesis.g_gate_circuit().unwrap().used_qudits().len() > 3;
        push(
            &mut table,
            "Remark (Thm III.2)",
            "even d requires a borrowed ancilla",
            "d=4, k=2",
            uses_ancilla,
        );
    }
    table
}

/// Runs every experiment at the given scale and returns the rendered report.
pub fn full_report(scale: Scale) -> String {
    let tables = vec![
        e1_comparison(scale),
        e2_gadgets(scale),
        e3_linear_scaling(scale),
        e3_ablation(scale),
        e4_ancillas(scale),
        e5_controlled_unitary(scale),
        e6_unitary_synthesis(scale),
        e7_reversible(scale),
        e8_clifford_t(scale),
        e9_lower_bound(scale),
        e10_peephole(scale),
        e11_pipeline(scale),
        figure_verification(),
    ];
    tables
        .iter()
        .map(Table::to_markdown)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tables_have_rows() {
        assert!(!e2_gadgets(Scale::Quick).rows.is_empty());
        assert!(!e4_ancillas(Scale::Quick).rows.is_empty());
        assert!(!e9_lower_bound(Scale::Quick).rows.is_empty());
    }

    #[test]
    fn figure_verification_all_pass() {
        let table = figure_verification();
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "true", "row failed: {row:?}");
        }
    }

    #[test]
    fn e1_shows_linear_vs_exponential_shape() {
        let table = e1_comparison(Scale::Quick);
        // For d = 3, the exponential baseline must exceed ours at k = 8.
        let row = table
            .rows
            .iter()
            .find(|r| r[0] == "3" && r[1] == "8")
            .expect("row for d=3, k=8");
        let ours: f64 = row[2].parse().unwrap();
        let exponential: f64 = row[6].parse().unwrap();
        assert!(
            exponential > ours,
            "exponential baseline should lose by k=8"
        );
    }

    #[test]
    fn e8_model_overtakes_ours_for_large_k() {
        let table = e8_clifford_t(Scale::Quick);
        let last = table.rows.last().unwrap();
        let ratio: f64 = last[3].parse().unwrap();
        assert!(ratio > 0.0);
    }

    /// Drops the wall-time column (nondeterministic) and the panel-threads
    /// column (run configuration, not compilation output) from a table's rows.
    fn without_elapsed(table: &Table) -> Vec<Vec<String>> {
        let skipped: Vec<usize> = table
            .headers
            .iter()
            .enumerate()
            .filter(|(_, h)| h.starts_with("elapsed") || *h == "panel threads")
            .map(|(i, _)| i)
            .collect();
        assert!(!skipped.is_empty(), "table has an elapsed column");
        table
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(i, _)| !skipped.contains(i))
                    .map(|(_, cell)| cell.clone())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn e11_batch_matches_sequential_and_reports_cache_hits() {
        use qudit_synthesis::Threads;

        let sweep = e11_sweep(Scale::Quick);
        let jobs = sweep_jobs(&sweep);

        // Sequential reference: one job at a time, in order, on both the
        // all-to-all and the routed leg.
        let compiler = scheduled_sweep_compiler();
        let sequential: Vec<CompileResult> = jobs
            .iter()
            .map(|job| compiler.compile(job).unwrap())
            .collect();
        let routed_compiler = routed_sweep_compiler(&jobs);
        let routed_sequential: Vec<CompileResult> = jobs
            .iter()
            .map(|job| routed_compiler.compile(job).unwrap())
            .collect();
        // Batch path, forced multi-threaded, on both legs.
        let batch = CompileOptions::new()
            .schedule(true)
            .cache(CacheMode::PerRun)
            .threads(Threads::Fixed(4))
            .compiler()
            .compile_batch(&jobs)
            .unwrap();
        let routed_batch = routed_sweep_options(&jobs)
            .threads(Threads::Fixed(4))
            .compiler()
            .compile_batch(&jobs)
            .unwrap();

        let sequential_table = e11_table_from_results(&sweep, &sequential, &routed_sequential);
        let batch_table = e11_table_from_results(&sweep, &batch.results, &routed_batch.results);
        assert_eq!(
            without_elapsed(&sequential_table),
            without_elapsed(&batch_table),
            "batch compilation must reproduce the sequential E11 table"
        );

        // The forced 4-worker batch leg must report its pool width.
        let threads_column = batch_table
            .headers
            .iter()
            .position(|h| h == "panel threads")
            .unwrap();
        assert!(
            batch_table
                .rows
                .iter()
                .all(|row| row[threads_column] == "4"),
            "batch leg must report the configured panel-thread count"
        );

        // The lowering passes must report a positive cache hit-rate.
        let hits_column = batch_table
            .headers
            .iter()
            .position(|h| h == "cache hits")
            .unwrap();
        let total_hits: u64 = batch_table
            .rows
            .iter()
            .filter_map(|row| row[hits_column].parse::<u64>().ok())
            .sum();
        assert!(total_hits > 0, "expected cache hits in the E11 sweep");
    }

    #[test]
    fn e10_depth_scheduling_reduces_mean_depth() {
        let table = e10_peephole(Scale::Quick);
        let col = |name: &str| {
            table
                .headers
                .iter()
                .position(|h| h == name)
                .unwrap_or_else(|| panic!("missing column {name}"))
        };
        let (before_col, after_col, verified_col) =
            (col("depth"), col("scheduled depth"), col("verified"));
        let mut before_sum = 0usize;
        let mut after_sum = 0usize;
        for row in &table.rows {
            let before: usize = row[before_col].parse().unwrap();
            let after: usize = row[after_col].parse().unwrap();
            assert!(
                after <= before,
                "scheduling must not deepen any sweep point: {row:?}"
            );
            assert_eq!(row[verified_col], "true", "row failed to verify: {row:?}");
            before_sum += before;
            after_sum += after;
        }
        assert!(
            after_sum < before_sum,
            "scheduling must reduce the sweep's mean depth ({after_sum} !< {before_sum})"
        );
    }

    #[test]
    fn e10_batch_matches_sequential() {
        use qudit_synthesis::Threads;

        let sweep = e10_sweep(Scale::Quick);
        let syntheses = sweep_syntheses(&sweep);
        let jobs = sweep_jobs(&sweep);
        let compiler = scheduled_sweep_compiler();
        let sequential: Vec<CompileResult> = jobs
            .iter()
            .map(|job| compiler.compile(job).unwrap())
            .collect();
        let routed_compiler = routed_sweep_compiler(&jobs);
        let routed_sequential: Vec<CompileResult> = jobs
            .iter()
            .map(|job| routed_compiler.compile(job).unwrap())
            .collect();
        let batch = CompileOptions::new()
            .schedule(true)
            .cache(CacheMode::PerRun)
            .threads(Threads::Fixed(4))
            .compiler()
            .compile_batch(&jobs)
            .unwrap();
        let routed_batch = routed_sweep_options(&jobs)
            .threads(Threads::Fixed(4))
            .compiler()
            .compile_batch(&jobs)
            .unwrap();
        assert_eq!(
            e10_table_from_results(&sweep, &syntheses, &sequential, &routed_sequential).rows,
            e10_table_from_results(&sweep, &syntheses, &batch.results, &routed_batch.results).rows,
            "batch compilation must reproduce the sequential E10 table"
        );
    }

    /// The routed leg of the E10 sweep honours the coupling graph — every
    /// multi-qudit gate of every routed circuit acts on a coupled pair —
    /// and still implements the k-Toffoli (the router's epilogue restores
    /// the identity wire permutation, so the embedding's extra sites act
    /// as borrowed ancillas).
    #[test]
    fn e10_routed_sweep_is_adjacent_and_verifies() {
        use qudit_core::route::validate_adjacency;

        let sweep = e10_sweep(Scale::Quick);
        let syntheses = sweep_syntheses(&sweep);
        let jobs = sweep_jobs(&sweep);
        let sites = jobs.iter().map(|job| job.width()).max().unwrap();
        let graph = CouplingGraph::linear(sites).unwrap();
        let routed = routed_sweep_compiler(&jobs).compile_batch(&jobs).unwrap();
        for ((&(d, k), synthesis), report) in sweep.iter().zip(&syntheses).zip(&routed.results) {
            validate_adjacency(&report.circuit, &graph)
                .unwrap_or_else(|e| panic!("routed d={d} k={k} violates the chain: {e}"));
            assert!(
                report.swap_count.is_some()
                    && report.routed_depth.is_some()
                    && report.weighted_cost.is_some(),
                "routed d={d} k={k} must report the routing columns"
            );
            let spec = MctSpec::toffoli(
                synthesis.layout().controls.clone(),
                synthesis.layout().target,
            );
            let backend = SimBackend::Auto.resolve(&report.circuit);
            let verified = if dim(d).register_size(report.circuit.width()) <= 4096 {
                verify_mct_exhaustive_with(&report.circuit, &spec, backend)
                    .unwrap()
                    .is_pass()
            } else {
                let mut rng = StdRng::seed_from_u64(7);
                verify_mct_sampled_with(&report.circuit, &spec, 50, &mut rng, backend)
                    .unwrap()
                    .is_pass()
            };
            assert!(verified, "routed d={d} k={k} failed Toffoli verification");
        }
    }
}
