//! Benchmark and experiment harness for the *Optimal Synthesis of
//! Multi-Controlled Qudit Gates* reproduction.
//!
//! * [`experiments`] — one function per experiment of the evaluation
//!   (E1–E9 plus the figure-verification table); each returns a
//!   markdown-renderable [`tables::Table`].
//! * [`tables`] — small table-formatting helpers.
//!
//! The `experiments` binary prints the full report
//! (`cargo run --release -p qudit-bench --bin experiments`), and the
//! Criterion benches in `benches/` measure synthesis and simulation time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod tables;

pub use experiments::Scale;
pub use tables::Table;
