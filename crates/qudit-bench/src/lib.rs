//! Benchmark and experiment harness for the *Optimal Synthesis of
//! Multi-Controlled Qudit Gates* reproduction.
//!
//! * [`experiments`] — one function per experiment of the evaluation
//!   (E1–E11 plus the figure-verification table); each returns a
//!   markdown-renderable [`tables::Table`].  The pipeline sweeps (E10/E11)
//!   compile their jobs concurrently through
//!   `PassManager::run_batch` with a per-job lowering cache.
//! * [`tables`] — small table-formatting helpers.
//!
//! The `experiments` binary prints the full report
//! (`cargo run --release -p qudit-bench --bin experiments`), and the
//! Criterion benches in `benches/` measure synthesis, simulation and batch
//! compilation time (`benches/batch_compilation.rs` compares sequential,
//! parallel, cached and parallel+cached compilation of the same sweep).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod tables;

pub use experiments::Scale;
pub use tables::Table;
