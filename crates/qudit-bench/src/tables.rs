//! Small helpers for formatting experiment results as markdown tables.

use std::fmt;

/// A named table of results, rendered as GitHub-flavoured markdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (printed as a heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row should have `headers.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

/// Formats a floating point number with a sensible number of digits.
pub fn fmt_f64(value: f64) -> String {
    if value >= 1000.0 {
        format!("{value:.0}")
    } else if value >= 1.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut table = Table::new("demo", &["k", "gates"]);
        table.push_row(vec!["2".into(), "10".into()]);
        let text = table.to_markdown();
        assert!(text.contains("### demo"));
        assert!(text.contains("| k | gates |"));
        assert!(text.contains("|---|---|"));
        assert!(text.contains("| 2 | 10 |"));
        assert_eq!(table.to_string(), text);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(3.25159), "3.3");
        assert_eq!(fmt_f64(0.1234), "0.123");
    }
}
