//! Prints the macro- and G-gate counts of the paper's k-Toffoli for a sweep
//! of dimensions and control counts (a minimal version of experiment E3).
//!
//! Run with `cargo run --release -p qudit-bench --example counts`.

use qudit_core::Dimension;
use qudit_synthesis::KToffoli;

fn main() {
    println!(
        "{:>3} {:>4} {:>12} {:>12} {:>14}",
        "d", "k", "macro gates", "G-gates", "G-gates per k"
    );
    for d in [3u32, 4, 5] {
        for k in [4usize, 8, 16, 32, 64] {
            let synthesis = KToffoli::new(Dimension::new(d).unwrap(), k)
                .unwrap()
                .synthesize()
                .unwrap();
            let resources = synthesis.resources();
            println!(
                "{:>3} {:>4} {:>12} {:>12} {:>14.1}",
                d,
                k,
                resources.macro_gates,
                resources.g_gates,
                resources.g_gates as f64 / k as f64
            );
        }
    }
}
