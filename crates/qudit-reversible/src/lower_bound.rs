//! Lemma IV.3: the counting lower bound on the G-gate count of reversible
//! function implementations.

use qudit_core::Dimension;

/// The counting lower bound of Lemma IV.3: with `(c − 1)·n` ancillas
/// available, some `n`-variable `d`-ary reversible function requires at least
///
/// ```text
/// N ≥ n·dⁿ·log d / (4·log(c·d·n))
/// ```
///
/// G-gates.  Returns the bound as a floating point number of gates.
///
/// # Panics
///
/// Panics if `variables == 0` or `ancilla_factor == 0`.
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_reversible::lower_bound::g_gate_lower_bound;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// assert!(g_gate_lower_bound(d, 4, 2) > 10.0);
/// # Ok(())
/// # }
/// ```
pub fn g_gate_lower_bound(dimension: Dimension, variables: usize, ancilla_factor: usize) -> f64 {
    assert!(
        variables > 0,
        "the lower bound is defined for at least one variable"
    );
    assert!(ancilla_factor > 0, "the ancilla factor c must be positive");
    let d = dimension.get() as f64;
    let n = variables as f64;
    let c = ancilla_factor as f64;
    n * d.powf(n) * d.ln() / (4.0 * (c * d * n).ln())
}

/// The exact count of distinct `n`-variable `d`-ary reversible functions,
/// `(dⁿ)!`, as a natural logarithm (the number itself overflows quickly).
pub fn ln_reversible_function_count(dimension: Dimension, variables: usize) -> f64 {
    let size = dimension.register_size(variables);
    (1..=size).map(|x| (x as f64).ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn bound_grows_with_n_and_d() {
        let d3 = dim(3);
        assert!(g_gate_lower_bound(d3, 3, 2) < g_gate_lower_bound(d3, 4, 2));
        assert!(g_gate_lower_bound(d3, 4, 2) < g_gate_lower_bound(dim(5), 4, 2));
    }

    #[test]
    fn bound_has_the_expected_magnitude() {
        // For d = 3, n = 4: n·dⁿ = 324; the bound divides by 4·log(2·3·4) ≈ 12.7.
        let bound = g_gate_lower_bound(dim(3), 4, 2);
        assert!(bound > 20.0 && bound < 324.0, "bound {bound}");
    }

    #[test]
    fn function_count_logarithm_is_increasing() {
        let d = dim(3);
        assert!(ln_reversible_function_count(d, 2) < ln_reversible_function_count(d, 3));
        // ln(9!) ≈ 12.8
        assert!((ln_reversible_function_count(d, 2) - 12.8).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn zero_variables_panic() {
        let _ = g_gate_lower_bound(dim(3), 0, 2);
    }
}
