//! Implementation of `d`-ary classical reversible functions as qudit
//! circuits — Theorem IV.2 and Lemma IV.3 of *Optimal Synthesis of
//! Multi-Controlled Qudit Gates* (DAC 2023).
//!
//! * [`ReversibleFunction`] — bijections `f : [d]ⁿ → [d]ⁿ` with cycle and
//!   2-cycle decompositions;
//! * [`ReversibleSynthesizer`] — the Fig. 11 compiler producing `O(n·dⁿ)`
//!   G-gate circuits, ancilla-free for odd `d` and with one borrowed ancilla
//!   for even `d`;
//! * [`lower_bound`] — the counting lower bound of Lemma IV.3.
//!
//! # Example
//!
//! ```
//! use qudit_core::Dimension;
//! use qudit_reversible::{ReversibleFunction, ReversibleSynthesizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let f = ReversibleFunction::two_cycle(d, 3, &[0, 0, 0], &[2, 1, 0])?;
//! let synthesis = ReversibleSynthesizer::new(d)?.synthesize(&f)?;
//! assert!(synthesis.resources().g_gates > 0);
//! assert_eq!(synthesis.resources().total_ancillas(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod function;
pub mod lower_bound;
mod synthesis;

pub use function::ReversibleFunction;
pub use synthesis::{ReversibleLayout, ReversibleSynthesis, ReversibleSynthesizer};
