//! Theorem IV.2 / Fig. 11: compiling classical reversible functions to qudit
//! circuits.
//!
//! The function is decomposed into 2-cycles; each 2-cycle `(a, b)` is
//! implemented by the three-step circuit of Fig. 11:
//!
//! 1. singly-controlled `Xij` gates (controlled on the distinguished qudit
//!    being in `|b_p⟩`) map `|b⟩` to a state that differs from `|a⟩` only at
//!    the distinguished position;
//! 2. a multi-controlled `X_{a_p b_p}` (controls at levels `a_i`) swaps the
//!    two remaining states, synthesised with the paper's k-Toffoli
//!    construction — ancilla-free for odd `d`, one borrowed ancilla for even
//!    `d`;
//! 3. step 1 is repeated to undo the relabelling.

use qudit_core::{
    AncillaKind, AncillaUsage, Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp,
};
use qudit_synthesis::{emit_multi_controlled, Resources, SynthesisError};

use crate::function::ReversibleFunction;

/// Register layout of a reversible-function synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReversibleLayout {
    /// The function's variables, one qudit each.
    pub variables: Vec<QuditId>,
    /// The borrowed ancilla (present exactly when `d` is even and `n ≥ 3`).
    pub borrowed_ancilla: Option<QuditId>,
    /// Total register width.
    pub width: usize,
}

/// The result of compiling a reversible function.
#[derive(Debug, Clone, PartialEq)]
pub struct ReversibleSynthesis {
    circuit: Circuit,
    layout: ReversibleLayout,
    resources: Resources,
    two_cycles: usize,
}

impl ReversibleSynthesis {
    /// The synthesised circuit (macro-gate level).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The register layout.
    pub fn layout(&self) -> &ReversibleLayout {
        &self.layout
    }

    /// Gate and ancilla counts.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Number of 2-cycles the function decomposed into.
    pub fn two_cycles(&self) -> usize {
        self.two_cycles
    }
}

/// Compiler from [`ReversibleFunction`]s to qudit circuits (Theorem IV.2).
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_reversible::{ReversibleFunction, ReversibleSynthesizer};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let f = ReversibleFunction::two_cycle(d, 2, &[0, 1], &[2, 2])?;
/// let synthesis = ReversibleSynthesizer::new(d)?.synthesize(&f)?;
/// // Odd d: ancilla-free (Theorem IV.2).
/// assert_eq!(synthesis.resources().total_ancillas(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReversibleSynthesizer {
    dimension: Dimension,
}

impl ReversibleSynthesizer {
    /// Creates a compiler for `d`-level qudits.
    ///
    /// # Errors
    ///
    /// Returns an error when `d < 3`.
    pub fn new(dimension: Dimension) -> Result<Self, SynthesisError> {
        if dimension.get() < 3 {
            return Err(SynthesisError::DimensionTooSmall {
                dimension: dimension.get(),
                minimum: 3,
            });
        }
        Ok(ReversibleSynthesizer { dimension })
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// Compiles a reversible function into a circuit.
    ///
    /// The register layout is one qudit per variable, plus (for even `d` and
    /// `n ≥ 3`) one borrowed ancilla as the last qudit.
    ///
    /// # Errors
    ///
    /// Returns an error when the function's dimension does not match the
    /// compiler's, or when circuit construction fails.
    pub fn synthesize(
        &self,
        function: &ReversibleFunction,
    ) -> Result<ReversibleSynthesis, SynthesisError> {
        if function.dimension() != self.dimension {
            return Err(SynthesisError::Lowering {
                reason: format!(
                    "function dimension {} does not match synthesiser dimension {}",
                    function.dimension(),
                    self.dimension
                ),
            });
        }
        let dimension = self.dimension;
        let n = function.variables();
        // For even d a borrowed ancilla is needed as soon as the
        // multi-controlled step has two or more controls, i.e. n ≥ 3.
        let needs_borrowed = dimension.is_even() && n >= 3;
        let width = n + usize::from(needs_borrowed);
        let variables: Vec<QuditId> = (0..n).map(QuditId::new).collect();
        let borrowed = if needs_borrowed {
            Some(QuditId::new(n))
        } else {
            None
        };
        let borrowed_pool: Vec<QuditId> = borrowed.into_iter().collect();

        let mut circuit = Circuit::new(dimension, width);
        let cycles = function.two_cycles();
        for (a, b) in &cycles {
            self.emit_two_cycle(&mut circuit, &variables, a, b, &borrowed_pool)?;
        }

        let ancillas = if needs_borrowed {
            AncillaUsage::of_kind(AncillaKind::Borrowed, 1)
        } else {
            AncillaUsage::none()
        };
        let resources = Resources::for_circuit(&circuit, ancillas)?;
        Ok(ReversibleSynthesis {
            circuit,
            layout: ReversibleLayout {
                variables,
                borrowed_ancilla: borrowed,
                width,
            },
            resources,
            two_cycles: cycles.len(),
        })
    }

    /// Emits the Fig. 11 circuit for the 2-cycle `(a, b)`.
    fn emit_two_cycle(
        &self,
        circuit: &mut Circuit,
        variables: &[QuditId],
        a: &[u32],
        b: &[u32],
        borrowed_pool: &[QuditId],
    ) -> Result<(), SynthesisError> {
        let n = variables.len();
        // The distinguished position p where a and b differ (the paper takes
        // p = n w.l.o.g.; we take the last differing position).
        let p = (0..n)
            .rev()
            .find(|&i| a[i] != b[i])
            .expect("two-cycles exchange distinct states");

        // Step 1: |b_p⟩-controlled relabelling of every other position.
        let step1: Vec<Gate> = (0..n)
            .filter(|&i| i != p && a[i] != b[i])
            .map(|i| {
                Gate::controlled(
                    SingleQuditOp::Swap(a[i], b[i]),
                    variables[i],
                    vec![Control::level(variables[p], b[p])],
                )
            })
            .collect();
        for gate in &step1 {
            circuit.push(gate.clone())?;
        }

        // Step 2: multi-controlled X_{a_p b_p} on position p, controlled on
        // every other position being in |a_i⟩.
        let controls: Vec<(QuditId, u32)> = (0..n)
            .filter(|&i| i != p)
            .map(|i| (variables[i], a[i]))
            .collect();
        emit_multi_controlled(
            circuit,
            &controls,
            variables[p],
            &SingleQuditOp::Swap(a[p], b[p]),
            borrowed_pool,
        )?;

        // Step 3: undo the relabelling.
        for gate in &step1 {
            circuit.push(gate.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    fn all_states(dimension: Dimension, width: usize) -> Vec<Vec<u32>> {
        let d = dimension.as_usize();
        (0..dimension.register_size(width))
            .map(|mut index| {
                let mut digits = vec![0u32; width];
                for slot in digits.iter_mut().rev() {
                    *slot = (index % d) as u32;
                    index /= d;
                }
                digits
            })
            .collect()
    }

    /// Checks that the compiled circuit implements the function on the
    /// variable qudits and restores the borrowed ancilla (if any).
    fn check_synthesis(function: &ReversibleFunction, synthesis: &ReversibleSynthesis) {
        let circuit = synthesis.circuit();
        let n = function.variables();
        for state in all_states(function.dimension(), synthesis.layout().width) {
            let expected_vars = function.apply(&state[..n]).unwrap();
            let actual = circuit.apply_to_basis(&state).unwrap();
            assert_eq!(&actual[..n], expected_vars.as_slice(), "input {state:?}");
            for extra in n..synthesis.layout().width {
                assert_eq!(
                    actual[extra], state[extra],
                    "borrowed ancilla changed for {state:?}"
                );
            }
        }
    }

    #[test]
    fn single_two_cycle_matches_fig_11() {
        let d = dim(3);
        let f = ReversibleFunction::two_cycle(d, 3, &[0, 1, 2], &[2, 1, 0]).unwrap();
        let synthesis = ReversibleSynthesizer::new(d)
            .unwrap()
            .synthesize(&f)
            .unwrap();
        check_synthesis(&f, &synthesis);
        assert_eq!(synthesis.two_cycles(), 1);
        assert_eq!(synthesis.resources().total_ancillas(), 0);
    }

    #[test]
    fn random_functions_compile_correctly_for_odd_d() {
        let d = dim(3);
        let mut rng = StdRng::seed_from_u64(23);
        for n in [1usize, 2, 3] {
            let f = ReversibleFunction::random(d, n, &mut rng);
            let synthesis = ReversibleSynthesizer::new(d)
                .unwrap()
                .synthesize(&f)
                .unwrap();
            check_synthesis(&f, &synthesis);
            assert_eq!(
                synthesis.resources().total_ancillas(),
                0,
                "odd d must be ancilla-free"
            );
        }
    }

    #[test]
    fn random_functions_compile_correctly_for_even_d() {
        let d = dim(4);
        let mut rng = StdRng::seed_from_u64(29);
        for n in [2usize, 3] {
            let f = ReversibleFunction::random(d, n, &mut rng);
            let synthesis = ReversibleSynthesizer::new(d)
                .unwrap()
                .synthesize(&f)
                .unwrap();
            check_synthesis(&f, &synthesis);
            let expected_ancillas = usize::from(n >= 3);
            assert_eq!(synthesis.resources().borrowed_ancillas(), expected_ancillas);
        }
    }

    #[test]
    fn identity_compiles_to_the_empty_circuit() {
        let d = dim(5);
        let f = ReversibleFunction::identity(d, 3);
        let synthesis = ReversibleSynthesizer::new(d)
            .unwrap()
            .synthesize(&f)
            .unwrap();
        assert!(synthesis.circuit().is_empty());
        assert_eq!(synthesis.two_cycles(), 0);
    }

    #[test]
    fn two_cycles_differing_in_one_position_are_handled() {
        // a and b differ only in the middle position: the distinguished
        // position is that one and step 1 is empty.
        let d = dim(3);
        let f = ReversibleFunction::two_cycle(d, 3, &[1, 0, 2], &[1, 2, 2]).unwrap();
        let synthesis = ReversibleSynthesizer::new(d)
            .unwrap()
            .synthesize(&f)
            .unwrap();
        check_synthesis(&f, &synthesis);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let f = ReversibleFunction::identity(dim(3), 2);
        let synthesizer = ReversibleSynthesizer::new(dim(5)).unwrap();
        assert!(synthesizer.synthesize(&f).is_err());
        assert!(ReversibleSynthesizer::new(dim(2)).is_err());
    }

    #[test]
    fn gate_count_scales_like_n_d_to_the_n() {
        // Theorem IV.2: O(n·dⁿ) G-gates.  Check that the per-two-cycle cost
        // is O(n) by comparing against the number of two-cycles.
        let d = dim(3);
        let mut rng = StdRng::seed_from_u64(31);
        for n in [2usize, 3] {
            let f = ReversibleFunction::random(d, n, &mut rng);
            let synthesis = ReversibleSynthesizer::new(d)
                .unwrap()
                .synthesize(&f)
                .unwrap();
            let g = synthesis.resources().g_gates;
            let cycles = synthesis.two_cycles().max(1);
            assert!(
                g <= cycles * n * 3000,
                "n={n}: {g} G-gates for {cycles} two-cycles"
            );
        }
    }
}
