//! Representation of `n`-variable `d`-ary classical reversible functions.

use qudit_core::{Dimension, QuditError, Result};
use rand::Rng;

/// An `n`-variable `d`-ary classical reversible function, i.e. a bijection
/// `f : [d]^n → [d]^n`, stored as a permutation table over basis indices.
///
/// # Example
///
/// ```
/// # use qudit_core::Dimension;
/// # use qudit_reversible::ReversibleFunction;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let f = ReversibleFunction::identity(d, 2);
/// assert_eq!(f.apply(&[1, 2])?, vec![1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReversibleFunction {
    dimension: Dimension,
    variables: usize,
    table: Vec<usize>,
}

impl ReversibleFunction {
    /// Creates a reversible function from a permutation table over basis
    /// indices (`table[i]` is the image of basis state `i`).
    ///
    /// # Errors
    ///
    /// Returns an error when the table length is not `d^n` or the table is
    /// not a bijection.
    pub fn from_table(dimension: Dimension, variables: usize, table: Vec<usize>) -> Result<Self> {
        let size = dimension.register_size(variables);
        if table.len() != size {
            return Err(QuditError::MatrixShapeMismatch {
                found: table.len(),
                expected: size,
            });
        }
        let mut seen = vec![false; size];
        for &image in &table {
            if image >= size || seen[image] {
                return Err(QuditError::NotAPermutation);
            }
            seen[image] = true;
        }
        Ok(ReversibleFunction {
            dimension,
            variables,
            table,
        })
    }

    /// The identity function on `n` variables.
    pub fn identity(dimension: Dimension, variables: usize) -> Self {
        let size = dimension.register_size(variables);
        ReversibleFunction {
            dimension,
            variables,
            table: (0..size).collect(),
        }
    }

    /// A uniformly random reversible function.
    pub fn random<R: Rng>(dimension: Dimension, variables: usize, rng: &mut R) -> Self {
        let size = dimension.register_size(variables);
        let mut table: Vec<usize> = (0..size).collect();
        for i in (1..size).rev() {
            let j = rng.gen_range(0..=i);
            table.swap(i, j);
        }
        ReversibleFunction {
            dimension,
            variables,
            table,
        }
    }

    /// The single 2-cycle exchanging basis states `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error when the digit vectors have the wrong length, contain
    /// out-of-range digits, or are equal.
    pub fn two_cycle(dimension: Dimension, variables: usize, a: &[u32], b: &[u32]) -> Result<Self> {
        let ia = digits_to_index(a, dimension, variables)?;
        let ib = digits_to_index(b, dimension, variables)?;
        if ia == ib {
            return Err(QuditError::NotAPermutation);
        }
        let mut table: Vec<usize> = (0..dimension.register_size(variables)).collect();
        table.swap(ia, ib);
        Ok(ReversibleFunction {
            dimension,
            variables,
            table,
        })
    }

    /// The qudit dimension `d`.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of variables `n`.
    pub fn variables(&self) -> usize {
        self.variables
    }

    /// The permutation table over basis indices.
    pub fn table(&self) -> &[usize] {
        &self.table
    }

    /// Applies the function to a digit vector.
    ///
    /// # Errors
    ///
    /// Returns an error when the input has the wrong length or contains
    /// out-of-range digits.
    pub fn apply(&self, digits: &[u32]) -> Result<Vec<u32>> {
        let index = digits_to_index(digits, self.dimension, self.variables)?;
        Ok(index_to_digits(
            self.table[index],
            self.dimension,
            self.variables,
        ))
    }

    /// The inverse function.
    pub fn inverse(&self) -> ReversibleFunction {
        let mut table = vec![0usize; self.table.len()];
        for (from, &to) in self.table.iter().enumerate() {
            table[to] = from;
        }
        ReversibleFunction {
            dimension: self.dimension,
            variables: self.variables,
            table,
        }
    }

    /// The composition `self ∘ other` (apply `other` first).
    ///
    /// # Panics
    ///
    /// Panics if the functions have different dimensions or variable counts.
    pub fn compose(&self, other: &ReversibleFunction) -> ReversibleFunction {
        assert_eq!(self.dimension, other.dimension, "dimensions must match");
        assert_eq!(
            self.variables, other.variables,
            "variable counts must match"
        );
        let table = other.table.iter().map(|&mid| self.table[mid]).collect();
        ReversibleFunction {
            dimension: self.dimension,
            variables: self.variables,
            table,
        }
    }

    /// Returns `true` if this is the identity function.
    pub fn is_identity(&self) -> bool {
        self.table.iter().enumerate().all(|(i, &to)| i == to)
    }

    /// Decomposes the permutation into 2-cycles (pairs of basis-state digit
    /// vectors), such that applying the 2-cycles in order reproduces the
    /// function.  At most `dⁿ − 1` cycles are returned.
    pub fn two_cycles(&self) -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut result = Vec::new();
        let size = self.table.len();
        let mut visited = vec![false; size];
        for start in 0..size {
            if visited[start] || self.table[start] == start {
                visited[start] = true;
                continue;
            }
            // Collect the cycle containing `start`.
            let mut cycle = vec![start];
            visited[start] = true;
            let mut current = self.table[start];
            while current != start {
                visited[current] = true;
                cycle.push(current);
                current = self.table[current];
            }
            // (c0 c1 … c_{L−1}) = time-ordered product of (c0 c1), (c0 c2), …
            for &element in cycle.iter().skip(1) {
                result.push((
                    index_to_digits(cycle[0], self.dimension, self.variables),
                    index_to_digits(element, self.dimension, self.variables),
                ));
            }
        }
        result
    }
}

fn digits_to_index(digits: &[u32], dimension: Dimension, variables: usize) -> Result<usize> {
    if digits.len() != variables {
        return Err(QuditError::QuditOutOfRange {
            qudit: digits.len(),
            width: variables,
        });
    }
    let mut index = 0usize;
    for &digit in digits {
        dimension.check_level(digit)?;
        index = index * dimension.as_usize() + digit as usize;
    }
    Ok(index)
}

fn index_to_digits(mut index: usize, dimension: Dimension, variables: usize) -> Vec<u32> {
    let d = dimension.as_usize();
    let mut digits = vec![0u32; variables];
    for slot in digits.iter_mut().rev() {
        *slot = (index % d) as u32;
        index /= d;
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn table_validation() {
        let d = dim(3);
        assert!(ReversibleFunction::from_table(d, 1, vec![0, 1, 2]).is_ok());
        assert!(ReversibleFunction::from_table(d, 1, vec![0, 1]).is_err());
        assert!(ReversibleFunction::from_table(d, 1, vec![0, 0, 2]).is_err());
        assert!(ReversibleFunction::from_table(d, 1, vec![0, 1, 3]).is_err());
    }

    #[test]
    fn apply_and_inverse_round_trip() {
        let d = dim(3);
        let mut rng = StdRng::seed_from_u64(5);
        let f = ReversibleFunction::random(d, 3, &mut rng);
        let inv = f.inverse();
        for index in 0..27 {
            let digits = index_to_digits(index, d, 3);
            let image = f.apply(&digits).unwrap();
            assert_eq!(inv.apply(&image).unwrap(), digits);
        }
        assert!(f.compose(&inv).is_identity());
        assert!(inv.compose(&f).is_identity());
    }

    #[test]
    fn two_cycle_constructor() {
        let d = dim(3);
        let f = ReversibleFunction::two_cycle(d, 2, &[0, 1], &[2, 2]).unwrap();
        assert_eq!(f.apply(&[0, 1]).unwrap(), vec![2, 2]);
        assert_eq!(f.apply(&[2, 2]).unwrap(), vec![0, 1]);
        assert_eq!(f.apply(&[1, 1]).unwrap(), vec![1, 1]);
        assert!(ReversibleFunction::two_cycle(d, 2, &[0, 1], &[0, 1]).is_err());
        assert!(ReversibleFunction::two_cycle(d, 2, &[0, 3], &[0, 1]).is_err());
    }

    #[test]
    fn two_cycle_decomposition_reconstructs_the_function() {
        let d = dim(3);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let f = ReversibleFunction::random(d, 2, &mut rng);
            let mut rebuilt = ReversibleFunction::identity(d, 2);
            for (a, b) in f.two_cycles() {
                let swap = ReversibleFunction::two_cycle(d, 2, &a, &b).unwrap();
                rebuilt = swap.compose(&rebuilt);
            }
            assert_eq!(rebuilt, f);
            assert!(f.two_cycles().len() <= 8);
        }
    }

    #[test]
    fn identity_has_no_two_cycles() {
        let d = dim(4);
        let f = ReversibleFunction::identity(d, 2);
        assert!(f.is_identity());
        assert!(f.two_cycles().is_empty());
    }

    #[test]
    fn apply_validates_inputs() {
        let d = dim(3);
        let f = ReversibleFunction::identity(d, 2);
        assert!(f.apply(&[0]).is_err());
        assert!(f.apply(&[0, 3]).is_err());
    }
}
