//! Simulation substrate for the *Optimal Synthesis of Multi-Controlled Qudit
//! Gates* reproduction.
//!
//! The crate provides:
//!
//! * [`basis`] — mixed-radix indexing of computational basis states;
//! * [`PermutationSimulator`] and [`permutation_sim`] — fast classical
//!   simulation of the permutation circuits produced by the synthesis
//!   algorithms, plus full permutation-table extraction;
//! * [`StateVector`] and [`statevector`] — state-vector simulation supporting
//!   arbitrary controlled unitaries (the scalar reference walk);
//! * [`FusedProgram`] and [`dense`] — the cache-blocked dense engine: gate
//!   fusion, split-complex panel kernels and pool-parallel block dispatch,
//!   exact (`==`-equal) against the reference walk;
//! * [`SparseState`], [`SimState`] and [`sparse`] — the sparse amplitude-map
//!   engine with a classical-gate fast path in `O(nnz)`, the hybrid
//!   sparse-then-dense engine behind it, and the [`SimBackend`] dispatch
//!   (`Dense | Sparse | Auto`) that picks an engine per circuit via a
//!   classicality scan;
//! * [`equivalence`] — specification checkers for multi-controlled gates with
//!   borrowed- or clean-ancilla semantics, and unitary equivalence up to
//!   global phase;
//! * [`pipeline`] — the [`VerifyEquivalence`] pass wrapper that makes any
//!   compilation pipeline self-check semantics preservation after each stage;
//! * [`stabilizer`] — the generalised-Pauli tableau engine for prime
//!   dimensions: Clifford gate classification, exact tableau equivalence up
//!   to global phase, and `O(n³)` basis-probability queries at widths far
//!   beyond dense reach ([`SimBackend::Stabilizer`]);
//! * [`random`] — random unitaries, permutations, reversible functions and
//!   Clifford circuits for workloads.
//!
//! # Example
//!
//! ```
//! use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
//! use qudit_sim::equivalence::{verify_mct_exhaustive, MctSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let d = Dimension::new(3)?;
//! let mut circuit = Circuit::new(d, 2);
//! circuit.push(Gate::controlled(
//!     SingleQuditOp::Swap(0, 1),
//!     QuditId::new(1),
//!     vec![Control::zero(QuditId::new(0))],
//! ))?;
//! let spec = MctSpec::toffoli(vec![QuditId::new(0)], QuditId::new(1));
//! assert!(verify_mct_exhaustive(&circuit, &spec)?.is_pass());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod dense;
pub mod equivalence;
pub mod permutation_sim;
pub mod pipeline;
pub mod random;
mod sampling;
pub mod sparse;
pub mod stabilizer;
pub mod statevector;

pub use dense::FusedProgram;
pub use equivalence::{MctSpec, Verification};
pub use permutation_sim::{circuit_permutation, classical_circuits_equal, PermutationSimulator};
pub use pipeline::VerifyEquivalence;
pub use sparse::{
    circuit_unitary_with, classical_prefix_len, simulate_basis, SimBackend, SimState, SparseState,
};
pub use stabilizer::{
    classify_gate, clifford_circuits_equal, is_clifford_circuit, is_clifford_gate, CliffordTableau,
    StabilizerState,
};
pub use statevector::{circuit_unitary, StateVector};
