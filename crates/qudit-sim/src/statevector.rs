//! State-vector simulation of qudit circuits, including non-classical
//! (unitary) gates.
//!
//! Gates are applied *in place*: every gate (classical or single-qudit
//! unitary) only rewrites the target digit, so the amplitude vector splits
//! into independent blocks of `d` amplitudes at target-digit stride, and a
//! single `d`-element scratch buffer — reused across a whole
//! [`StateVector::apply_circuit`] — suffices.  Control predicates are
//! evaluated directly from the mixed-radix index with stride arithmetic;
//! no full digit decoding and no `d^width` temporary is ever needed.

use qudit_core::math::{Complex, SquareMatrix};
use qudit_core::{Circuit, Dimension, Gate, GateOp, QuditError, Result, SingleQuditOp};

use crate::basis::digits_to_index;

/// The digit of qudit with the given stride in a mixed-radix index.
#[inline]
fn digit_at(index: usize, stride: usize, d: usize) -> u32 {
    ((index / stride) % d) as u32
}

/// A full state vector over `width` qudits of dimension `d`.
///
/// # Example
///
/// ```
/// # use qudit_core::{Circuit, Control, Dimension, Gate, QuditId, SingleQuditOp};
/// # use qudit_sim::StateVector;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d = Dimension::new(3)?;
/// let mut circuit = Circuit::new(d, 2);
/// circuit.push(Gate::controlled(
///     SingleQuditOp::Swap(0, 1),
///     QuditId::new(1),
///     vec![Control::zero(QuditId::new(0))],
/// ))?;
///
/// let mut state = StateVector::from_basis(d, &[0, 0])?;
/// state.apply_circuit(&circuit)?;
/// assert!(state.probability(&[0, 1]) > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    dimension: Dimension,
    width: usize,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// Creates the all-zeros basis state `|0…0⟩`.
    pub fn new(dimension: Dimension, width: usize) -> Self {
        let size = dimension.register_size(width);
        let mut amplitudes = vec![Complex::ZERO; size];
        amplitudes[0] = Complex::ONE;
        StateVector {
            dimension,
            width,
            amplitudes,
        }
    }

    /// Creates the basis state with the given digits.
    ///
    /// # Errors
    ///
    /// Returns an error when a digit is out of range.
    pub fn from_basis(dimension: Dimension, digits: &[u32]) -> Result<Self> {
        for &digit in digits {
            dimension.check_level(digit)?;
        }
        let size = dimension.register_size(digits.len());
        let mut amplitudes = vec![Complex::ZERO; size];
        amplitudes[digits_to_index(digits, dimension)] = Complex::ONE;
        Ok(StateVector {
            dimension,
            width: digits.len(),
            amplitudes,
        })
    }

    /// Creates a state vector from raw amplitudes.
    ///
    /// # Errors
    ///
    /// Returns an error when the number of amplitudes is not `d^width`.
    pub fn from_amplitudes(
        dimension: Dimension,
        width: usize,
        amplitudes: Vec<Complex>,
    ) -> Result<Self> {
        let expected = dimension.register_size(width);
        if amplitudes.len() != expected {
            return Err(QuditError::MatrixShapeMismatch {
                found: amplitudes.len(),
                expected,
            });
        }
        Ok(StateVector {
            dimension,
            width,
            amplitudes,
        })
    }

    /// The qudit dimension.
    pub fn dimension(&self) -> Dimension {
        self.dimension
    }

    /// The number of qudits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The raw amplitudes in basis-index order.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Mutable access to the raw amplitudes for the fused dense engine.
    pub(crate) fn amplitudes_mut(&mut self) -> &mut [Complex] {
        &mut self.amplitudes
    }

    /// The amplitude of a basis state.
    pub fn amplitude(&self, digits: &[u32]) -> Complex {
        self.amplitudes[digits_to_index(digits, self.dimension)]
    }

    /// The probability of measuring a basis state.
    pub fn probability(&self, digits: &[u32]) -> f64 {
        self.amplitude(digits).norm_sqr()
    }

    /// The squared norm of the state (should be 1 for a physical state).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different sizes.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(
            self.amplitudes.len(),
            other.amplitudes.len(),
            "state sizes must match"
        );
        self.amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// The fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Applies a single gate.
    ///
    /// # Errors
    ///
    /// Returns an error when the gate refers to qudits outside the register.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<()> {
        let mut scratch = vec![Complex::ZERO; self.dimension.as_usize()];
        self.apply_gate_with_scratch(gate, &mut scratch)
    }

    /// The stride of a qudit's digit in the mixed-radix amplitude index.
    #[inline]
    fn stride_of(&self, qudit: usize) -> usize {
        self.dimension
            .as_usize()
            .pow((self.width - 1 - qudit) as u32)
    }

    /// Applies a gate in place, using (and clobbering) a caller-provided
    /// `d`-element scratch buffer.
    fn apply_gate_with_scratch(&mut self, gate: &Gate, scratch: &mut [Complex]) -> Result<()> {
        gate.validate(self.dimension, self.width)?;
        let d = self.dimension.as_usize();
        debug_assert_eq!(scratch.len(), d);
        let t_stride = self.stride_of(gate.target().index());
        // Controls as (stride, predicate) pairs: the control digit of a
        // block is read straight off the block's base index.
        let controls: Vec<(usize, qudit_core::ControlPredicate)> = gate
            .controls()
            .iter()
            .map(|c| (self.stride_of(c.qudit.index()), c.predicate))
            .collect();

        // The per-block action on the target digit.
        enum Action<'m> {
            /// Classical permutation of the target levels.
            Permute(Vec<usize>),
            /// Shift the target by (±) the digit of the source qudit.
            ShiftBySource { source_stride: usize, negate: bool },
            /// General single-qudit unitary.
            Mix(&'m SquareMatrix),
        }

        let owned_matrix: SquareMatrix;
        let action = match gate.op() {
            GateOp::AddFrom { source, negate } => Action::ShiftBySource {
                source_stride: self.stride_of(source.index()),
                negate: *negate,
            },
            GateOp::Single(op) if op.is_classical() => {
                let mut permutation = vec![0usize; d];
                for (level, slot) in permutation.iter_mut().enumerate() {
                    *slot = op.apply_level(level as u32, self.dimension)? as usize;
                }
                Action::Permute(permutation)
            }
            GateOp::Single(SingleQuditOp::Unitary(matrix)) => Action::Mix(matrix),
            GateOp::Single(op) => {
                owned_matrix = op.to_matrix(self.dimension);
                Action::Mix(&owned_matrix)
            }
        };

        // Iterate the target-digit blocks directly: `base` ranges over every
        // index whose target digit is 0.
        let block = t_stride * d;
        let size = self.amplitudes.len();
        for outer in (0..size).step_by(block) {
            for inner in 0..t_stride {
                let base = outer + inner;
                // Gather the block and skip it when it carries no amplitude —
                // the dominant case for (near-)basis states, which classical
                // circuits keep sparse.
                let mut occupied = false;
                for (level, slot) in scratch.iter_mut().enumerate() {
                    *slot = self.amplitudes[base + level * t_stride];
                    occupied |= *slot != Complex::ZERO;
                }
                if !occupied {
                    continue;
                }
                let fires = controls
                    .iter()
                    .all(|&(stride, predicate)| predicate.matches(digit_at(base, stride, d)));
                if !fires {
                    continue;
                }
                match &action {
                    Action::Permute(permutation) => {
                        for (level, &image) in permutation.iter().enumerate() {
                            self.amplitudes[base + image * t_stride] = scratch[level];
                        }
                    }
                    Action::ShiftBySource {
                        source_stride,
                        negate,
                    } => {
                        let value = digit_at(base, *source_stride, d) as usize;
                        let shift = if *negate { (d - value) % d } else { value };
                        if shift == 0 {
                            continue;
                        }
                        for (level, &amp) in scratch.iter().enumerate() {
                            self.amplitudes[base + (level + shift) % d * t_stride] = amp;
                        }
                    }
                    Action::Mix(matrix) => {
                        for row in 0..d {
                            let mut acc = Complex::ZERO;
                            for (column, &amp) in scratch.iter().enumerate() {
                                acc += matrix[(row, column)] * amp;
                            }
                            self.amplitudes[base + row * t_stride] = acc;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies every gate of a circuit in order.
    ///
    /// A single `d`-element scratch buffer is allocated once and reused for
    /// every gate; the amplitude vector itself is updated in place.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit does not match the register or a
    /// gate is invalid.
    pub fn apply_circuit(&mut self, circuit: &Circuit) -> Result<()> {
        if circuit.dimension() != self.dimension {
            return Err(QuditError::IncompatibleCircuits {
                reason: "circuit and state dimensions differ".to_string(),
            });
        }
        if circuit.width() > self.width {
            return Err(QuditError::IncompatibleCircuits {
                reason: "circuit is wider than the state register".to_string(),
            });
        }
        let mut scratch = vec![Complex::ZERO; self.dimension.as_usize()];
        for gate in circuit.gates() {
            self.apply_gate_with_scratch(gate, &mut scratch)?;
        }
        Ok(())
    }
}

/// Computes the full unitary matrix implemented by a circuit.
///
/// The matrix has size `d^width`; only use this for small registers.
///
/// Delegates to [`circuit_unitary_with`](crate::sparse::circuit_unitary_with)
/// on the [`Auto`](crate::SimBackend::Auto) backend: circuits with a
/// classical prefix are simulated sparsely over that prefix (every column
/// input is a basis state, so the prefix costs `O(1)` per gate instead of
/// `O(d^width)`), with an `==`-equal result.
///
/// # Errors
///
/// Returns an error when a gate of the circuit is invalid.
pub fn circuit_unitary(circuit: &Circuit) -> Result<SquareMatrix> {
    crate::sparse::circuit_unitary_with(circuit, crate::sparse::SimBackend::Auto)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qudit_core::math::MATRIX_TOLERANCE;
    use qudit_core::{Control, QuditId};

    fn dim(d: u32) -> Dimension {
        Dimension::new(d).unwrap()
    }

    #[test]
    fn classical_gates_move_basis_states() {
        let d = dim(3);
        let mut state = StateVector::from_basis(d, &[0, 2]).unwrap();
        let gate = Gate::controlled(
            SingleQuditOp::Add(1),
            QuditId::new(1),
            vec![Control::zero(QuditId::new(0))],
        );
        state.apply_gate(&gate).unwrap();
        assert!((state.probability(&[0, 0]) - 1.0).abs() < 1e-12);
        assert!((state.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_gates_create_superpositions() {
        let d = dim(3);
        // A qutrit "Hadamard-like" unitary: the Fourier matrix.
        let omega = Complex::from_phase(2.0 * std::f64::consts::PI / 3.0);
        let s = 1.0 / 3.0f64.sqrt();
        let mut entries = Vec::new();
        for r in 0..3u32 {
            for c in 0..3u32 {
                let mut w = Complex::ONE;
                for _ in 0..(r * c) {
                    w *= omega;
                }
                entries.push(w.scale(s));
            }
        }
        let fourier = SquareMatrix::from_rows(3, entries).unwrap();
        assert!(fourier.is_unitary(MATRIX_TOLERANCE));
        let gate = Gate::single(SingleQuditOp::Unitary(fourier), QuditId::new(0));
        let mut state = StateVector::new(d, 1);
        state.apply_gate(&gate).unwrap();
        for level in 0..3 {
            assert!((state.probability(&[level]) - 1.0 / 3.0).abs() < 1e-9);
        }
        assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn controlled_unitary_only_fires_on_matching_control() {
        let d = dim(3);
        let x01 = SingleQuditOp::Swap(0, 1).to_matrix(d);
        let gate = Gate::controlled(
            SingleQuditOp::Unitary(x01),
            QuditId::new(1),
            vec![Control::level(QuditId::new(0), 1)],
        );
        let mut fired = StateVector::from_basis(d, &[1, 0]).unwrap();
        fired.apply_gate(&gate).unwrap();
        assert!((fired.probability(&[1, 1]) - 1.0).abs() < 1e-12);
        let mut idle = StateVector::from_basis(d, &[2, 0]).unwrap();
        idle.apply_gate(&gate).unwrap();
        assert!((idle.probability(&[2, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_unitary_matches_permutation_for_classical_circuits() {
        let d = dim(3);
        let mut circuit = Circuit::new(d, 2);
        circuit
            .push(Gate::controlled(
                SingleQuditOp::Swap(0, 2),
                QuditId::new(1),
                vec![Control::level(QuditId::new(0), 1)],
            ))
            .unwrap();
        let unitary = circuit_unitary(&circuit).unwrap();
        assert!(unitary.is_unitary(MATRIX_TOLERANCE));
        let table = crate::permutation_sim::circuit_permutation(&circuit).unwrap();
        let expected = SquareMatrix::from_permutation(&table).unwrap();
        assert!(unitary.approx_eq(&expected, MATRIX_TOLERANCE));
    }

    #[test]
    fn inner_product_and_fidelity() {
        let d = dim(3);
        let a = StateVector::from_basis(d, &[0, 1]).unwrap();
        let b = StateVector::from_basis(d, &[0, 1]).unwrap();
        let c = StateVector::from_basis(d, &[1, 1]).unwrap();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&c) < 1e-12);
    }

    #[test]
    fn from_amplitudes_validates_length() {
        let d = dim(3);
        assert!(StateVector::from_amplitudes(d, 2, vec![Complex::ZERO; 8]).is_err());
        assert!(StateVector::from_amplitudes(d, 2, vec![Complex::ZERO; 9]).is_ok());
    }
}
